//! One-stop import for the common 90% of the API surface.
//!
//! ```
//! use parallel_ga::prelude::*;
//! ```
//!
//! brings in the [`Driver`]/[`Engine`] run loop, every engine-family
//! builder (the canonical configuration path — each validates its inputs
//! and returns [`ConfigError`] instead of panicking), the evaluator
//! substrates of the master–slave model, the observability recorders, and
//! the operator / representation / problem vocabulary the examples use.
//!
//! Deliberately excluded: simulator internals (`cluster::event`), analysis
//! tooling, and application substrates — import those from their module
//! (`parallel_ga::cluster`, `parallel_ga::analysis`, `parallel_ga::apps`)
//! when needed.

// Run loop + engine core.
pub use pga_core::ops::{
    Arithmetic, BitFlip, BlxAlpha, Crossover, GaussianMutation, Insertion, IntCreep, Inversion,
    LinearRank, Mutation, OnePoint, Ox, Pmx, ReplacementPolicy, Roulette, Sbx, Scramble, Selection,
    Swap, Tournament, Truncation, TwoPoint, Uniform,
};
pub use pga_core::{
    BitString, Bounds, Clock, ConfigError, Driver, Engine, Evaluator, Genome, Individual,
    IntVector, Objective, Permutation, PopStats, Population, Problem, Progress, RealVector, Rng64,
    RunOutcome, SerialEvaluator, Snapshot, SnapshotError, StepReport, StopReason, Termination,
};

// Observability: recorders, events, metrics.
pub use pga_observe::{
    replay, CsvSink, Event, EventKind, FilteredRecorder, JsonlSink, MetricsRecorder, MultiRecorder,
    Recorder, RingRecorder, SharedRecorder,
};

// ---------------------------------------------------------------------
// Engine families — one block per family, each exporting its engine
// type(s) and validating builder (the canonical configuration path).
// ---------------------------------------------------------------------

// Panmictic GA (generational and steady-state schemes).
pub use pga_core::{Ga, GaBuilder, Scheme};

// Master–slave (global) model: evaluation substrates for the panmictic
// engine plus the barrier-free asynchronous steady-state engine.
pub use pga_master_slave::{
    AsyncSteadyBuilder, AsyncSteadyStateGa, ExpensiveFitness, RayonEvaluator, ResilientBuilder,
    ResilientEvaluator, ResilientStats, SimulatedMasterSlaveGa,
};

// Island (coarse-grained) model.
pub use pga_island::{
    run_threaded, run_threaded_resilient, Archipelago, ArchipelagoBuilder, Deme, EmigrantSelection,
    IslandRun, IslandStats, MigrationPolicy, ResiliencePolicy, ResilientOptions,
    ResurrectionPolicy, SyncMode,
};

// Cellular (fine-grained) model.
pub use pga_cellular::{CellularGa, CellularGaBuilder, TakeoverGrid, UpdatePolicy};

// Hierarchical (multi-fidelity) model.
pub use pga_hierarchical::{Hga, HgaBuilder, HgaConfig, IslandFactory, LevelView};

// Multiobjective island model.
pub use pga_multiobjective::{MoEngine, MoEngineBuilder};

// Compact (model-based) family: the population is a probability vector.
// `CompactGa` is the serial cGA; `ShardedCompactGa` partitions the
// vector across simulated nodes, exchanging model updates only.
pub use pga_compact::{
    CompactGa, CompactGaBuilder, ShardedCompactGa, ShardedCompactGaBuilder, WireStats,
};

// GA-as-a-service job server (the erased-engine runtime rides along so
// embedded callers can drive a `BoxedEngine` under the generic driver).
pub use pga_core::{erase, BoxedEngine, ErasedEngine, ErasedRun};
pub use pga_serve::{
    Budget, DrainReport, EngineSpec, FamilyRegistry, HealthReport, JobId, JobSpec, JobState,
    ProblemRegistry, ProblemSpec, Registries, Serve, ServeBuilder, ServeRuntime, SubmitError,
};

// Topologies and neighborhoods.
pub use pga_topology::{CellNeighborhood, Topology};

// Cluster failure and cost models shared by simulator and resilient runtimes,
// plus the seeded serve-layer chaos scripts.
pub use pga_cluster::{
    ChaosPlan, ClusterSpec, EvalCostModel, FailurePlan, FaultPlan, IslandFault, LinkFault,
    MigrationFaultPlan, NetworkProfile, StormSpec, WorkerFault,
};

// Benchmark problem suite.
pub use pga_problems::{
    DeceptiveTrap, Knapsack, MaxSat, NkLandscape, OneMax, PPeaks, RealFunction, RealProblem,
    RoyalRoad, Tsp,
};
