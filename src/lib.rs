//! # parallel-ga
//!
//! Umbrella crate for the `pga-*` workspace: a production-quality Rust
//! implementation of the parallel genetic algorithm models surveyed in
//! Konfršt, *Parallel Genetic Algorithms: Advances, Computing Trends,
//! Applications and Perspectives* (IPPS 2004).
//!
//! Re-exports every subsystem crate under a short module name so examples
//! and downstream users need a single dependency:
//!
//! | Module | Crate | PGA model / role |
//! |---|---|---|
//! | [`core`] | `pga-core` | panmictic GA engine, operators, representations |
//! | [`observe`] | `pga-observe` | structured event tracing, metrics, timing scopes |
//! | [`problems`] | `pga-problems` | benchmark suite with known optima |
//! | [`topology`] | `pga-topology` | migration topologies, cell neighborhoods |
//! | [`cluster`] | `pga-cluster` | discrete-event cluster simulator |
//! | [`master_slave`] | `pga-master-slave` | global (data-parallel) model |
//! | [`island`] | `pga-island` | coarse-grained (distributed) model |
//! | [`cellular`] | `pga-cellular` | fine-grained (cellular) model |
//! | [`compact`] | `pga-compact` | compact GA: probability-vector model, sharded pcGA |
//! | [`hierarchical`] | `pga-hierarchical` | multi-layer, multi-fidelity model |
//! | [`multiobjective`] | `pga-multiobjective` | Pareto tools + specialized island model |
//! | [`analysis`] | `pga-analysis` | experiment runner, speedup/efficacy metrics |
//! | [`apps`] | `pga-apps` | application substrates (MLP/stock, images, signals) |
//! | [`serve`] | `pga-serve` | multi-tenant GA-as-a-service job server (HTTP + JSONL) |

#![warn(missing_docs)]

pub mod prelude;

pub use pga_analysis as analysis;
pub use pga_apps as apps;
pub use pga_cellular as cellular;
pub use pga_cluster as cluster;
pub use pga_compact as compact;
pub use pga_core as core;
pub use pga_hierarchical as hierarchical;
pub use pga_island as island;
pub use pga_master_slave as master_slave;
pub use pga_multiobjective as multiobjective;
pub use pga_observe as observe;
pub use pga_problems as problems;
pub use pga_serve as serve;
pub use pga_topology as topology;
