#!/usr/bin/env bash
# Local verification gate: formatting, lints, tests.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy unwrap gate (pga-master-slave, pga-cluster, pga-island, pga-serve lib code)"
# Lib targets only (no --all-targets): test modules may unwrap freely.
cargo clippy -q --no-deps -p pga-master-slave -p pga-cluster -p pga-island -p pga-serve -- -D warnings -D clippy::unwrap_used

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> pool determinism suite"
cargo test -q --test pool_determinism

echo "==> resilient fault-injection stress suite (release, timeout-guarded)"
# The suite's no-hang guarantee is only meaningful under a hard timeout.
timeout 300 cargo test -q -p pga-master-slave --release --test resilient_stress

echo "==> resilient archipelago suite (release, timeout-guarded)"
timeout 300 cargo test -q -p pga-island --release --test resilient_islands

echo "==> serve job-server suite: crash resume, fairness, HTTP (release, timeout-guarded)"
timeout 300 cargo test -q -p pga-serve --release --test serve_resume

echo "==> e19 serve load smoke (quick mode: no results files rewritten)"
timeout 300 cargo run -q --release -p pga-bench --bin e19_serve_load -- --quick > /dev/null

echo "verify: OK"
