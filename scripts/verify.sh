#!/usr/bin/env bash
# Local verification gate: formatting, lints, tests.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> pool determinism suite"
cargo test -q --test pool_determinism

echo "verify: OK"
