#!/usr/bin/env bash
# Local verification gate: formatting, lints, tests.
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy unwrap gate (pga-master-slave, pga-cluster, pga-island, pga-serve, pga-compact lib code)"
# Lib targets only (no --all-targets): test modules may unwrap freely.
cargo clippy -q --no-deps -p pga-master-slave -p pga-cluster -p pga-island -p pga-serve -p pga-compact -- -D warnings -D clippy::unwrap_used

echo "==> clippy expect gate (pga-serve lib code: no expect/panic paths in the server)"
# The job server must never take the pool down on a bad input; lib code
# proves it by carrying no unwrap/expect at all.
cargo clippy -q --no-deps -p pga-serve -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> word-kernel equivalence suite (word vs scalar operators)"
cargo test -q -p pga-core --test word_kernels

echo "==> BENCH_ops.json speedup gate (every kernel >= 2x over scalar)"
# Re-run 'cargo bench -p pga-bench --bench ops' to refresh the file after
# kernel changes; the gate checks the recorded entries.
awk -F'"speedup": ' '/"speedup"/ {
    v = $2 + 0
    if (v < 2.0) { print "speedup below 2x: " $0; bad = 1 }
    n++
}
END {
    if (n == 0) { print "no speedup entries found"; exit 1 }
    if (bad) exit 1
    print n " kernel entries, all >= 2x"
}' results/BENCH_ops.json

echo "==> pool determinism suite"
cargo test -q --test pool_determinism

echo "==> resilient fault-injection stress suite (release, timeout-guarded)"
# The suite's no-hang guarantee is only meaningful under a hard timeout.
timeout 300 cargo test -q -p pga-master-slave --release --test resilient_stress

echo "==> resilient archipelago suite (release, timeout-guarded)"
timeout 300 cargo test -q -p pga-island --release --test resilient_islands

echo "==> serve job-server suite: crash resume, fairness, HTTP (release, timeout-guarded)"
timeout 300 cargo test -q -p pga-serve --release --test serve_resume

echo "==> e19 serve load smoke (quick mode: no results files rewritten)"
timeout 300 cargo run -q --release -p pga-bench --bin e19_serve_load -- --quick > /dev/null

echo "==> serve chaos suite: fault injection, quarantine, degraded modes (release, timeout-guarded)"
# Injected stalls/backoffs must never hang the scheduler: timeout is the gate.
timeout 300 cargo test -q -p pga-serve --release --test chaos
timeout 300 cargo test -q -p pga-serve --release --test malformed

echo "==> e22 chaos availability smoke (quick mode: no results files rewritten)"
# Quick mode still asserts availability >= 0.99, exact quarantines, and
# bit-identical healthy results under the seeded storm.
timeout 300 cargo run -q --release -p pga-bench --bin e22_chaos_availability -- --quick > /dev/null 2> /dev/null

echo "==> BENCH_chaos.json availability gates (healthy availability >= 0.99, zero un-quarantined failures, exact quarantines)"
# Re-run 'cargo run --release -p pga-bench --bin e22_chaos_availability'
# (full mode) to refresh the file; the gates check the recorded storm.
awk '
/"availability"/ {
    seen++
    v = $2 + 0
    if (v < 0.99) { print "healthy availability " v " < 0.99"; bad = 1 }
}
/"unquarantined_failures"/ {
    seen++
    if ($2 + 0 != 0) { print "un-quarantined failures: " $2; bad = 1 }
}
/"quarantined"/ && !/"expected_quarantined"/ { seen++; q = $2 + 0 }
/"expected_quarantined"/ { seen++; eq = $2 + 0 }
/"recovery"/ {
    seen++
    if (match($0, /"divergent": [0-9]+/)) {
        d = substr($0, RSTART + 14, RLENGTH - 14) + 0
        if (d != 0) { print d " divergent post-storm replays"; bad = 1 }
    }
}
END {
    if (seen < 5) { print "BENCH_chaos.json is missing gated fields"; exit 1 }
    if (q != eq) { print "quarantined " q " != expected " eq; bad = 1 }
    if (bad) exit 1
    print "chaos storm: availability >= 0.99, " q "/" eq " quarantines, 0 un-quarantined failures, 0 divergent replays"
}' results/BENCH_chaos.json

echo "==> async steady-state acceptance suite (release, timeout-guarded)"
# Includes the stalled-worker no-barrier test: meaningful only under a timeout.
timeout 300 cargo test -q -p pga-master-slave --release --test async_steady

echo "==> overlap migration suite (release, timeout-guarded)"
timeout 300 cargo test -q -p pga-island --release --test overlap_migration

echo "==> e20 async fairness smoke (quick mode: no results files rewritten)"
# Quick mode still asserts async rate >= sync at 4 workers and overlap > sync islands.
timeout 300 cargo run -q --release -p pga-bench --bin e20_async_fairness -- --quick > /dev/null

echo "==> compact GA suite (release, timeout-guarded)"
timeout 300 cargo test -q -p pga-compact --release

echo "==> dispatch scaling suite (release: the near-linear gates need optimized timings)"
timeout 300 cargo test -q -p pga-cluster --release --test dispatch_scaling

echo "==> e21 compact scale smoke (quick mode: no results files rewritten)"
# Quick mode still asserts cGA/GA parity >= 0.9 and dispatch 1024->4096 <= 1.5x.
timeout 300 cargo run -q --release -p pga-bench --bin e21_compact_scale -- --quick > /dev/null

echo "==> BENCH_cluster.json gates (dispatch <= 1.5x linear at 4096 nodes; cGA parity >= 0.9)"
# Re-run 'cargo run --release -p pga-bench --bin e21_compact_scale' (full
# mode) to refresh the file; the gates check the recorded rows.
awk '/"ratio_vs_1024"/ {
    n4 = r = 0
    if (match($0, /"nodes": [0-9]+/))           n4 = substr($0, RSTART + 9, RLENGTH - 9) + 0
    if (match($0, /"ratio_vs_1024": [0-9.]+/))  r = substr($0, RSTART + 18, RLENGTH - 18) + 0
    if (n4 == 4096) {
        n++
        if (r > 1.5) { print "dispatch at 4096 nodes is " r "x its 1024-node cost (> 1.5x)"; bad = 1 }
    }
}
END {
    if (n == 0) { print "no 4096-node dispatch row found"; exit 1 }
    if (bad) exit 1
    print "dispatch at 4096 nodes within 1.5x of 1024-node per-task cost"
}' results/BENCH_cluster.json
awk -F'"parity": ' '/"parity": [0-9]/ {
    v = $2 + 0
    if (v < 0.9) { print "quality parity below 0.9: " $0; bad = 1 }
    n++
}
END {
    if (n == 0) { print "no parity entries found"; exit 1 }
    if (bad) exit 1
    print n " parity entries (serial cGA + sharded pcGA), all >= 0.9"
}' results/BENCH_cluster.json

echo "==> BENCH_async.json fairness gate (async >= sync at every worker count >= 4)"
# Re-run 'cargo run --release -p pga-bench --bin e20_async_fairness' (full
# mode) to refresh the file; the gate checks the recorded virtual sweep.
awk '/"workers"/ && /sync_evals_per_s/ {
    w = s = a = 0
    if (match($0, /"workers": [0-9]+/))          w = substr($0, RSTART + 11, RLENGTH - 11) + 0
    if (match($0, /"sync_evals_per_s": [0-9.]+/)) s = substr($0, RSTART + 20, RLENGTH - 20) + 0
    if (match($0, /"async_evals_per_s": [0-9.]+/)) a = substr($0, RSTART + 21, RLENGTH - 21) + 0
    if (w >= 4) {
        n++
        if (a < s) { print "async slower than sync at " w " workers: " a " < " s; bad = 1 }
    }
}
END {
    if (n == 0) { print "no gated virtual-sweep rows found"; exit 1 }
    if (bad) exit 1
    print n " virtual-sweep rows at >= 4 workers, async >= sync on all"
}' results/BENCH_async.json

echo "verify: OK"
