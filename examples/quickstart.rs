//! Quickstart: minimize Rastrigin with a 4-island parallel GA in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parallel_ga::prelude::*;
use std::sync::Arc;

fn main() {
    // A 10-dimensional Rastrigin instance; fitness <= 2.0 counts as solved.
    let problem = Arc::new(RealProblem::new(RealFunction::Rastrigin, 10).with_target(2.0));
    let bounds = problem.bounds().clone();

    // Four islands, each a small real-coded generational GA.
    let islands = (0..4)
        .map(|i| {
            GaBuilder::new(Arc::clone(&problem))
                .seed(42 + i)
                .pop_size(50)
                .selection(Tournament::binary())
                .crossover(BlxAlpha::new(bounds.clone()))
                .mutation(GaussianMutation {
                    p: 0.2,
                    sigma: 0.25,
                    bounds: bounds.clone(),
                })
                .scheme(Scheme::Generational { elitism: 1 })
                .build()
                .expect("valid configuration")
        })
        .collect();

    // Ring topology, best migrant every 16 generations, one thread/island.
    let result = run_threaded(
        islands,
        &Topology::RingUni,
        MigrationPolicy::default(),
        &Termination::new().until_optimum().max_generations(2000),
        false,
    )
    .expect("valid island configuration");

    println!("problem        : {}", problem.name());
    println!("best fitness   : {:.6}", result.best.fitness());
    println!("solved (<=2.0) : {}", result.hit_optimum);
    println!("evaluations    : {}", result.total_evaluations);
    println!("migrants sent  : {}", result.migrants_sent);
    println!("wall time      : {:?}", result.elapsed);
    println!(
        "best point     : {:?}",
        result
            .best
            .genome
            .values()
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
}
