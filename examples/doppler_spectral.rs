//! Parametric spectral estimation of a Doppler-like signal (Solano et al.
//! 2000 analog): the GA fits AR(4) coefficients by minimizing one-step
//! prediction error, then the fitted spectrum is compared to the truth.
//!
//! ```sh
//! cargo run --release --example doppler_spectral
//! ```

use parallel_ga::apps::{ArSignal, SpectralFit};
use parallel_ga::prelude::*;
use std::sync::Arc;

fn main() {
    // Two spectral peaks at normalized frequencies 0.10 and 0.27.
    let signal = ArSignal::doppler(2000, &[0.10, 0.27], 0.92, 0.5, 77);
    println!(
        "signal: {} samples, AR order {}, true coefficients {:?}",
        signal.samples().len(),
        signal.order(),
        signal
            .true_coeffs()
            .iter()
            .map(|c| (c * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let true_mse = signal.prediction_mse(signal.true_coeffs());
    let true_coeffs = signal.true_coeffs().to_vec();

    let fit = Arc::new(SpectralFit::new(signal));
    let bounds = fit.bounds().clone();
    let mut ga = GaBuilder::new(Arc::clone(&fit))
        .seed(5)
        .pop_size(80)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.25,
            sigma: 0.15,
            bounds,
        })
        .scheme(Scheme::Generational { elitism: 2 })
        .build()
        .expect("valid configuration");

    let result = ga
        .run(&Termination::new().max_generations(120))
        .expect("bounded");
    let coeffs = result.best.genome.values().to_vec();
    println!(
        "fitted coefficients: {:?}",
        coeffs
            .iter()
            .map(|c| (c * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!(
        "prediction MSE: fitted {:.4} vs generating model {:.4}",
        result.best_fitness, true_mse
    );
    println!(
        "coefficient-space error: {:.4}",
        fit.coeff_error(&result.best.genome)
    );

    // Coarse spectrum comparison across the band.
    println!("\nnormalized f   true PSD    fitted PSD");
    for i in 0..=20 {
        let f = 0.5 * i as f64 / 20.0;
        println!(
            "{:>10.3}   {:>9.2}   {:>10.2}",
            f,
            ArSignal::ar_spectrum(&true_coeffs, f),
            ArSignal::ar_spectrum(&coeffs, f),
        );
    }
}
