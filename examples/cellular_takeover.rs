//! Selection-pressure visualisation for cellular update policies
//! (Giacobini et al. 2003): plants one best individual on a torus and
//! prints ASCII takeover curves for each update policy.
//!
//! ```sh
//! cargo run --release --example cellular_takeover
//! ```

use parallel_ga::prelude::*;

fn main() {
    let (rows, cols) = (24, 24);
    println!("takeover of a planted best on a {rows}x{cols} torus (Von Neumann neighborhood)\n");

    let mut curves = Vec::new();
    for policy in UpdatePolicy::ALL {
        let mut grid = TakeoverGrid::new(rows, cols, CellNeighborhood::VonNeumann, policy, 42);
        let curve = grid.takeover_curve(100_000);
        curves.push((policy, curve));
    }

    let horizon = curves
        .iter()
        .map(|(_, c)| c.len())
        .max()
        .expect("non-empty");
    // ASCII chart: one row per policy, one column per sampled generation.
    let width = 60usize;
    for (policy, curve) in &curves {
        let bar: String = (0..width)
            .map(|i| {
                let gen = i * horizon / width;
                let p = *curve.get(gen).unwrap_or(&1.0);
                match p {
                    p if p >= 1.0 => '#',
                    p if p >= 0.75 => '8',
                    p if p >= 0.5 => 'o',
                    p if p >= 0.25 => ':',
                    p if p > 1.0 / (rows * cols) as f64 => '.',
                    _ => ' ',
                }
            })
            .collect();
        println!(
            "{:<20} |{bar}| takeover at gen {}",
            policy.name(),
            curve.len() - 1
        );
    }
    println!("\n(generations run left to right; '#' = best genotype fills the grid)");
    println!("synchronous spreads slowest (weakest pressure); uniform choice fastest.");
}
