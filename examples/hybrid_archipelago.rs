//! The survey's hybrid model, live: one migration ring mixing a panmictic
//! generational GA, a steady-state GA, and two cellular grids — all
//! exchanging migrants through the same policy via the `Deme` trait.
//!
//! ```sh
//! cargo run --release --example hybrid_archipelago
//! ```

use parallel_ga::prelude::*;
use std::sync::Arc;

fn main() {
    let problem: Arc<dyn Problem<Genome = BitString>> = Arc::new(DeceptiveTrap::new(4, 12));
    let len = 48;
    println!(
        "problem: {} (optimum {:?})",
        problem.name(),
        problem.optimum()
    );

    let panmictic = |seed: u64, scheme: Scheme| -> Box<dyn Deme<Genome = BitString>> {
        Box::new(
            GaBuilder::new(Arc::clone(&problem))
                .seed(seed)
                .pop_size(64)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(len))
                .scheme(scheme)
                .build()
                .expect("valid configuration"),
        )
    };
    let cellular = |seed: u64, policy: UpdatePolicy| -> Box<dyn Deme<Genome = BitString>> {
        Box::new(
            CellularGa::builder(Arc::clone(&problem))
                .grid(8, 8)
                .seed(seed)
                .update_policy(policy)
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(len))
                .build()
                .expect("valid configuration"),
        )
    };

    let kinds = [
        "generational",
        "steady-state",
        "cellular/sync",
        "cellular/line-sweep",
    ];
    let demes: Vec<Box<dyn Deme<Genome = BitString>>> = vec![
        panmictic(1, Scheme::Generational { elitism: 1 }),
        panmictic(
            2,
            Scheme::SteadyState {
                replacement: ReplacementPolicy::WorstIfBetter,
            },
        ),
        cellular(3, UpdatePolicy::Synchronous),
        cellular(4, UpdatePolicy::LineSweep),
    ];

    let mut archipelago = Archipelago::new(
        demes,
        Topology::RingUni,
        MigrationPolicy {
            interval: 8,
            count: 2,
            ..MigrationPolicy::default()
        },
    )
    .expect("valid island configuration");
    let result = archipelago
        .run(&Termination::new().until_optimum().max_generations(3000))
        .expect("bounded termination");

    println!(
        "best fitness  : {} (optimal: {})",
        result.best.fitness(),
        result.hit_optimum
    );
    println!("evaluations   : {}", result.total_evaluations);
    println!(
        "migrants      : {} sent, {} accepted",
        result.migrants_sent, result.migrants_accepted
    );
    println!("\nper-island results:");
    for (i, (kind, best)) in kinds.iter().zip(&result.per_island_best).enumerate() {
        let marker = if i == result.best_island {
            "  <- global best"
        } else {
            ""
        };
        println!("  island {i} ({kind:<20}): best {best}{marker}");
    }
}
