//! Adaptive Range GA on transonic-wing design (Oyama et al. 2000 analog):
//! the decoding range zooms onto the elite population statistics every few
//! generations, then a fixed-range GA gets the same budget for comparison.
//!
//! ```sh
//! cargo run --release --example wing_arga
//! ```

use parallel_ga::apps::{adaptive_range_search, fixed_range_search, ArgaConfig, WingDesign};
use std::sync::Arc;

fn main() {
    let problem = Arc::new(WingDesign::new(10, 99));
    let config = ArgaConfig::default();
    println!(
        "wing surrogate with {} design variables; {} stages x {} generations\n",
        10, config.stages, config.stage_generations
    );

    let arga = adaptive_range_search(&problem, config, 7);
    let fixed = fixed_range_search(&problem, config, arga.evaluations, 7);

    println!("                      ARGA        fixed range");
    println!(
        "best drag fitness : {:>9.5}   {:>9.5}",
        arga.best_fitness, fixed.best_fitness
    );
    println!(
        "design error      : {:>9.5}   {:>9.5}",
        problem.design_error(&arga.best),
        problem.design_error(&fixed.best)
    );
    println!(
        "evaluations       : {:>9}   {:>9}",
        arga.evaluations, fixed.evaluations
    );
    println!(
        "range adaptations : {:>9}   {:>9}",
        arga.adaptations, fixed.adaptations
    );

    println!("\nfinal ARGA decoding range vs planted optimum:");
    for (d, ((lo, hi), opt)) in arga
        .final_range
        .iter()
        .zip(problem.optimal_design())
        .enumerate()
    {
        let inside = if *lo <= *opt && *opt <= *hi {
            "ok"
        } else {
            "missed"
        };
        println!("  x{d:<2} in [{lo:.3}, {hi:.3}]  optimum {opt:.3}  {inside}");
    }
}
