//! Observability: trace a 4-island run to CSV and JSONL sinks, then render
//! the aggregated metrics as tables.
//!
//! ```sh
//! cargo run --release --example observability
//! ```
//!
//! Every island shares one in-memory ring recorder (events carry island
//! ids); after the run the trace is replayed into a CSV sink, a JSONL
//! sink, and a metrics recorder. Replaying a captured trace — instead of
//! teeing sinks into the hot loop — keeps file I/O out of the engines.

use parallel_ga::analysis::render_snapshot;
use parallel_ga::prelude::*;
use std::collections::BTreeMap;
use std::fs;
use std::sync::Arc;

const ISLANDS: usize = 4;
const GENOME_BLOCKS: usize = 12;

fn main() {
    let problem = Arc::new(DeceptiveTrap::new(4, GENOME_BLOCKS));
    let genome_len = 4 * GENOME_BLOCKS;

    // One shared ring; the single-threaded archipelago interleaves islands
    // deterministically, so the trace is reproducible run-to-run.
    let ring = RingRecorder::new(1 << 16);
    let islands = (0..ISLANDS)
        .map(|i| {
            GaBuilder::new(Arc::clone(&problem))
                .seed(7 + i as u64)
                .pop_size(40)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(genome_len))
                .scheme(Scheme::Generational { elitism: 1 })
                .recorder(ring.clone())
                .build()
                .expect("valid configuration")
        })
        .collect();

    let mut arch = Archipelago::new(
        islands,
        Topology::RingUni,
        MigrationPolicy {
            interval: 10,
            ..MigrationPolicy::default()
        },
    )
    .expect("valid island configuration");
    let result = arch
        .run(&Termination::new().max_generations(80))
        .expect("bounded termination");
    println!(
        "run finished: best {:.1} on island {}, {} evaluations, {} migrants sent\n",
        result.best.fitness(),
        result.best_island,
        result.total_evaluations,
        result.migrants_sent,
    );

    // Replay the captured trace into every consumer.
    let events = ring.take_events();
    let mut csv = CsvSink::new(Vec::new());
    let mut jsonl = JsonlSink::new(Vec::new());
    let mut metrics = MetricsRecorder::new(vec![24.0, 32.0, 40.0, 44.0, 48.0]);
    replay(&events, &mut csv);
    replay(&events, &mut jsonl);
    replay(&events, &mut metrics);

    let csv_bytes = csv.into_inner();
    let jsonl_bytes = jsonl.into_inner();
    fs::create_dir_all("target").expect("create target dir");
    fs::write("target/observability.csv", &csv_bytes).expect("write csv");
    fs::write("target/observability.jsonl", &jsonl_bytes).expect("write jsonl");

    let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
    for event in &events {
        *kinds.entry(event.kind.name()).or_insert(0) += 1;
    }
    println!("event kinds in the trace:");
    for (kind, count) in &kinds {
        println!("  {kind:<22} {count}");
    }

    let jsonl_text = String::from_utf8(jsonl_bytes).expect("jsonl is utf-8");
    println!("\nfirst JSONL lines (full trace in target/observability.jsonl):");
    for line in jsonl_text.lines().take(5) {
        println!("  {line}");
    }
    let csv_text = String::from_utf8(csv_bytes).expect("csv is utf-8");
    println!("\nfirst CSV lines (full trace in target/observability.csv):");
    for line in csv_text.lines().take(3) {
        println!("  {line}");
    }

    println!("\n{}", render_snapshot(&metrics.registry().snapshot()));
}
