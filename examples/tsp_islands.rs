//! Island GA on the traveling-salesman problem (Sena et al. 2001 analog):
//! permutation encoding, order crossover + inversion mutation, 8 islands.
//!
//! ```sh
//! cargo run --release --example tsp_islands
//! ```

use parallel_ga::prelude::*;
use std::sync::Arc;

fn main() {
    // 48 cities on a circle: optimum tour = city order around the circle,
    // so we can verify the GA actually found it.
    let tsp = Arc::new(Tsp::circle(48));
    println!("instance : {} ({} cities)", tsp.name(), tsp.n());
    println!("optimum  : {:.6}", tsp.optimum().expect("known"));

    let islands = (0..8)
        .map(|i| {
            GaBuilder::new(Arc::clone(&tsp))
                .seed(7 + i)
                .pop_size(60)
                .selection(Tournament::new(3))
                .crossover(Ox)
                .mutation(Inversion)
                .scheme(Scheme::Generational { elitism: 2 })
                .build()
                .expect("valid configuration")
        })
        .collect();

    let mut archipelago = Archipelago::new(
        islands,
        Topology::RingBi,
        MigrationPolicy {
            interval: 20,
            count: 2,
            ..MigrationPolicy::default()
        },
    )
    .expect("valid island configuration");
    let result = archipelago
        .run(&Termination::new().until_optimum().max_generations(2000))
        .expect("bounded termination");

    println!("best tour length : {:.6}", result.best.fitness());
    println!("optimal found    : {}", result.hit_optimum);
    println!("evaluations      : {}", result.total_evaluations);
    println!("per-island best  : {:?}", result.per_island_best);
    // Print the tour as city indices.
    let order: Vec<u32> = result.best.genome.order().to_vec();
    println!("tour             : {order:?}");
}
