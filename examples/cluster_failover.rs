//! Fault-tolerant master–slave evolution on a failing simulated cluster
//! (Gagné et al. 2003 analog): half the nodes die mid-run; the search is
//! unaffected, only the virtual clock slows down.
//!
//! ```sh
//! cargo run --release --example cluster_failover
//! ```

use parallel_ga::prelude::*;
use std::sync::Arc;

fn engine(seed: u64) -> parallel_ga::core::Ga<Arc<DeceptiveTrap>> {
    let problem = Arc::new(DeceptiveTrap::new(4, 12));
    GaBuilder::new(problem)
        .seed(seed)
        .pop_size(120)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(48))
        .scheme(Scheme::Generational { elitism: 1 })
        .build()
        .expect("valid configuration")
}

fn main() {
    let nodes = 8;
    let spec = ClusterSpec::heterogeneous(nodes, 3.0, 99, NetworkProfile::FastEthernet)
        .expect("cluster config");
    println!(
        "cluster: {nodes} nodes, speeds {:?}, {}",
        spec.speeds
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        spec.network.name()
    );

    // Healthy run.
    let stop = Termination::new().until_optimum().max_generations(150);
    let healthy =
        SimulatedMasterSlaveGa::new(engine(3), spec.clone(), FailurePlan::none(nodes), 0.005)
            .expect("valid cluster configuration")
            .run(&stop)
            .expect("bounded termination");

    // Same seeds, but nodes 0..4 die in the first virtual seconds.
    let failures = FailurePlan::at(vec![
        Some(0.3),
        Some(0.6),
        Some(0.9),
        Some(1.2),
        None,
        None,
        None,
        None,
    ]);
    let faulty = SimulatedMasterSlaveGa::new(engine(3), spec, failures, 0.005)
        .expect("valid cluster configuration")
        .run(&stop)
        .expect("bounded termination");

    println!("\n                       healthy     4 nodes fail");
    println!(
        "best fitness (opt 48): {:>8.1}    {:>8.1}",
        healthy.best_fitness, faulty.best_fitness
    );
    println!(
        "generations          : {:>8}    {:>8}",
        healthy.generations, faulty.generations
    );
    println!(
        "virtual seconds      : {:>8.2}    {:>8.2}",
        healthy.virtual_seconds, faulty.virtual_seconds
    );
    println!(
        "task reassignments   : {:>8}    {:>8}",
        healthy.reassignments, faulty.reassignments
    );
    println!(
        "dead nodes           : {:>8}    {:>8}",
        healthy.dead_nodes, faulty.dead_nodes
    );
    println!(
        "\nsearch identical under failures: {} (fault tolerance loses time, never state)",
        (healthy.best_fitness - faulty.best_fitness).abs() < f64::EPSILON
    );
}
