//! Island GA on the discrete reactor-core design problem (Pereira & Lapa
//! 2003 analog): integer design variables, criticality and thermal-flux
//! constraints handled by penalties, distributed over a ring of islands.
//!
//! ```sh
//! cargo run --release --example reactor_design
//! ```

use parallel_ga::apps::ReactorDesign;
use parallel_ga::prelude::*;
use std::sync::Arc;

fn main() {
    let problem = Arc::new(ReactorDesign::new(6, 2024));
    println!(
        "core: {} ({} design variables, {} levels each)",
        problem.name(),
        problem.dim(),
        ReactorDesign::LEVELS
    );

    let islands = (0..4)
        .map(|i| {
            GaBuilder::new(Arc::clone(&problem))
                .seed(10 + i)
                .pop_size(40)
                .selection(Tournament::binary())
                .crossover(Uniform::half())
                .mutation(IntCreep {
                    p: 0.1,
                    max_step: 2,
                })
                .scheme(Scheme::Generational { elitism: 1 })
                .build()
                .expect("valid configuration")
        })
        .collect();
    let mut archipelago = Archipelago::new(islands, Topology::RingUni, MigrationPolicy::default())
        .expect("valid island configuration");
    let result = archipelago
        .run(&Termination::new().until_optimum().max_generations(2000))
        .expect("bounded termination");

    let design = &result.best.genome;
    println!(
        "\nbest peak factor : {:.6} (target 1.0)",
        result.best.fitness()
    );
    println!("optimal found    : {}", result.hit_optimum);
    println!(
        "k_eff            : {:.4} (band [0.99, 1.01])",
        problem.k_eff(design)
    );
    println!(
        "thermal flux     : {:.4} (min 0.90)",
        problem.thermal_flux(design)
    );
    println!("evaluations      : {}", result.total_evaluations);
    println!("\nzone  enrichment  moderator  dimension");
    for z in 0..problem.zones() {
        println!(
            "{:>4}  {:>10}  {:>9}  {:>9}",
            z,
            design.values()[3 * z],
            design.values()[3 * z + 1],
            design.values()[3 * z + 2]
        );
    }
}
