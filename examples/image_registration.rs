//! 2-phase GA image registration (Chalermwat et al. 2001 analog): phase 1
//! searches a half-resolution pyramid level, phase 2 refines at full
//! resolution seeded by the coarse solution.
//!
//! ```sh
//! cargo run --release --example image_registration
//! ```

use parallel_ga::apps::{Image, Registration, RigidTransform};
use parallel_ga::prelude::*;
use std::sync::Arc;

fn ga(
    problem: Arc<Registration>,
    pop: usize,
    sigma: f64,
    seed: u64,
) -> parallel_ga::core::Ga<Arc<Registration>> {
    let bounds = problem.bounds().clone();
    GaBuilder::new(problem)
        .seed(seed)
        .pop_size(pop)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.3,
            sigma,
            bounds,
        })
        .scheme(Scheme::Generational { elitism: 2 })
        .build()
        .expect("valid configuration")
}

fn main() {
    // Synthetic "satellite scene" and a displaced observation of it.
    let scene = Image::synthetic(96, 96, 14, 7);
    let truth = RigidTransform {
        tx: 6.0,
        ty: -4.0,
        theta: 0.10,
    };
    let reference = scene.warp(truth);
    let registration = Arc::new(Registration::new(reference, scene, 12.0, 0.3));
    println!(
        "ground truth: tx={} ty={} theta={}",
        truth.tx, truth.ty, truth.theta
    );

    // Phase 1 — half resolution (4x cheaper per evaluation).
    let coarse = Arc::new(registration.downsampled());
    let mut phase1 = ga(Arc::clone(&coarse), 40, 1.5, 1);
    let r1 = phase1
        .run(&Termination::new().max_generations(40))
        .expect("bounded");
    let seedling = Registration::upscale_genome(&r1.best.genome);
    println!(
        "phase 1 (48x48): residual {:.4}, candidate tx={:.2} ty={:.2} theta={:.3}",
        r1.best_fitness, seedling[0], seedling[1], seedling[2]
    );

    // Phase 2 — full resolution, small refinement around the candidate.
    let mut phase2 = ga(Arc::clone(&registration), 24, 0.3, 2);
    let fitness = registration.evaluate(&seedling);
    phase2.receive_immigrants(
        vec![Individual::evaluated(seedling, fitness)],
        ReplacementPolicy::Worst,
    );
    let r2 = phase2
        .run(&Termination::new().max_generations(30))
        .expect("bounded");

    let found = Registration::transform_of(&r2.best.genome);
    let (terr, rerr) = Registration::error_vs(&r2.best.genome, truth);
    println!(
        "phase 2 (96x96): residual {:.4}, found tx={:.2} ty={:.2} theta={:.3}",
        r2.best_fitness, found.tx, found.ty, found.theta
    );
    println!("registration error: {terr:.2} px translation, {rerr:.4} rad rotation");
    println!("sub-pixel accurate: {}", terr < 1.0);
}
