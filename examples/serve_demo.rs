//! GA-as-a-service demo: start the job server, submit four jobs (one per
//! wire-buildable engine family) over real HTTP, stream one job's JSONL
//! events, then restart the server from its spool to show that terminal
//! status survives.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use parallel_ga::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Minimal one-shot HTTP client (the server closes each connection).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("request");
    let mut reader = BufReader::new(conn);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    let code = status
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let mut raw = String::new();
    reader.read_to_string(&mut raw).expect("body");
    let body = raw
        .split_once("\r\n\r\n")
        .map_or(raw.clone(), |(_, b)| b.to_string());
    (code, body)
}

fn main() {
    let spool = std::env::temp_dir().join(format!("pga-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);

    let serve = ServeBuilder::new()
        .spool_dir(&spool)
        .bind("127.0.0.1:0")
        .max_jobs(16)
        .steps_per_slice(8)
        .build()
        .expect("server starts");
    let addr = serve.http_addr().expect("bound");
    println!("serving on http://{addr}\n");

    // One job per engine family, all on a 4x12 deceptive trap.
    let problem = r#""problem": {"kind": "trap", "k": 4, "blocks": 12}"#;
    let engines = [
        r#"{"family": "ga", "pop": 64}"#,
        r#"{"family": "steady", "pop": 64}"#,
        r#"{"family": "cellular", "rows": 8, "cols": 8}"#,
        r#"{"family": "island", "islands": 4, "pop": 16}"#,
    ];
    let mut ids = Vec::new();
    for (i, engine) in engines.iter().enumerate() {
        let spec = format!(
            r#"{{"tenant": "demo", {problem}, "engine": {engine}, "seed": {}, "budget": {{"generations": 60, "target": 48.0}}}}"#,
            7 + i
        );
        let (code, body) = http(addr, "POST", "/jobs", &spec);
        assert_eq!(code, 201, "{body}");
        // The submit response is {"id":"jN"}.
        let id = body
            .trim()
            .trim_start_matches(r#"{"id":""#)
            .trim_end_matches("\"}")
            .to_string();
        println!("submitted {engine} -> {id}");
        ids.push(id);
    }

    // Stream the first job's events live (close-delimited NDJSON).
    let (code, events) = http(addr, "GET", &format!("/jobs/{}/events", ids[0]), "");
    assert_eq!(code, 200);
    let lines: Vec<&str> = events.lines().collect();
    println!(
        "\n{} events streamed from {}; first and last:",
        lines.len(),
        ids[0]
    );
    if let (Some(first), Some(last)) = (lines.first(), lines.last()) {
        println!("  {first}\n  {last}");
    }

    serve.wait_all(Duration::from_secs(60));
    println!("\nfinal status:");
    for id in &ids {
        let (_, status) = http(addr, "GET", &format!("/jobs/{id}"), "");
        println!("  {status}");
    }
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    let picks = [
        "serve.submitted",
        "serve.slices",
        "serve.steps",
        "pool.workers",
    ];
    println!("\nselected metrics:");
    for line in metrics
        .lines()
        .filter(|l| picks.iter().any(|p| l.starts_with(p)))
    {
        println!("  {line}");
    }
    serve.shutdown();

    // Restart over the same spool: terminal jobs survive as tombstones.
    let restarted = ServeBuilder::new()
        .spool_dir(&spool)
        .build()
        .expect("restart");
    println!(
        "\nrestarted from spool: {} terminal job(s) recovered, e.g. {}",
        restarted.recover_report().terminal,
        restarted.status_json(JobId(0)).expect("status retained")
    );
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}
