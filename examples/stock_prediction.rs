//! Neuro-genetic daily stock prediction (Kwon & Moon 2003 analog): evolve
//! the weights of a small MLP that decides long/flat each day; compare with
//! buy-and-hold on a held-out window.
//!
//! ```sh
//! cargo run --release --example stock_prediction
//! ```

use parallel_ga::apps::{MarketSeries, StockPrediction};
use parallel_ga::prelude::*;
use std::sync::Arc;

fn main() {
    // 600 trading days of a regime-switching synthetic market; the first
    // 420 train the network, the rest are held out.
    let market = MarketSeries::generate(600, 2024);
    let problem = StockPrediction::new(market, 6, 420);
    let bounds = problem.bounds().clone();
    println!("network: 8 -> 6 -> 1 ({} evolvable weights)", problem.dim());
    println!(
        "training buy-and-hold wealth: {:.4}",
        problem.train_buy_and_hold()
    );

    let shared = Arc::new(problem);
    let mut ga = GaBuilder::new(Arc::clone(&shared))
        .seed(11)
        .pop_size(60)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.15,
            sigma: 0.4,
            bounds,
        })
        .scheme(Scheme::Generational { elitism: 2 })
        .build()
        .expect("valid configuration");

    let result = ga
        .run(&Termination::new().max_generations(80))
        .expect("bounded");
    println!("evolved training wealth      : {:.4}", result.best_fitness);

    let (strategy, buy_and_hold) = shared.test_outcome(&result.best.genome);
    println!("held-out strategy wealth     : {:.4}", strategy.wealth);
    println!("held-out buy-and-hold wealth : {:.4}", buy_and_hold.wealth);
    println!(
        "days long: {}/{} — {}",
        strategy.days_long,
        strategy.days_total,
        if strategy.wealth > buy_and_hold.wealth {
            "the neuro-genetic hybrid beats buy-and-hold out of sample"
        } else {
            "buy-and-hold wins on this market draw"
        }
    );
}
