//! Checkpoint/resume: for every engine family, stopping at generation `g`,
//! serializing the snapshot to bytes, restoring it into a freshly built
//! engine of the same configuration, and continuing must be bit-identical
//! to an uninterrupted run. Corrupted and mismatched snapshots must be
//! rejected with typed errors, never a panic.

use parallel_ga::cellular::CellularGa;
use parallel_ga::cluster::{ClusterSpec, EvalCostModel, FailurePlan, NetworkProfile};
use parallel_ga::compact::{CompactGa, ShardedCompactGa};
use parallel_ga::core::ops::{BitFlip, BlxAlpha, GaussianMutation, OnePoint, Sbx, Tournament};
use parallel_ga::core::{Bounds, Engine, Ga, GaBuilder, Scheme, Snapshot, SnapshotError};
use parallel_ga::hierarchical::{BlurredFidelity, Hga, HgaConfig, LevelView};
use parallel_ga::island::{Archipelago, MigrationPolicy};
use parallel_ga::island::{EmigrantSelection, SyncMode};
use parallel_ga::master_slave::{AsyncSteadyStateGa, SimulatedMasterSlaveGa};
use parallel_ga::multiobjective::{MoEngine, Zdt};
use parallel_ga::problems::{DeceptiveTrap, OneMax, RealFunction, RealProblem};
use parallel_ga::topology::Topology;
use std::sync::Arc;

/// Runs `total` steps uninterrupted, then replays the same run as
/// `split` steps → snapshot → byte roundtrip → restore into a fresh
/// engine → remaining steps, and asserts the final serialized states are
/// byte-for-byte equal.
fn assert_bit_identical_resume<E: Engine>(mut make: impl FnMut() -> E, total: u64, split: u64) {
    assert!(split < total);
    let mut reference = make();
    for _ in 0..total {
        reference.step();
    }
    let expected = reference.snapshot().to_bytes();

    let mut first_leg = make();
    for _ in 0..split {
        first_leg.step();
    }
    let bytes = first_leg.snapshot().to_bytes();
    let checkpoint = Snapshot::from_bytes(&bytes).expect("snapshot roundtrips through bytes");

    let mut resumed = make();
    resumed
        .restore(&checkpoint)
        .expect("restore into an identically configured engine");
    for _ in 0..(total - split) {
        resumed.step();
    }
    assert_eq!(
        resumed.snapshot().to_bytes(),
        expected,
        "resumed run diverged from the uninterrupted run ({})",
        reference.engine_id()
    );
}

fn onemax_ga(seed: u64) -> Ga<Arc<OneMax>> {
    GaBuilder::new(Arc::new(OneMax::new(48)))
        .seed(seed)
        .pop_size(30)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(48))
        .scheme(Scheme::Generational { elitism: 1 })
        .build()
        .expect("valid configuration")
}

#[test]
fn sequential_ga_resumes_bit_identically() {
    assert_bit_identical_resume(|| onemax_ga(11), 20, 7);
}

#[test]
fn archipelago_resumes_bit_identically() {
    assert_bit_identical_resume(
        || {
            let problem = Arc::new(DeceptiveTrap::new(4, 8));
            let islands = (0..4)
                .map(|i| {
                    GaBuilder::new(Arc::clone(&problem))
                        .seed(40 + i)
                        .pop_size(20)
                        .selection(Tournament::binary())
                        .crossover(OnePoint)
                        .mutation(BitFlip::one_over_len(32))
                        .scheme(Scheme::Generational { elitism: 1 })
                        .build()
                        .expect("valid configuration")
                })
                .collect();
            Archipelago::new(islands, Topology::RingUni, MigrationPolicy::default())
                .expect("valid island configuration")
        },
        // Crosses two migration epochs, snapshots mid-epoch.
        40,
        19,
    );
}

#[test]
fn cellular_ga_resumes_bit_identically() {
    assert_bit_identical_resume(
        || {
            CellularGa::builder(OneMax::new(32))
                .grid(8, 8)
                .seed(5)
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(32))
                .build()
                .expect("valid configuration")
        },
        15,
        6,
    );
}

#[test]
fn hga_resumes_bit_identically() {
    assert_bit_identical_resume(
        || {
            let problem = Arc::new(BlurredFidelity::new(
                RealProblem::new(RealFunction::Sphere, 4).with_target(0.05),
                2,
                0.1,
                4.0,
            ));
            Hga::new(
                problem,
                HgaConfig::default(),
                5,
                |view: LevelView<_>, seed| {
                    let bounds = Bounds::uniform(-5.12, 5.12, 4);
                    GaBuilder::new(view)
                        .seed(seed)
                        .pop_size(12)
                        .selection(Tournament::binary())
                        .crossover(BlxAlpha::new(bounds.clone()))
                        .mutation(GaussianMutation {
                            p: 0.25,
                            sigma: 0.3,
                            bounds,
                        })
                        .scheme(Scheme::Generational { elitism: 1 })
                        .build()
                        .expect("valid configuration")
                },
            )
            .expect("valid hierarchy configuration")
        },
        10,
        4,
    );
}

#[test]
fn nsga_resumes_bit_identically() {
    assert_bit_identical_resume(
        || {
            let p = Zdt::new(1, 6);
            let b = p.bounds().clone();
            MoEngine::builder(p)
                .seed(23)
                .pop_size(20)
                .crossover(Sbx::new(b.clone()))
                .mutation(GaussianMutation {
                    p: 0.1,
                    sigma: 0.1,
                    bounds: b,
                })
                .build()
                .expect("valid configuration")
        },
        18,
        9,
    );
}

#[test]
fn simulated_master_slave_resumes_bit_identically() {
    assert_bit_identical_resume(
        || {
            let spec = ClusterSpec::heterogeneous(6, 4.0, 5, NetworkProfile::FastEthernet).unwrap();
            SimulatedMasterSlaveGa::new(
                onemax_ga(3),
                spec,
                FailurePlan::exponential(6, 2.0, 100.0, 9).unwrap(),
                0.01,
            )
            .expect("valid cluster configuration")
        },
        16,
        5,
    );
}

fn async_steady(seed: u64) -> AsyncSteadyStateGa<Arc<OneMax>> {
    let cluster =
        ClusterSpec::heterogeneous(5, 3.0, 7, NetworkProfile::FastEthernet).expect("valid cluster");
    let cost = EvalCostModel::bimodal(0.01, 0.2, 0.25).expect("valid cost model");
    AsyncSteadyStateGa::builder(Arc::new(OneMax::new(48)))
        .seed(seed)
        .pop_size(24)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(48))
        .virtual_cluster(cluster, cost)
        .build()
        .expect("valid configuration")
}

#[test]
fn async_steady_resumes_bit_identically() {
    // The split point leaves evaluations in flight on the virtual nodes;
    // the snapshot must carry them (and the arrival clock) for the resumed
    // run to fold results in the identical order.
    assert_bit_identical_resume(|| async_steady(17), 18, 7);
}

#[test]
fn overlap_archipelago_resumes_bit_identically() {
    assert_bit_identical_resume(
        || {
            let problem = Arc::new(DeceptiveTrap::new(4, 8));
            let islands = (0..4)
                .map(|i| {
                    GaBuilder::new(Arc::clone(&problem))
                        .seed(60 + i)
                        .pop_size(20)
                        .selection(Tournament::binary())
                        .crossover(OnePoint)
                        .mutation(BitFlip::one_over_len(32))
                        .scheme(Scheme::Generational { elitism: 1 })
                        .build()
                        .expect("valid configuration")
                })
                .collect();
            let policy = MigrationPolicy {
                interval: 8,
                count: 2,
                emigrant: EmigrantSelection::Best,
                replacement: parallel_ga::core::ops::ReplacementPolicy::WorstIfBetter,
                sync: SyncMode::Overlap,
            };
            Archipelago::new(islands, Topology::RingUni, policy)
                .expect("valid island configuration")
        },
        // Splits exactly at an epoch boundary, while migrants are in
        // flight toward the next generation's replacement point.
        20,
        8,
    );
}

fn compact(seed: u64) -> CompactGa<Arc<OneMax>> {
    CompactGa::builder(Arc::new(OneMax::new(48)))
        .seed(seed)
        .virtual_pop(63)
        .build()
        .expect("valid configuration")
}

#[test]
fn compact_ga_resumes_bit_identically() {
    // The snapshot is just the probability vector + RNG + counters, so the
    // roundtrip exercises the full model state.
    assert_bit_identical_resume(|| compact(29), 30, 11);
}

fn sharded_compact(seed: u64) -> ShardedCompactGa<Arc<OneMax>> {
    let cluster = ClusterSpec::homogeneous(6, NetworkProfile::FastEthernet).expect("valid cluster");
    ShardedCompactGa::builder(Arc::new(OneMax::new(48)))
        .cluster(cluster)
        .virtual_pop(63)
        .seed(seed)
        .build()
        .expect("valid configuration")
}

#[test]
fn sharded_compact_ga_resumes_bit_identically() {
    // The split point leaves the virtual clock mid-run; the snapshot must
    // carry the per-shard slices and the clock for the resumed run to
    // replay the same gather/broadcast schedule.
    assert_bit_identical_resume(|| sharded_compact(31), 25, 9);
}

#[test]
fn compact_rejects_mismatched_virtual_pop_on_restore() {
    let donor = compact(1);
    let mut other = CompactGa::builder(Arc::new(OneMax::new(48)))
        .seed(1)
        .virtual_pop(127) // differs from the snapshot's 63
        .build()
        .expect("valid configuration");
    assert!(matches!(
        other.restore(&donor.snapshot()),
        Err(SnapshotError::Invalid(_))
    ));
    // Cross-family restore between the serial and sharded variants is a
    // typed WrongEngine, not a silent reinterpretation.
    let mut sharded = sharded_compact(1);
    assert!(matches!(
        sharded.restore(&donor.snapshot()),
        Err(SnapshotError::WrongEngine { .. })
    ));
}

#[test]
fn async_steady_rejects_wrong_engine_and_mismatched_cluster() {
    let sequential = onemax_ga(1);
    let mut engine = async_steady(2);
    assert!(matches!(
        engine.restore(&sequential.snapshot()),
        Err(SnapshotError::WrongEngine { .. })
    ));
    // Same engine family, different virtual node count: typed rejection.
    let other = {
        let cluster = ClusterSpec::homogeneous(3, NetworkProfile::FastEthernet).expect("valid");
        let cost = EvalCostModel::fixed(0.01).expect("valid cost model");
        AsyncSteadyStateGa::builder(Arc::new(OneMax::new(48)))
            .seed(2)
            .pop_size(24)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(48))
            .virtual_cluster(cluster, cost)
            .build()
            .expect("valid configuration")
    };
    assert!(matches!(
        engine.restore(&other.snapshot()),
        Err(SnapshotError::Invalid(_))
    ));
}

#[test]
fn corrupted_snapshot_bytes_are_rejected() {
    let ga = onemax_ga(1);
    let mut bytes = ga.snapshot().to_bytes();
    // Flip one payload bit; the FNV checksum must catch it.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    assert_eq!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::ChecksumMismatch)
    );
}

#[test]
fn truncated_and_garbage_snapshots_are_rejected() {
    let bytes = onemax_ga(1).snapshot().to_bytes();
    assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    assert!(Snapshot::from_bytes(&[]).is_err());
    assert_eq!(
        Snapshot::from_bytes(b"not a snapshot at all"),
        Err(SnapshotError::BadHeader)
    );
}

#[test]
fn wrong_engine_snapshot_is_rejected_on_restore() {
    let sequential = onemax_ga(1);
    let mut cellular = CellularGa::builder(OneMax::new(48))
        .grid(6, 5)
        .seed(2)
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(48))
        .build()
        .expect("valid configuration");
    match cellular.restore(&sequential.snapshot()) {
        Err(SnapshotError::WrongEngine { expected, found }) => {
            assert_eq!(expected, cellular.engine_id());
            assert_eq!(found, sequential.engine_id());
        }
        other => panic!("expected WrongEngine, got {other:?}"),
    }
}

#[test]
fn mismatched_configuration_is_rejected_on_restore() {
    let big = onemax_ga(1);
    let mut small = GaBuilder::new(Arc::new(OneMax::new(48)))
        .seed(1)
        .pop_size(10) // differs from the snapshot's 30
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(48))
        .scheme(Scheme::Generational { elitism: 1 })
        .build()
        .expect("valid configuration");
    assert!(matches!(
        small.restore(&big.snapshot()),
        Err(SnapshotError::Invalid(_))
    ));
}
