//! Every engine-family builder rejects invalid configurations with a typed
//! [`ConfigError`] instead of panicking — the contract that makes the
//! builder façade the canonical configuration path.

use parallel_ga::hierarchical::{BlurredFidelity, LevelView};
use parallel_ga::multiobjective::Schaffer;
use parallel_ga::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn onemax_island(seed: u64) -> Ga<OneMax, SerialEvaluator> {
    Ga::builder(OneMax::new(32))
        .seed(seed)
        .pop_size(16)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(32))
        .build()
        .expect("valid island")
}

fn invalid_parameter_named(err: &ConfigError, expected: &str) -> bool {
    matches!(err, ConfigError::InvalidParameter { name, .. } if *name == expected)
}

/// `unwrap_err` without requiring the (non-Debug) engine type to print.
fn err_of<T>(result: Result<T, ConfigError>) -> ConfigError {
    match result {
        Ok(_) => panic!("expected a ConfigError, got a built value"),
        Err(e) => e,
    }
}

#[test]
fn ga_builder_rejects_degenerate_population() {
    let err = err_of(
        Ga::builder(OneMax::new(8))
            .pop_size(0)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(8))
            .build(),
    );
    assert!(invalid_parameter_named(&err, "pop_size"), "{err}");
}

#[test]
fn ga_builder_reports_missing_operators() {
    let err = err_of(Ga::builder(OneMax::new(8)).pop_size(10).build());
    assert!(matches!(err, ConfigError::MissingComponent(_)), "{err}");
}

#[test]
fn cellular_builder_rejects_empty_grid() {
    let err = err_of(
        CellularGa::builder(OneMax::new(8))
            .grid(0, 5)
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(8))
            .build(),
    );
    assert!(invalid_parameter_named(&err, "grid"), "{err}");
}

#[test]
fn mo_builder_rejects_tiny_population() {
    let err = err_of(MoEngine::builder(Schaffer::new()).pop_size(3).build());
    assert!(invalid_parameter_named(&err, "pop_size"), "{err}");
}

#[test]
fn archipelago_builder_rejects_zero_islands() {
    let err = err_of(Archipelago::<Ga<OneMax, SerialEvaluator>>::builder().build());
    assert!(invalid_parameter_named(&err, "islands"), "{err}");
}

#[test]
fn archipelago_builder_rejects_incompatible_topology() {
    let err = err_of(
        Archipelago::builder()
            .islands((0..5).map(onemax_island))
            .topology(Topology::Hypercube)
            .build(),
    );
    assert!(invalid_parameter_named(&err, "topology"), "{err}");
}

#[test]
fn archipelago_builder_accepts_and_runs_a_valid_config() {
    let mut arch = Archipelago::builder()
        .islands((0..4).map(onemax_island))
        .topology(Topology::RingBi)
        .build()
        .expect("valid archipelago");
    let run = arch
        .run(&Termination::new().max_generations(5))
        .expect("bounded");
    assert!(run.generations.iter().all(|&g| g == 5));
}

fn sphere_fidelity() -> Arc<BlurredFidelity<RealProblem>> {
    Arc::new(BlurredFidelity::new(
        RealProblem::new(RealFunction::Sphere, 4),
        3,
        0.1,
        4.0,
    ))
}

fn sphere_island(
    view: LevelView<BlurredFidelity<RealProblem>>,
    seed: u64,
) -> Ga<LevelView<BlurredFidelity<RealProblem>>, SerialEvaluator> {
    let bounds = Bounds::uniform(-5.12, 5.12, 4);
    Ga::builder(view)
        .seed(seed)
        .pop_size(10)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.25,
            sigma: 0.3,
            bounds,
        })
        .build()
        .expect("valid island")
}

#[test]
fn hga_builder_requires_an_island_factory() {
    let err = err_of(Hga::builder(sphere_fidelity()).build());
    assert_eq!(err, ConfigError::MissingComponent("island factory"));
}

#[test]
fn hga_builder_rejects_zero_epoch_generations() {
    let err = err_of(
        Hga::builder(sphere_fidelity())
            .epoch_generations(0)
            .island(sphere_island)
            .build(),
    );
    assert!(invalid_parameter_named(&err, "epoch_generations"), "{err}");
}

#[test]
fn hga_builder_rejects_empty_layers() {
    let err = err_of(
        Hga::builder(sphere_fidelity())
            .layer_widths(vec![])
            .island(sphere_island)
            .build(),
    );
    assert!(matches!(err, ConfigError::InvalidParameter { .. }), "{err}");
}

#[test]
fn resilient_builder_rejects_zero_workers() {
    let err = err_of(ResilientEvaluator::builder(OneMax::new(8), 0).build());
    assert!(invalid_parameter_named(&err, "workers"), "{err}");
}

#[test]
fn resilient_builder_rejects_degenerate_timings() {
    let err = err_of(
        ResilientEvaluator::builder(OneMax::new(8), 2)
            .task_deadline(Duration::ZERO)
            .build(),
    );
    assert!(invalid_parameter_named(&err, "task_deadline"), "{err}");

    let err = err_of(
        ResilientEvaluator::builder(OneMax::new(8), 2)
            .heartbeat_interval(Duration::from_millis(50))
            .heartbeat_timeout(Duration::from_millis(10))
            .build(),
    );
    assert!(invalid_parameter_named(&err, "heartbeat_timeout"), "{err}");
}

#[test]
fn resilient_builder_rejects_mismatched_fault_plan() {
    let err = err_of(
        ResilientEvaluator::builder(OneMax::new(8), 3)
            .fault_plan(FaultPlan::none(2))
            .build(),
    );
    assert!(invalid_parameter_named(&err, "fault_plan"), "{err}");
}

#[test]
fn rayon_evaluator_rejects_zero_workers_and_zero_chunk() {
    let err = err_of(RayonEvaluator::new(0));
    assert!(invalid_parameter_named(&err, "workers"), "{err}");

    let err = err_of(RayonEvaluator::new(2).and_then(|e| e.with_min_chunk(0)));
    assert!(invalid_parameter_named(&err, "min_chunk"), "{err}");
}

#[test]
fn cluster_spec_and_failure_plan_reject_bad_inputs() {
    let err = err_of(ClusterSpec::homogeneous(0, NetworkProfile::Myrinet));
    assert!(invalid_parameter_named(&err, "nodes"), "{err}");

    let err = err_of(ClusterSpec::heterogeneous(
        4,
        0.5,
        1,
        NetworkProfile::Myrinet,
    ));
    assert!(invalid_parameter_named(&err, "max_ratio"), "{err}");

    let err = err_of(FailurePlan::exponential(4, 0.0, 10.0, 1));
    assert!(invalid_parameter_named(&err, "mtbf_s"), "{err}");
}
