//! Determinism suite for the persistent work-stealing pool.
//!
//! The pool may reorder *execution* freely (stealing, parking, chunk
//! scheduling) but must never change *results*: a pool-backed run has to be
//! bit-identical to a serial run with the same seed, and to itself across
//! worker counts. The suite also pins the pool's two contractual behaviours
//! beyond determinism: nested `install` scoping and worker-panic
//! propagation.

use parallel_ga::cellular::{CellularGa, UpdatePolicy};
use parallel_ga::core::ops::{BitFlip, OnePoint, Tournament};
use parallel_ga::core::{BitString, Evaluator, Ga, GaBuilder, Scheme, SerialEvaluator};
use parallel_ga::master_slave::RayonEvaluator;
use parallel_ga::problems::OneMax;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const LEN: usize = 96;
const GENS: usize = 25;

fn ga<E: Evaluator<Arc<OneMax>>>(evaluator: E, seed: u64) -> Ga<Arc<OneMax>, E> {
    GaBuilder::new(Arc::new(OneMax::new(LEN)))
        .seed(seed)
        .pop_size(48)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(LEN))
        .scheme(Scheme::Generational { elitism: 1 })
        .evaluator(evaluator)
        .build()
        .expect("valid configuration")
}

/// Per-generation fingerprint of a GA run: exact stats plus the best genome.
fn ga_trajectory<E: Evaluator<Arc<OneMax>>>(evaluator: E, seed: u64) -> Vec<(f64, f64, BitString)> {
    let mut engine = ga(evaluator, seed);
    (0..GENS)
        .map(|_| {
            let s = engine.step();
            (s.best, s.mean, engine.best_ever().genome.clone())
        })
        .collect()
}

#[test]
fn pool_runs_are_bit_identical_to_serial_across_worker_counts() {
    let reference = ga_trajectory(SerialEvaluator, 41);
    for workers in [1usize, 2, 8] {
        let pool = ga_trajectory(RayonEvaluator::new(workers).unwrap(), 41);
        assert_eq!(pool, reference, "workers = {workers} diverged from serial");
    }
}

#[test]
fn min_chunk_hint_does_not_change_results() {
    let reference = ga_trajectory(SerialEvaluator, 17);
    for min_chunk in [1usize, 7, 48, 1000] {
        let pool = ga_trajectory(
            RayonEvaluator::new(4)
                .unwrap()
                .with_min_chunk(min_chunk)
                .unwrap(),
            17,
        );
        assert_eq!(pool, reference, "min_chunk = {min_chunk} diverged");
    }
}

/// Fingerprint of a synchronous cellular run executed entirely inside a
/// dedicated pool of the given size.
fn cellular_trajectory(workers: usize) -> Vec<(f64, f64, BitString)> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("pool");
    pool.install(|| {
        let mut cga = CellularGa::builder(OneMax::new(48))
            .grid(12, 12)
            .update_policy(UpdatePolicy::Synchronous)
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(48))
            .seed(23)
            .build()
            .expect("valid grid");
        (0..30)
            .map(|_| {
                let s = cga.step();
                (s.best, s.mean, cga.best_ever().genome.clone())
            })
            .collect()
    })
}

#[test]
fn cellular_sweeps_are_bit_identical_across_worker_counts() {
    let reference = cellular_trajectory(1);
    for workers in [2usize, 8] {
        assert_eq!(
            cellular_trajectory(workers),
            reference,
            "workers = {workers} diverged"
        );
    }
}

#[test]
fn nested_install_scopes_pools_correctly() {
    let outer = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build()
        .expect("outer pool");
    let inner = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .expect("inner pool");
    let (outer_before, inner_seen, outer_after, evals) = outer.install(|| {
        let before = rayon::current_num_threads();
        let (seen, evals) = inner.install(|| {
            // Real work on the inner pool: the dedicated registry must
            // receive it, not the outer pool or the global one.
            let stats0 = inner.stats();
            let mut data = vec![1u64; 10_000];
            let total: u64 = data.par_iter_mut().map(|x| *x).sum();
            assert_eq!(total, 10_000);
            (rayon::current_num_threads(), inner.stats().delta(&stats0))
        });
        (before, seen, rayon::current_num_threads(), evals)
    });
    assert_eq!(outer_before, 2);
    assert_eq!(inner_seen, 3);
    assert_eq!(outer_after, 2, "outer scope must be restored");
    assert_eq!(evals.calls, 1);
    assert!(evals.tasks_executed >= 1);
}

#[test]
fn worker_panic_propagates_and_evaluator_survives() {
    struct Bomb;
    impl parallel_ga::core::Problem for Bomb {
        type Genome = BitString;
        fn name(&self) -> String {
            "bomb".into()
        }
        fn objective(&self) -> parallel_ga::core::Objective {
            parallel_ga::core::Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            assert!(g.count_ones() != 3, "boom");
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut parallel_ga::core::Rng64) -> BitString {
            BitString::random(8, rng)
        }
    }

    let evaluator = RayonEvaluator::new(4).unwrap();
    let mut members: Vec<_> = (0..64)
        .map(|i| {
            let mut g = BitString::zeros(8);
            // One member trips the bomb (exactly three ones).
            if i == 40 {
                g = BitString::ones(8);
                for b in 3..8 {
                    g.set(b, false);
                }
            }
            parallel_ga::core::Individual::unevaluated(g)
        })
        .collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        evaluator.evaluate_batch(&Bomb, &mut members);
    }));
    assert!(result.is_err(), "panic in a worker must reach the caller");

    // The pool keeps working after the propagated panic.
    let p = OneMax::new(8);
    let mut fresh = vec![parallel_ga::core::Individual::unevaluated(BitString::ones(
        8,
    ))];
    assert_eq!(evaluator.evaluate_batch(&p, &mut fresh), 1);
    assert_eq!(fresh[0].fitness(), 8.0);
}
