//! Application pipelines end-to-end: the §4 case studies run through the
//! public API and recover their planted ground truth.

use parallel_ga::apps::{
    ArSignal, Image, MarketSeries, Registration, RigidTransform, SpectralFit, StockPrediction,
};
use parallel_ga::core::ops::{BlxAlpha, GaussianMutation, ReplacementPolicy, Tournament};
use parallel_ga::core::{Ga, GaBuilder, Individual, Problem, Scheme, Termination};
use parallel_ga::hierarchical::{BlurredFidelity, Hga, HgaConfig, LevelView};
use parallel_ga::multiobjective::{MoEngine, Scenario, SpecializedIslandModel, Zdt};
use parallel_ga::problems::{RealFunction, RealProblem};
use std::sync::Arc;

fn real_ga<P: Problem<Genome = parallel_ga::core::RealVector>>(
    problem: Arc<P>,
    bounds: parallel_ga::core::Bounds,
    pop: usize,
    sigma: f64,
    seed: u64,
) -> Ga<Arc<P>> {
    GaBuilder::new(problem)
        .seed(seed)
        .pop_size(pop)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.25,
            sigma,
            bounds,
        })
        .scheme(Scheme::Generational { elitism: 2 })
        .build()
        .expect("valid configuration")
}

#[test]
fn two_phase_registration_recovers_planted_transform() {
    let scene = Image::synthetic(64, 64, 10, 3);
    let truth = RigidTransform {
        tx: 5.0,
        ty: -3.0,
        theta: 0.09,
    };
    let reference = scene.warp(truth);
    let registration = Arc::new(Registration::new(reference, scene, 10.0, 0.3));

    // Phase 1 at half resolution.
    let coarse = Arc::new(registration.downsampled());
    let cb = coarse.bounds().clone();
    let mut ga1 = real_ga(Arc::clone(&coarse), cb, 30, 1.2, 1);
    let r1 = ga1
        .run(&Termination::new().max_generations(35))
        .expect("bounded");
    let seedling = Registration::upscale_genome(&r1.best.genome);

    // Phase 2 at full resolution, seeded.
    let fb = registration.bounds().clone();
    let mut ga2 = real_ga(Arc::clone(&registration), fb, 20, 0.3, 2);
    let fitness = registration.evaluate(&seedling);
    ga2.receive_immigrants(
        vec![Individual::evaluated(seedling, fitness)],
        ReplacementPolicy::Worst,
    );
    let r2 = ga2
        .run(&Termination::new().max_generations(30))
        .expect("bounded");

    let (terr, rerr) = Registration::error_vs(&r2.best.genome, truth);
    assert!(terr < 1.5, "translation error {terr}");
    assert!(rerr < 0.05, "rotation error {rerr}");
}

#[test]
fn spectral_fit_recovers_ar_coefficients() {
    let signal = ArSignal::doppler(1500, &[0.12, 0.3], 0.9, 0.5, 11);
    let true_mse = signal.prediction_mse(signal.true_coeffs());
    let fit = Arc::new(SpectralFit::new(signal));
    let bounds = fit.bounds().clone();
    let mut ga = real_ga(Arc::clone(&fit), bounds, 60, 0.15, 4);
    let r = ga
        .run(&Termination::new().max_generations(120))
        .expect("bounded");
    // Fitted model predicts nearly as well as the generating model...
    assert!(
        r.best_fitness < 1.3 * true_mse,
        "{} vs {}",
        r.best_fitness,
        true_mse
    );
    // ...and sits close in coefficient space.
    assert!(
        fit.coeff_error(&r.best.genome) < 0.5,
        "coeff error {}",
        fit.coeff_error(&r.best.genome)
    );
}

#[test]
fn stock_predictor_beats_training_buy_and_hold() {
    let market = MarketSeries::generate(450, 21);
    let problem = StockPrediction::new(market, 5, 320);
    let bah = problem.train_buy_and_hold();
    let bounds = problem.bounds().clone();
    let shared = Arc::new(problem);
    let mut ga = real_ga(Arc::clone(&shared), bounds, 40, 0.4, 6);
    let r = ga
        .run(&Termination::new().max_generations(50))
        .expect("bounded");
    assert!(r.best_fitness > bah, "{} <= {}", r.best_fitness, bah);
    // Held-out evaluation runs without panicking and returns sane wealth.
    let (strat, hold) = shared.test_outcome(&r.best.genome);
    assert!(strat.wealth > 0.0 && hold.wealth > 0.0);
}

#[test]
fn hga_runs_and_improves_over_budget() {
    let problem = Arc::new(BlurredFidelity::new(
        RealProblem::new(RealFunction::Sphere, 6).with_target(0.05),
        3,
        0.1,
        4.0,
    ));
    let mut hga = Hga::new(
        problem,
        HgaConfig::default(),
        5,
        |view: LevelView<_>, seed| {
            let bounds = parallel_ga::core::Bounds::uniform(-5.12, 5.12, 6);
            GaBuilder::new(view)
                .seed(seed)
                .pop_size(20)
                .selection(Tournament::binary())
                .crossover(BlxAlpha::new(bounds.clone()))
                .mutation(GaussianMutation {
                    p: 0.25,
                    sigma: 0.3,
                    bounds,
                })
                .scheme(Scheme::Generational { elitism: 1 })
                .build()
                .expect("valid configuration")
        },
    )
    .expect("valid hierarchy configuration");
    let report = hga
        .run(&Termination::new().until_optimum().max_cost_units(5_000.0))
        .expect("bounded");
    assert!(report.best_fitness < 1.0, "best {}", report.best_fitness);
    assert!(hga.cost_units() <= 5_500.0);
    let first = hga.trajectory().first().expect("non-empty").best_precise;
    assert!(report.best_fitness < first);
}

#[test]
fn sim_scenarios_run_on_zdt_through_umbrella() {
    use parallel_ga::core::ops::Sbx;
    let scenario = Scenario::canonical_seven().remove(3); // S4
    let model = SpecializedIslandModel::new(scenario, (1.1, 7.0), |mask, idx| {
        let p = Zdt::new(1, 8);
        let b = p.bounds().clone();
        MoEngine::builder(p)
            .seed(300 + idx)
            .pop_size(24)
            .objective_mask(mask.to_vec())
            .crossover(Sbx::new(b.clone()))
            .mutation(GaussianMutation {
                p: 0.1,
                sigma: 0.1,
                bounds: b,
            })
            .build()
            .expect("valid configuration")
    });
    let report = model.run(30);
    assert!(report.hypervolume > 0.0);
    assert!(!report.front.is_empty());
}
