//! Seed-transparency of the observability layer: attaching or detaching
//! recorders must not perturb any RNG stream, so instrumented and plain
//! runs of the same seed must produce identical search results.

use parallel_ga::core::ops::{BitFlip, OnePoint, Tournament};
use parallel_ga::core::{GaBuilder, Scheme, SerialEvaluator, Termination};
use parallel_ga::island::{Archipelago, MigrationPolicy};
use parallel_ga::observe::{EventKind, RingRecorder};
use parallel_ga::problems::OneMax;
use parallel_ga::topology::Topology;
use std::sync::Arc;

const GENOME: usize = 48;

fn ga(seed: u64) -> GaBuilder<Arc<OneMax>, SerialEvaluator> {
    GaBuilder::new(Arc::new(OneMax::new(GENOME)))
        .seed(seed)
        .pop_size(40)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(GENOME))
        .scheme(Scheme::Generational { elitism: 1 })
}

#[test]
fn recorder_attach_detach_does_not_change_single_ga_run() {
    let termination = Termination::new().until_optimum().max_generations(300);

    let mut plain = ga(11).build().unwrap();
    let plain_result = plain.run(&termination).unwrap();

    let ring = RingRecorder::new(1 << 14);
    let mut observed = ga(11).recorder(ring.clone()).build().unwrap();
    let observed_result = observed.run(&termination).unwrap();

    assert_eq!(plain_result.generations, observed_result.generations);
    assert_eq!(plain_result.evaluations, observed_result.evaluations);
    assert_eq!(plain_result.best.fitness(), observed_result.best.fitness());
    assert_eq!(plain_result.hit_optimum, observed_result.hit_optimum);
    assert!(!ring.is_empty(), "the observed run must emit events");
}

#[test]
fn recorder_attach_detach_does_not_change_island_run() {
    let stop = Termination::new().max_generations(60);
    let policy = MigrationPolicy {
        interval: 8,
        ..MigrationPolicy::default()
    };

    let run = |record: bool| {
        let ring = RingRecorder::new(1 << 16);
        let islands = (0..4)
            .map(|i| {
                let builder = ga(100 + i);
                if record {
                    builder.recorder(ring.clone()).build().unwrap()
                } else {
                    builder.build().unwrap()
                }
            })
            .collect();
        let mut arch = Archipelago::new(islands, Topology::RingUni, policy).unwrap();
        (arch.run(&stop).unwrap(), ring)
    };

    let (plain, _) = run(false);
    let (observed, ring) = run(true);

    assert_eq!(plain.total_evaluations, observed.total_evaluations);
    assert_eq!(plain.best.fitness(), observed.best.fitness());
    assert_eq!(plain.generations, observed.generations);
    assert_eq!(plain.per_island_best, observed.per_island_best);
    assert_eq!(plain.migrants_sent, observed.migrants_sent);
    assert_eq!(plain.migrants_accepted, observed.migrants_accepted);

    // The instrumented run saw the full event vocabulary of an island run.
    let events = ring.take_events();
    for expected in [
        "run_started",
        "generation_completed",
        "migration_sent",
        "migration_received",
    ] {
        assert!(
            events.iter().any(|e| e.kind.name() == expected),
            "missing {expected}"
        );
    }
    let sent: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MigrationSent { count, .. } => Some(count),
            _ => None,
        })
        .sum();
    assert_eq!(sent, observed.migrants_sent);
}
