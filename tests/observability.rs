//! Seed-transparency of the observability layer: attaching or detaching
//! recorders must not perturb any RNG stream, so instrumented and plain
//! runs of the same seed must produce identical search results.

use parallel_ga::cluster::{ClusterSpec, EvalCostModel, NetworkProfile};
use parallel_ga::compact::{CompactGa, ShardedCompactGa};
use parallel_ga::core::ops::{BitFlip, OnePoint, Tournament};
use parallel_ga::core::{Engine, GaBuilder, Scheme, SerialEvaluator, Termination};
use parallel_ga::island::{Archipelago, MigrationPolicy, SyncMode};
use parallel_ga::master_slave::AsyncSteadyStateGa;
use parallel_ga::observe::{EventKind, RingRecorder};
use parallel_ga::problems::OneMax;
use parallel_ga::topology::Topology;
use std::sync::Arc;

const GENOME: usize = 48;

fn ga(seed: u64) -> GaBuilder<Arc<OneMax>, SerialEvaluator> {
    GaBuilder::new(Arc::new(OneMax::new(GENOME)))
        .seed(seed)
        .pop_size(40)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(GENOME))
        .scheme(Scheme::Generational { elitism: 1 })
}

#[test]
fn recorder_attach_detach_does_not_change_single_ga_run() {
    let termination = Termination::new().until_optimum().max_generations(300);

    let mut plain = ga(11).build().unwrap();
    let plain_result = plain.run(&termination).unwrap();

    let ring = RingRecorder::new(1 << 14);
    let mut observed = ga(11).recorder(ring.clone()).build().unwrap();
    let observed_result = observed.run(&termination).unwrap();

    assert_eq!(plain_result.generations, observed_result.generations);
    assert_eq!(plain_result.evaluations, observed_result.evaluations);
    assert_eq!(plain_result.best.fitness(), observed_result.best.fitness());
    assert_eq!(plain_result.hit_optimum, observed_result.hit_optimum);
    assert!(!ring.is_empty(), "the observed run must emit events");
}

#[test]
fn recorder_attach_detach_does_not_change_island_run() {
    let stop = Termination::new().max_generations(60);
    let policy = MigrationPolicy {
        interval: 8,
        ..MigrationPolicy::default()
    };

    let run = |record: bool| {
        let ring = RingRecorder::new(1 << 16);
        let islands = (0..4)
            .map(|i| {
                let builder = ga(100 + i);
                if record {
                    builder.recorder(ring.clone()).build().unwrap()
                } else {
                    builder.build().unwrap()
                }
            })
            .collect();
        let mut arch = Archipelago::new(islands, Topology::RingUni, policy).unwrap();
        (arch.run(&stop).unwrap(), ring)
    };

    let (plain, _) = run(false);
    let (observed, ring) = run(true);

    assert_eq!(plain.total_evaluations, observed.total_evaluations);
    assert_eq!(plain.best.fitness(), observed.best.fitness());
    assert_eq!(plain.generations, observed.generations);
    assert_eq!(plain.per_island_best, observed.per_island_best);
    assert_eq!(plain.migrants_sent, observed.migrants_sent);
    assert_eq!(plain.migrants_accepted, observed.migrants_accepted);

    // The instrumented run saw the full event vocabulary of an island run.
    let events = ring.take_events();
    for expected in [
        "run_started",
        "generation_completed",
        "migration_sent",
        "migration_received",
    ] {
        assert!(
            events.iter().any(|e| e.kind.name() == expected),
            "missing {expected}"
        );
    }
    let sent: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MigrationSent { count, .. } => Some(count),
            _ => None,
        })
        .sum();
    assert_eq!(sent, observed.migrants_sent);
}

#[test]
fn recorder_attach_detach_does_not_change_async_steady_run() {
    // The async engine emits one `async_fold` per folded result, so it is
    // the highest-volume event source in the workspace — and the fold
    // order (hence the whole search) must still be recorder-independent,
    // down to identical snapshot bytes.
    let build = |ring: Option<RingRecorder>| {
        let cluster = ClusterSpec::heterogeneous(4, 3.0, 9, NetworkProfile::FastEthernet)
            .expect("valid cluster");
        let cost = EvalCostModel::bimodal(0.01, 0.2, 0.2).expect("valid cost model");
        let mut b = AsyncSteadyStateGa::builder(Arc::new(OneMax::new(GENOME)))
            .seed(77)
            .pop_size(32)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(GENOME))
            .virtual_cluster(cluster, cost);
        if let Some(r) = ring {
            b = b.recorder(r);
        }
        b.build().expect("valid configuration")
    };

    let mut plain = build(None);
    let ring = RingRecorder::new(1 << 15);
    let mut observed = build(Some(ring.clone()));
    for _ in 0..12 {
        plain.step();
        observed.step();
    }
    // Mid-run detach must also be inert.
    let detached = observed.take_recorder();
    assert!(detached.is_some(), "recorder was attached");
    for _ in 0..4 {
        plain.step();
        observed.step();
    }

    assert_eq!(plain.evaluations(), observed.evaluations());
    assert_eq!(plain.best_ever().fitness(), observed.best_ever().fitness());
    assert_eq!(
        plain.snapshot().to_bytes(),
        observed.snapshot().to_bytes(),
        "recorder attach/detach changed the async trajectory"
    );
    let folds = ring
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::AsyncFold { .. }))
        .count();
    assert_eq!(
        folds,
        12 * 32,
        "one async_fold per folded result while attached"
    );
}

#[test]
fn recorder_attach_detach_does_not_change_compact_ga_run() {
    // The compact engine's only RNG stream drives the model sampling, so
    // any recorder leakage would shift the probability vector itself.
    let build = |ring: Option<RingRecorder>| {
        let mut b = CompactGa::builder(Arc::new(OneMax::new(GENOME)))
            .seed(41)
            .virtual_pop(63);
        if let Some(r) = ring {
            b = b.recorder(r);
        }
        b.build().expect("valid configuration")
    };

    let mut plain = build(None);
    let ring = RingRecorder::new(1 << 12);
    let mut observed = build(Some(ring.clone()));
    for _ in 0..40 {
        plain.step();
        observed.step();
    }
    // Mid-run detach must also be inert.
    assert!(observed.take_recorder().is_some(), "recorder was attached");
    for _ in 0..10 {
        plain.step();
        observed.step();
    }

    assert_eq!(
        plain.snapshot().to_bytes(),
        observed.snapshot().to_bytes(),
        "recorder attach/detach changed the compact trajectory"
    );
    let generations = ring
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GenerationCompleted { .. }))
        .count();
    assert_eq!(
        generations, 40,
        "one generation_completed per step while attached"
    );
}

#[test]
fn recorder_attach_detach_does_not_change_sharded_compact_run() {
    let build = |ring: Option<RingRecorder>| {
        let cluster =
            ClusterSpec::homogeneous(6, NetworkProfile::FastEthernet).expect("valid cluster");
        let mut b = ShardedCompactGa::builder(Arc::new(OneMax::new(GENOME)))
            .cluster(cluster)
            .virtual_pop(63)
            .seed(43);
        if let Some(r) = ring {
            b = b.recorder(r);
        }
        b.build().expect("valid configuration")
    };

    let mut plain = build(None);
    let ring = RingRecorder::new(1 << 12);
    let mut observed = build(Some(ring.clone()));
    for _ in 0..30 {
        plain.step();
        observed.step();
    }
    assert!(observed.take_recorder().is_some(), "recorder was attached");
    for _ in 0..10 {
        plain.step();
        observed.step();
    }

    // Identical snapshot bytes cover the per-shard RNGs, the probability
    // slices, the wire counters, and the virtual clock.
    assert_eq!(
        plain.snapshot().to_bytes(),
        observed.snapshot().to_bytes(),
        "recorder attach/detach changed the sharded compact trajectory"
    );
    assert!(
        ring.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::GenerationCompleted { .. })),
        "sharded runs must trace generations while attached"
    );
}

#[test]
fn recorder_attach_detach_does_not_change_overlap_island_run() {
    let stop = Termination::new().max_generations(60);
    let policy = MigrationPolicy {
        interval: 8,
        sync: SyncMode::Overlap,
        ..MigrationPolicy::default()
    };

    let run = |record: bool| {
        let ring = RingRecorder::new(1 << 16);
        let islands = (0..4)
            .map(|i| {
                let builder = ga(200 + i);
                if record {
                    builder.recorder(ring.clone()).build().unwrap()
                } else {
                    builder.build().unwrap()
                }
            })
            .collect();
        let mut arch = Archipelago::new(islands, Topology::RingUni, policy).unwrap();
        (arch.run(&stop).unwrap(), ring)
    };

    let (plain, _) = run(false);
    let (observed, ring) = run(true);

    assert_eq!(plain.total_evaluations, observed.total_evaluations);
    assert_eq!(plain.best.fitness(), observed.best.fitness());
    assert_eq!(plain.per_island_best, observed.per_island_best);
    assert_eq!(plain.migrants_sent, observed.migrants_sent);
    assert_eq!(plain.migrants_accepted, observed.migrants_accepted);
    assert!(
        ring.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::AsyncImmigrantsDrained { .. })),
        "overlap runs must trace opportunistic drains"
    );
}
