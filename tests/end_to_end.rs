//! End-to-end integration: every engine solves representative problems
//! through the public umbrella API.

use parallel_ga::cellular::{CellularGa, UpdatePolicy};
use parallel_ga::core::ops::{
    BitFlip, BlxAlpha, GaussianMutation, Inversion, OnePoint, Ox, ReplacementPolicy, Tournament,
};
use parallel_ga::core::{Ga, GaBuilder, Problem, Scheme, StopReason, Termination};
use parallel_ga::island::{run_threaded, Archipelago, MigrationPolicy};
use parallel_ga::master_slave::RayonEvaluator;
use parallel_ga::problems::{
    DeceptiveTrap, Knapsack, MaxSat, Mttp, OneMax, PPeaks, RealFunction, RealProblem, SubsetSum,
    Tsp,
};
use parallel_ga::topology::Topology;
use std::sync::Arc;

#[test]
fn sequential_ga_solves_binary_suite() {
    // One engine family, four problem classes with known optima.
    let cases: Vec<(
        Arc<dyn Problem<Genome = parallel_ga::core::BitString>>,
        usize,
    )> = vec![
        (Arc::new(OneMax::new(96)), 96),
        (Arc::new(DeceptiveTrap::new(3, 16)), 48),
        (Arc::new(MaxSat::planted(40, 160, 1)), 40),
        (Arc::new(SubsetSum::planted(40, 1000, 2)), 40),
    ];
    for (problem, len) in cases {
        let name = problem.name();
        let mut ga = GaBuilder::new(problem)
            .seed(5)
            .pop_size(120)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(len))
            .scheme(Scheme::Generational { elitism: 2 })
            .build()
            .expect("valid configuration");
        let r = ga
            .run(&Termination::new().until_optimum().max_generations(1500))
            .expect("bounded");
        assert!(r.hit_optimum, "{name}: best {}", r.best_fitness);
        assert_eq!(r.stop, StopReason::TargetReached, "{name}");
    }
}

#[test]
fn sequential_ga_minimizes_sphere() {
    let problem = RealProblem::new(RealFunction::Sphere, 8).with_target(1e-2);
    let bounds = problem.bounds().clone();
    let mut ga = Ga::builder(problem)
        .seed(3)
        .pop_size(60)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.2,
            sigma: 0.2,
            bounds,
        })
        .scheme(Scheme::Generational { elitism: 1 })
        .build()
        .expect("valid configuration");
    let r = ga
        .run(&Termination::new().until_optimum().max_generations(2000))
        .expect("bounded");
    assert!(r.hit_optimum, "best {}", r.best_fitness);
}

#[test]
fn threaded_islands_solve_knapsack_to_dp_optimum() {
    let problem = Arc::new(Knapsack::random(48, 50, 60, 3));
    let islands = (0..4)
        .map(|i| {
            GaBuilder::new(Arc::clone(&problem))
                .seed(100 + i)
                .pop_size(60)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(48))
                .scheme(Scheme::SteadyState {
                    replacement: ReplacementPolicy::WorstIfBetter,
                })
                .build()
                .expect("valid configuration")
        })
        .collect();
    let r = run_threaded(
        islands,
        &Topology::RingUni,
        MigrationPolicy::default(),
        &Termination::new().until_optimum().max_generations(800),
        false,
    )
    .expect("valid island configuration");
    assert!(
        r.hit_optimum,
        "islands reached {} of DP optimum {}",
        r.best.fitness(),
        problem.exact_optimum()
    );
}

#[test]
fn sequential_archipelago_solves_tsp_circle() {
    let tsp = Arc::new(Tsp::circle(24));
    let islands = (0..4)
        .map(|i| {
            GaBuilder::new(Arc::clone(&tsp))
                .seed(7 + i)
                .pop_size(50)
                .selection(Tournament::new(3))
                .crossover(Ox)
                .mutation(Inversion)
                .scheme(Scheme::Generational { elitism: 2 })
                .build()
                .expect("valid configuration")
        })
        .collect();
    let mut arch = Archipelago::new(islands, Topology::RingBi, MigrationPolicy::default())
        .expect("valid island configuration");
    let r = arch
        .run(&Termination::new().until_optimum().max_generations(1500))
        .expect("bounded");
    assert!(
        r.hit_optimum,
        "tour {} vs optimum {:?}",
        r.best.fitness(),
        tsp.optimum()
    );
}

#[test]
fn cellular_ga_solves_ppeaks_under_every_policy() {
    for policy in UpdatePolicy::ALL {
        let mut cga = CellularGa::builder(PPeaks::new(20, 48, 5))
            .grid(12, 12)
            .update_policy(policy)
            .seed(9)
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(48))
            .build()
            .expect("valid configuration");
        let r = cga
            .run(&Termination::new().until_optimum().max_generations(400))
            .expect("bounded");
        assert!(r.hit_optimum, "{}: best {}", policy.name(), r.best_fitness);
    }
}

#[test]
fn steady_state_ga_matches_mttp_exhaustive_optimum() {
    // Small enough for the exact solver; the GA must match it.
    let mttp = Mttp::random(16, 3);
    let exact = mttp.solve_exact();
    let mut ga = GaBuilder::new(Arc::new(mttp))
        .seed(4)
        .pop_size(80)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(16))
        .scheme(Scheme::SteadyState {
            replacement: ReplacementPolicy::WorstIfBetter,
        })
        .build()
        .expect("valid configuration");
    let r = ga
        .run(
            &Termination::new()
                .target_fitness(exact)
                .max_generations(1500),
        )
        .expect("bounded");
    assert_eq!(
        r.best_fitness, exact,
        "GA {} vs exact {exact}",
        r.best_fitness
    );
}

#[test]
fn master_slave_ga_solves_trap() {
    let mut ga = GaBuilder::new(Arc::new(DeceptiveTrap::new(3, 12)))
        .seed(1)
        .pop_size(100)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(36))
        .evaluator(RayonEvaluator::new(2).unwrap())
        .build()
        .expect("valid configuration");
    let r = ga
        .run(&Termination::new().until_optimum().max_generations(1000))
        .expect("bounded");
    assert!(r.hit_optimum);
}
