//! Cross-engine consistency: the parallel engines must be search-equivalent
//! to their sequential counterparts where the design promises it
//! (DESIGN.md §6), and deterministic replay must hold everywhere.

use parallel_ga::cluster::{ClusterSpec, FailurePlan, NetworkProfile};
use parallel_ga::core::ops::{BitFlip, OnePoint, Tournament};
use parallel_ga::core::{Ga, GaBuilder, Scheme, SerialEvaluator, Termination};
use parallel_ga::island::{run_threaded, Archipelago, MigrationPolicy};
use parallel_ga::master_slave::{RayonEvaluator, SimulatedMasterSlaveGa};
use parallel_ga::problems::{DeceptiveTrap, OneMax};
use parallel_ga::topology::Topology;
use std::sync::Arc;

fn onemax_ga<E: parallel_ga::core::Evaluator<Arc<OneMax>>>(
    evaluator: E,
    seed: u64,
) -> Ga<Arc<OneMax>, E> {
    GaBuilder::new(Arc::new(OneMax::new(64)))
        .seed(seed)
        .pop_size(40)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(64))
        .scheme(Scheme::Generational { elitism: 1 })
        .evaluator(evaluator)
        .build()
        .expect("valid configuration")
}

#[test]
fn master_slave_is_search_equivalent_to_serial() {
    let mut serial = onemax_ga(SerialEvaluator, 42);
    let mut rayon2 = onemax_ga(RayonEvaluator::new(2).unwrap(), 42);
    let mut rayon4 = onemax_ga(RayonEvaluator::new(4).unwrap(), 42);
    for _ in 0..25 {
        let a = serial.step();
        let b = rayon2.step();
        let c = rayon4.step();
        assert_eq!(a.best, b.best);
        assert_eq!(a.best, c.best);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.evaluations, c.evaluations);
    }
}

fn trap_islands(seed: u64) -> Vec<Ga<Arc<DeceptiveTrap>, SerialEvaluator>> {
    let problem = Arc::new(DeceptiveTrap::new(4, 10));
    (0..4)
        .map(|i| {
            GaBuilder::new(Arc::clone(&problem))
                .seed(seed + i)
                .pop_size(30)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(40))
                .scheme(Scheme::Generational { elitism: 1 })
                .build()
                .expect("valid configuration")
        })
        .collect()
}

#[test]
fn threaded_sync_islands_match_sequential_stepper_exactly() {
    // 48 generations crosses three migration epochs.
    let stop = Termination::new().max_generations(48);
    let threaded = run_threaded(
        trap_islands(9),
        &Topology::RingUni,
        MigrationPolicy::default(),
        &stop,
        true,
    )
    .expect("valid island configuration");
    let mut arch = Archipelago::new(
        trap_islands(9),
        Topology::RingUni,
        MigrationPolicy::default(),
    )
    .expect("valid island configuration")
    .with_history(true);
    let sequential = arch.run(&stop).expect("bounded");

    assert_eq!(threaded.per_island_best, sequential.per_island_best);
    assert_eq!(threaded.total_evaluations, sequential.total_evaluations);
    assert_eq!(threaded.migrants_sent, sequential.migrants_sent);
    // Full per-generation trajectories agree island by island.
    for (ht, hs) in threaded.histories.iter().zip(&sequential.histories) {
        assert_eq!(ht.len(), hs.len());
        for (a, b) in ht.iter().zip(hs) {
            assert_eq!(a.best, b.best);
            assert_eq!(a.mean, b.mean);
        }
    }
}

#[test]
fn threaded_run_is_deterministic_across_replays() {
    let stop = Termination::new().max_generations(32);
    let a = run_threaded(
        trap_islands(77),
        &Topology::Complete,
        MigrationPolicy::default(),
        &stop,
        false,
    )
    .expect("valid island configuration");
    let b = run_threaded(
        trap_islands(77),
        &Topology::Complete,
        MigrationPolicy::default(),
        &stop,
        false,
    )
    .expect("valid island configuration");
    assert_eq!(a.per_island_best, b.per_island_best);
    assert_eq!(a.total_evaluations, b.total_evaluations);
}

#[test]
fn simulated_cluster_failures_never_change_search_results() {
    let spec = ClusterSpec::heterogeneous(8, 4.0, 5, NetworkProfile::FastEthernet).unwrap();
    let healthy = SimulatedMasterSlaveGa::new(
        onemax_ga(SerialEvaluator, 3),
        spec.clone(),
        FailurePlan::none(8),
        0.01,
    )
    .expect("valid cluster configuration")
    .run(&Termination::new().until_optimum().max_generations(40))
    .expect("bounded");
    let faulty = SimulatedMasterSlaveGa::new(
        onemax_ga(SerialEvaluator, 3),
        spec,
        FailurePlan::exponential(8, 2.0, 100.0, 9).unwrap(),
        0.01,
    )
    .expect("valid cluster configuration")
    .run(&Termination::new().until_optimum().max_generations(40))
    .expect("bounded");
    assert_eq!(healthy.best_fitness, faulty.best_fitness);
    assert_eq!(healthy.generations, faulty.generations);
    assert_eq!(healthy.evaluations, faulty.evaluations);
    assert!(faulty.virtual_seconds >= healthy.virtual_seconds);
}

#[test]
fn migration_accepts_are_bounded_by_sends() {
    let mut arch = Archipelago::new(
        trap_islands(13),
        Topology::RingBi,
        MigrationPolicy::default(),
    )
    .expect("valid island configuration");
    let r = arch
        .run(&Termination::new().max_generations(64))
        .expect("bounded");
    assert!(r.migrants_accepted <= r.migrants_sent);
    // Ring-bi, 4 islands, migration every 16 gens over 64 gens: 4 epochs,
    // 2 out-edges per island, 1 migrant each.
    assert_eq!(r.migrants_sent, 4 * 2 * 4);
}
