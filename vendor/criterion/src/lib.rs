//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BenchmarkId`, `BatchSize`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! There is no statistics engine: each benchmark is warmed once, timed over
//! a fixed-duration loop, and reported as a single mean-per-iteration line
//! on stdout. That preserves the benches as runnable smoke/relative-order
//! tools without the real crate's analysis machinery.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iteration cap per benchmark (keeps cheap routines bounded).
const MAX_ITERS: u64 = 10_000;

/// How `iter_batched` inputs are grouped. Ignored by this stand-in.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        while self.iters < MAX_ITERS && start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let start = Instant::now();
        while self.iters < MAX_ITERS && start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("bench {id:<40} (no iterations)");
        } else {
            let per_iter = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX).max(1);
            println!(
                "bench {id:<40} {per_iter:>12.2?}/iter ({} iters)",
                self.iters
            );
        }
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.into_id());
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this stand-in sizes by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this stand-in uses a fixed time budget.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into_id()));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into_id()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |x| black_box(x * 2), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn harness_runs_groups() {
        shim_group();
    }
}
