//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its property tests actually use:
//!
//! * the [`proptest!`] macro wrapping `fn name(x in strategy, ...) { .. }`
//!   test items;
//! * [`Strategy`] implemented for numeric ranges (`a..b`, `a..=b`),
//!   [`any`], [`Just`], and `prop::collection::vec`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs left to the assertion message. Generation is fully
//! deterministic — the RNG is seeded from the test name, so failures
//! reproduce across runs and machines.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Number of random cases each [`proptest!`] test executes.
pub const DEFAULT_CASES: u32 = 64;

/// Deterministic generator handed to strategies (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary string (the test name), so every test
    /// owns a distinct, reproducible stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)` (`n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide = Range {
            start: f64::from(self.start),
            end: f64::from(self.end),
        };
        wide.generate(rng) as f32
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes; avoids NaN/inf surprises
        // in numeric property tests.
        let mantissa = rng.unit() * 2.0 - 1.0;
        let exponent = (rng.below(61) as i32) - 30;
        mantissa * 2f64.powi(exponent)
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact `usize`, `a..b`, or
    /// `a..=b`.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over [`DEFAULT_CASES`]
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut prop_rng = $crate::TestRng::for_test(stringify!($name));
            for _ in 0..$crate::DEFAULT_CASES {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut prop_rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Property assertion (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..10.0, 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 1usize..50, x in 0.0f64..=1.0, s in any::<u64>()) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((0.0..=1.0).contains(&x));
            let _ = s; // any u64 is valid
        }

        #[test]
        fn vec_strategy_respects_lengths(v in prop::collection::vec(0u32..5, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn helper_strategies_compose(p in pair()) {
            prop_assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = crate::TestRng::for_test("determinism");
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
