//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it actually uses: `channel::unbounded` with
//! `send` / `recv` / `try_recv`, backed by `std::sync::mpsc`. Disconnect
//! semantics match crossbeam: `recv` errors once the channel is empty and
//! all senders are dropped, which is what the threaded island engine relies
//! on to terminate cleanly.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod channel {
    //! Multi-producer single-consumer unbounded channels.

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
