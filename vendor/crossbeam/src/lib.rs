//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset it actually uses: `channel::unbounded` with
//! `send` / `recv` / `try_recv`, plus `channel::bounded` with blocking
//! `send` and non-blocking `try_send`, backed by `std::sync::mpsc`.
//! Disconnect semantics match crossbeam: `recv` errors once the channel is
//! empty and all senders are dropped, which is what the threaded island
//! engine relies on to terminate cleanly.
//!
//! One divergence from real crossbeam: bounded channels hand out
//! [`channel::SyncSender`] (a distinct type from the unbounded
//! [`channel::Sender`]), mirroring `std::sync::mpsc` instead of
//! crossbeam's unified sender.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod channel {
    //! Multi-producer single-consumer channels, unbounded and bounded.

    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, SyncSender, TryRecvError,
        TrySendError,
    };

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a bounded channel holding at most `capacity` messages:
    /// `send` blocks while full, `try_send` fails fast with
    /// [`TrySendError::Full`].
    #[must_use]
    pub fn bounded<T>(capacity: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_try_send_fails_when_full() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1u32).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_send_errors_after_receiver_drop() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert!(tx.send(5u32).is_err());
        assert!(matches!(
            tx.try_send(5),
            Err(channel::TrySendError::Disconnected(5))
        ));
    }
}
