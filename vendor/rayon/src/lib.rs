//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset it actually uses*, implemented on a persistent
//! **work-stealing thread pool**:
//!
//! * a lazily-started global pool of long-lived workers (sized to the
//!   cached available parallelism), plus dedicated pools built with
//!   [`ThreadPoolBuilder`]; [`ThreadPool::install`] routes the parallel
//!   operations run inside it to that dedicated pool;
//! * per-worker deques, used LIFO by their owner and stolen from the FIFO
//!   end by random victims; external callers inject jobs through a shared
//!   injector queue; idle workers park on a condvar, so an idle pool costs
//!   nothing;
//! * **adaptive chunking**: an operation over `n` elements is split into at
//!   most `4 × workers` chunks, but never below the `with_min_len` floor
//!   (the cost threshold a caller such as `pga-master-slave`'s evaluator
//!   supplies from its batch-size hint);
//! * pool telemetry ([`PoolStats`]): calls, leaf tasks, splits, steals,
//!   parks, and per-call queue latency, exported so `pga-observe` can
//!   report pool health alongside speedup curves.
//!
//! Semantics match rayon where it matters for this workspace:
//!
//! * `slice.par_iter_mut().map(f).sum()` and
//!   `(a..b).into_par_iter().map(f).collect()` recombine chunk results in
//!   index order, so results are **deterministic** regardless of stealing
//!   (integer sums are exact; per-index outputs land at their index).
//! * Closures must be `Sync`, exactly as rayon requires.
//! * A panic inside a parallel closure is caught on the worker, propagated
//!   to the submitting caller via [`std::panic::resume_unwind`], and leaves
//!   the pool fully operational. (Unlike real rayon, outputs produced by
//!   other chunks of the panicked operation are leaked, not dropped.)
//! * One intentional divergence: a parallel operation started *inside* a
//!   pool-executed closure targets the global pool (or the innermost
//!   `install` of the submitting thread), not the worker's own pool.
//!   Workers waiting on such nested operations help execute queued jobs,
//!   so same-pool nesting cannot deadlock.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod job;
mod registry;
mod telemetry;

use job::{ChunkTask, Latch};
use registry::Registry;
use std::cell::RefCell;
use std::mem::MaybeUninit;
use std::sync::Arc;

pub use telemetry::PoolStats;

/// Rayon-style prelude: import the traits that add `par_iter_mut` /
/// `into_par_iter` to std types.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSliceMut};
}

thread_local! {
    /// Stack of pools entered via [`ThreadPool::install`] on this thread.
    static INSTALLED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The pool governing parallel operations started on the calling thread:
/// the innermost [`ThreadPool::install`], else the global pool.
fn current_registry() -> Arc<Registry> {
    INSTALLED
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(registry::global_registry()))
}

/// Worker count for parallel operations started on this thread: the
/// innermost [`ThreadPool::install`] if any, else the cached available
/// parallelism (the OS is queried once per process, not per call).
#[must_use]
pub fn current_num_threads() -> usize {
    INSTALLED
        .with(|stack| stack.borrow().last().map(|r| r.num_workers()))
        .unwrap_or_else(registry::default_parallelism)
}

/// Telemetry snapshot of the lazily-started global pool. Counters are all
/// zero until the first parallel operation outside any `install` scope.
#[must_use]
pub fn global_pool_stats() -> PoolStats {
    registry::global_registry().stats()
}

/// Error building a [`ThreadPool`] (e.g. a zero worker count).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads. Zero is rejected at
    /// [`build`](Self::build) time.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Names the pool's worker threads (`name(index)` per worker).
    #[must_use]
    pub fn thread_name<F>(mut self, name: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.name = Some(Box::new(name));
        self
    }

    /// Builds the pool, spawning its workers immediately.
    ///
    /// # Errors
    /// Fails if `num_threads(0)` was requested.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        if self.num_threads == Some(0) {
            return Err(ThreadPoolBuildError {
                message: "num_threads(0): a pool needs at least one worker",
            });
        }
        let workers = self
            .num_threads
            .unwrap_or_else(registry::default_parallelism);
        let mut name = self.name;
        let registry = Registry::new(workers, move |i| match &mut name {
            Some(f) => f(i),
            None => format!("rayon-pool-{i}"),
        });
        Ok(ThreadPool { registry })
    }
}

/// A dedicated pool of persistent worker threads. Parallel operations run
/// inside [`install`](ThreadPool::install) execute on this pool's workers
/// instead of the global pool. Dropping the pool retires its workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Runs `op` with this pool handling any parallel operations it starts.
    /// `op` itself executes on the calling thread; the parallel work inside
    /// it is dispatched to this pool's workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        INSTALLED.with(|stack| stack.borrow_mut().push(Arc::clone(&self.registry)));
        struct PopOnDrop;
        impl Drop for PopOnDrop {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        let _guard = PopOnDrop;
        op()
    }

    /// The configured worker count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_workers()
    }

    /// Telemetry snapshot of this pool's lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.registry.stats()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // All submissions block until complete, so nothing is in flight.
        self.registry.terminate();
    }
}

/// Chunks per worker targeted by the adaptive splitter. More chunks than
/// workers keeps stealing effective when per-chunk cost is uneven; the
/// `min_len` floor stops splitting once a chunk is too cheap to dispatch.
const CHUNKS_PER_WORKER: usize = 4;

#[derive(Clone, Copy)]
struct ChunkPlan {
    chunks: usize,
    chunk_len: usize,
}

/// Deterministic chunk geometry: depends only on `(n, workers, min_len)`,
/// never on runtime scheduling.
fn chunk_plan(n: usize, workers: usize, min_len: usize) -> ChunkPlan {
    let chunk_len = n
        .div_ceil((workers.max(1)) * CHUNKS_PER_WORKER)
        .max(min_len.max(1));
    ChunkPlan {
        chunks: n.div_ceil(chunk_len.max(1)),
        chunk_len,
    }
}

/// Raw pointer wrapper shareable across workers. Soundness rests on the
/// task protocol: distinct chunks touch disjoint index ranges.
struct SharedPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SharedPtr<T> {}

/// Conversion into a parallel iterator (only the types this workspace
/// parallelizes over).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
            min_len: 1,
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
    min_len: usize,
}

impl ParRange {
    /// Sets the minimum elements per dispatched chunk (the splitter stops
    /// splitting below this cost threshold).
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps each index through `f` (executed in parallel chunks).
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParRangeMap {
            start: self.start,
            end: self.end,
            min_len: self.min_len,
            f,
        }
    }
}

/// A mapped [`ParRange`], ready to collect.
pub struct ParRangeMap<F> {
    start: usize,
    end: usize,
    min_len: usize,
    f: F,
}

/// Range-map batch: chunk `i` writes `f(start + j)` for every `j` in its
/// element range directly to slot `j` of the output buffer.
struct RangeMapTask<'a, T, F> {
    f: &'a F,
    start: usize,
    n: usize,
    chunk_len: usize,
    out: SharedPtr<T>,
    latch: Latch,
}

impl<T, F> ChunkTask for RangeMapTask<'_, T, F>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    fn run_chunk(&self, index: usize) {
        let lo = index * self.chunk_len;
        let hi = (lo + self.chunk_len).min(self.n);
        for j in lo..hi {
            // SAFETY: slot `j` belongs exclusively to this chunk.
            unsafe { self.out.0.add(j).write((self.f)(self.start + j)) };
        }
    }

    fn latch(&self) -> &Latch {
        &self.latch
    }
}

impl<F> ParRangeMap<F> {
    /// Sets the minimum elements per dispatched chunk.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Executes the map on the pool, writing results (in index order) into
    /// `out`, which must point at `n` uninitialized slots. On return every
    /// slot is initialized; on panic, initialized slots are leaked.
    fn run_into<T>(&self, out: *mut T)
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let n = self.end.saturating_sub(self.start);
        let registry = current_registry();
        let plan = chunk_plan(n, registry.num_workers(), self.min_len);
        if plan.chunks <= 1 || registry.num_workers() <= 1 {
            for j in 0..n {
                // SAFETY: `out` has `n` slots per the caller contract.
                unsafe { out.add(j).write((self.f)(self.start + j)) };
            }
            return;
        }
        let task = RangeMapTask {
            f: &self.f,
            start: self.start,
            n,
            chunk_len: plan.chunk_len,
            out: SharedPtr(out),
            latch: Latch::new(plan.chunks),
        };
        // SAFETY: `task` outlives the call (run_batch blocks); chunks write
        // disjoint output slots.
        unsafe { registry.run_batch(&task, plan.chunks) };
    }

    /// Executes the map in parallel and collects results in index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParallelIterator<T>,
    {
        let n = self.end.saturating_sub(self.start);
        let mut items: Vec<T> = Vec::with_capacity(n);
        self.run_into(items.as_mut_ptr());
        // SAFETY: run_into initialized all `n` slots (or unwound).
        unsafe { items.set_len(n) };
        C::from_ordered_vec(items)
    }

    /// Executes the map in parallel, reusing `target`'s allocation for the
    /// results (in index order). Existing contents are dropped first.
    pub fn collect_into_vec<T>(self, target: &mut Vec<T>)
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let n = self.end.saturating_sub(self.start);
        target.clear();
        target.reserve(n);
        self.run_into(target.as_mut_ptr());
        // SAFETY: run_into initialized all `n` slots (or unwound while the
        // length was still 0).
        unsafe { target.set_len(n) };
    }
}

/// Collection from an order-preserving parallel computation.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in source order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Adds `par_iter_mut` to mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T` over the slice.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut {
            data: self,
            min_len: 1,
        }
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
    min_len: usize,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Sets the minimum elements per dispatched chunk.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps each item through `f` (executed in parallel chunks).
    pub fn map<U, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        F: Fn(&mut T) -> U + Sync,
        U: Send,
    {
        ParMapMut {
            data: self.data,
            min_len: self.min_len,
            f,
        }
    }
}

/// A mapped [`ParIterMut`], ready to reduce.
pub struct ParMapMut<'a, T, F> {
    data: &'a mut [T],
    min_len: usize,
    f: F,
}

/// Slice-sum batch: chunk `i` folds its element range into partial slot
/// `i`; the submitter sums the partials in chunk order, so integer sums
/// are exact and chunk geometry (not stealing order) decides float results.
struct SliceSumTask<'a, T, F, S> {
    f: &'a F,
    base: SharedPtr<T>,
    n: usize,
    chunk_len: usize,
    partials: SharedPtr<MaybeUninit<S>>,
    latch: Latch,
}

impl<T, U, F, S> ChunkTask for SliceSumTask<'_, T, F, S>
where
    T: Send,
    F: Fn(&mut T) -> U + Sync,
    U: Send,
    S: std::iter::Sum<U> + Send,
{
    fn run_chunk(&self, index: usize) {
        let lo = index * self.chunk_len;
        let hi = (lo + self.chunk_len).min(self.n);
        // SAFETY: element range [lo, hi) belongs exclusively to this chunk.
        let part = unsafe { std::slice::from_raw_parts_mut(self.base.0.add(lo), hi - lo) };
        let partial: S = part.iter_mut().map(self.f).sum();
        // SAFETY: partial slot `index` belongs exclusively to this chunk.
        unsafe { (*self.partials.0.add(index)).write(partial) };
    }

    fn latch(&self) -> &Latch {
        &self.latch
    }
}

impl<T, F> ParMapMut<'_, T, F> {
    /// Sets the minimum elements per dispatched chunk.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Sums the mapped values across all items.
    pub fn sum<U, S>(self) -> S
    where
        T: Send,
        F: Fn(&mut T) -> U + Sync,
        U: Send,
        S: std::iter::Sum<U> + std::iter::Sum<S> + Send,
    {
        let n = self.data.len();
        let registry = current_registry();
        let plan = chunk_plan(n, registry.num_workers(), self.min_len);
        if plan.chunks <= 1 || registry.num_workers() <= 1 {
            return self.data.iter_mut().map(&self.f).sum();
        }
        let mut partials: Vec<MaybeUninit<S>> = Vec::with_capacity(plan.chunks);
        partials.resize_with(plan.chunks, MaybeUninit::uninit);
        let task = SliceSumTask {
            f: &self.f,
            base: SharedPtr(self.data.as_mut_ptr()),
            n,
            chunk_len: plan.chunk_len,
            partials: SharedPtr(partials.as_mut_ptr()),
            latch: Latch::new(plan.chunks),
        };
        // SAFETY: `task` outlives the call (run_batch blocks); chunks touch
        // disjoint element ranges and partial slots.
        unsafe { registry.run_batch(&task, plan.chunks) };
        // Every chunk completed without panicking, so every slot is
        // initialized; summing in chunk order keeps results deterministic.
        partials
            .into_iter()
            .map(|slot| unsafe { slot.assume_init() })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn par_range_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn par_iter_mut_sum_visits_every_item_once() {
        let mut data = vec![0u64; 513];
        let total: u64 = data
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .sum();
        assert_eq!(total, 513);
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn zero_workers_is_a_build_error() {
        let err = ThreadPoolBuilder::new().num_threads(0).build().err();
        let err = err.expect("num_threads(0) must be rejected");
        assert!(err.to_string().contains("num_threads(0)"));
    }

    #[test]
    fn install_routes_work_to_the_dedicated_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = pool.stats();
        let out: Vec<u64> =
            pool.install(|| (0..10_000).into_par_iter().map(|i| i as u64).collect());
        assert_eq!(out.len(), 10_000);
        let delta = pool.stats().delta(&before);
        assert_eq!(delta.calls, 1);
        assert!(delta.tasks_executed > 1, "work did not reach the pool");
    }

    #[test]
    fn collect_into_vec_reuses_the_buffer() {
        let mut buf: Vec<usize> = Vec::new();
        (0..500)
            .into_par_iter()
            .map(|i| i * 2)
            .collect_into_vec(&mut buf);
        assert_eq!(buf.len(), 500);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i * 2));
        let cap = buf.capacity();
        (0..300)
            .into_par_iter()
            .map(|i| i + 1)
            .collect_into_vec(&mut buf);
        assert_eq!(buf.len(), 300);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn min_len_bounds_chunk_count() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let before = pool.stats();
        let total: u64 = pool.install(|| {
            let mut data = vec![1u64; 1000];
            data.par_iter_mut().with_min_len(400).map(|x| *x).sum()
        });
        assert_eq!(total, 1000);
        let delta = pool.stats().delta(&before);
        // ceil(1000 / 400) = 3 chunks -> at most 3 leaf tasks, 2 splits.
        assert!(delta.tasks_executed <= 3, "{delta:?}");
        assert!(delta.splits <= 2, "{delta:?}");
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let v: Vec<usize> = (0..100)
                    .into_par_iter()
                    .map(|i| {
                        assert!(i != 63, "boom at 63");
                        i
                    })
                    .collect();
                v
            })
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool keeps working after a propagated panic.
        let sum: u64 = pool.install(|| {
            let mut data = vec![2u64; 256];
            data.par_iter_mut().map(|x| *x).sum()
        });
        assert_eq!(sum, 512);
    }

    #[test]
    fn nested_install_restores_outer_pool() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counts = outer.install(|| {
            let before = current_num_threads();
            let inside = inner.install(current_num_threads);
            (before, inside, current_num_threads())
        });
        assert_eq!(counts, (2, 3, 2));
    }

    #[test]
    fn nested_parallel_ops_on_the_global_pool_complete() {
        // The inner op runs from a worker (help-while-waiting path).
        let nested: Vec<u64> = (0..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<u64> = (0..200)
                    .into_par_iter()
                    .map(move |j| (i * 200 + j) as u64)
                    .collect();
                inner.iter().sum()
            })
            .collect();
        let expect: Vec<u64> = (0..8u64)
            .map(|i| (0..200u64).map(|j| i * 200 + j).sum())
            .collect();
        assert_eq!(nested, expect);
    }

    #[test]
    fn sums_are_identical_across_worker_counts() {
        let reference: u64 = {
            let mut data: Vec<u64> = (0..4096).collect();
            data.iter_mut().map(|x| *x * 3).sum()
        };
        for workers in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .unwrap();
            let total: u64 = pool.install(|| {
                let mut data: Vec<u64> = (0..4096).collect();
                data.par_iter_mut().map(|x| *x * 3).sum()
            });
            assert_eq!(total, reference, "workers = {workers}");
        }
    }

    #[test]
    fn telemetry_counts_queue_latency_per_call() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = pool.stats();
        for _ in 0..5 {
            let v: Vec<usize> = pool.install(|| (0..256).into_par_iter().map(|i| i).collect());
            assert_eq!(v.len(), 256);
        }
        let delta = pool.stats().delta(&before);
        assert_eq!(delta.calls, 5);
    }
}
