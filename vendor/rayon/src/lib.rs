//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *API subset it actually uses*, implemented with
//! `std::thread::scope` fork-join chunking:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a pool here is just a
//!   requested worker count; `install` scopes that count onto the parallel
//!   operations run inside it.
//! * `slice.par_iter_mut().map(f).sum()` — chunked fork-join over a mutable
//!   slice.
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()` — order-preserving
//!   chunked fork-join over an index range.
//!
//! Semantics match rayon where it matters for this workspace: work is
//! genuinely executed on multiple OS threads (real wall-clock speedup in
//! E02/E03), results are deterministic because chunk outputs are recombined
//! in index order, and closures must be `Sync` exactly as rayon requires.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::cell::Cell;

/// Rayon-style prelude: import the traits that add `par_iter_mut` /
/// `into_par_iter` to std types.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSliceMut};
}

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker count for parallel operations started on this thread: the
/// innermost [`ThreadPool::install`] if any, else available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(Cell::get).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error building a [`ThreadPool`] (never produced by this stand-in; kept
/// for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Accepted for compatibility; worker threads here are unnamed because
    /// they are short-lived scoped threads.
    #[must_use]
    pub fn thread_name<F>(self, _name: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool. Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// A "pool": a worker-count context applied to parallel operations run
/// inside [`ThreadPool::install`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count governing any parallel
    /// operations it performs.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let previous = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(previous));
        result
    }

    /// The configured worker count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Conversion into a parallel iterator (only the types this workspace
/// parallelizes over).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    /// Maps each index through `f` (executed in parallel chunks).
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParRangeMap {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// A mapped [`ParRange`], ready to collect.
pub struct ParRangeMap<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Executes the map in parallel and collects results in index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParallelIterator<T>,
    {
        let n = self.end.saturating_sub(self.start);
        let threads = current_num_threads().min(n.max(1));
        let f = &self.f;
        if threads <= 1 || n <= 1 {
            return C::from_ordered_vec((self.start..self.end).map(f).collect());
        }
        let chunk = n.div_ceil(threads);
        let parts: Vec<Vec<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = self.start + t * chunk;
                    let hi = (lo + chunk).min(self.end);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect()
        });
        C::from_ordered_vec(parts.into_iter().flatten().collect())
    }
}

/// Collection from an order-preserving parallel computation.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in source order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Adds `par_iter_mut` to mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T` over the slice.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { data: self }
    }
}

/// Parallel iterator over `&mut T` items of a slice.
pub struct ParIterMut<'a, T> {
    data: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Maps each item through `f` (executed in parallel chunks).
    pub fn map<U, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        F: Fn(&mut T) -> U + Sync,
        U: Send,
    {
        ParMapMut { data: self.data, f }
    }
}

/// A mapped [`ParIterMut`], ready to reduce.
pub struct ParMapMut<'a, T, F> {
    data: &'a mut [T],
    f: F,
}

impl<T, F> ParMapMut<'_, T, F> {
    /// Sums the mapped values across all items.
    pub fn sum<U, S>(self) -> S
    where
        T: Send,
        F: Fn(&mut T) -> U + Sync,
        U: Send,
        S: std::iter::Sum<U> + std::iter::Sum<S> + Send,
    {
        let n = self.data.len();
        let threads = current_num_threads().min(n.max(1));
        let f = &self.f;
        if threads <= 1 || n <= 1 {
            return self.data.iter_mut().map(f).sum();
        }
        let chunk = n.div_ceil(threads);
        let partials: Vec<S> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .data
                .chunks_mut(chunk)
                .map(|part| scope.spawn(move || part.iter_mut().map(f).sum::<S>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel sum worker panicked"))
                .collect()
        });
        partials.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_range_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn par_iter_mut_sum_visits_every_item_once() {
        let mut data = vec![0u64; 513];
        let total: u64 = data
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .sum();
        assert_eq!(total, 513);
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }
}
