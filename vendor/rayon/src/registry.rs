//! The persistent work-stealing pool.
//!
//! A [`Registry`] owns long-lived worker threads. Each worker has a private
//! deque used LIFO from its own end (cache-hot, most recently split work)
//! and FIFO from the other end for thieves (the oldest — and therefore
//! largest — job ranges). External callers inject jobs through a shared
//! injector queue. Idle workers park on a condvar and cost nothing until
//! the next submission.
//!
//! Scheduling never influences *results*: chunk boundaries are computed
//! deterministically by the submitter and recombined by chunk index, so
//! stealing order only affects wall-clock time.

use crate::job::{ChunkTask, Job};
use crate::telemetry::{PoolStats, Telemetry};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// `(registry address, worker index)` when this thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    /// Per-thread xorshift state for victim selection. Seeded from the
    /// thread's worker identity; steal order never affects results.
    static STEAL_RNG: Cell<u64> = const { Cell::new(0) };
}

pub(crate) struct Registry {
    deques: Vec<Mutex<VecDeque<Job>>>,
    injector: Mutex<VecDeque<Job>>,
    /// Queued jobs across the injector and all deques.
    pending: AtomicUsize,
    /// Count of parked workers; the mutex also serializes the
    /// check-then-sleep against push-then-notify (no lost wakeups).
    sleep: Mutex<usize>,
    wakeup: Condvar,
    terminate: AtomicBool,
    telemetry: Telemetry,
}

impl Registry {
    /// Builds the registry and spawns its worker threads.
    ///
    /// # Panics
    /// Panics if a worker thread cannot be spawned.
    pub fn new(workers: usize, mut name: impl FnMut(usize) -> String) -> Arc<Registry> {
        assert!(workers >= 1, "a pool needs at least one worker");
        let registry = Arc::new(Registry {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(0),
            wakeup: Condvar::new(),
            terminate: AtomicBool::new(false),
            telemetry: Telemetry::default(),
        });
        for index in 0..workers {
            let r = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(name(index))
                .spawn(move || worker_loop(&r, index))
                .expect("failed to spawn pool worker thread");
        }
        registry
    }

    pub fn num_workers(&self) -> usize {
        self.deques.len()
    }

    pub fn stats(&self) -> PoolStats {
        self.telemetry.snapshot(self.num_workers())
    }

    fn address(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Index of the calling thread if it is a worker *of this registry*.
    fn current_worker(&self) -> Option<usize> {
        WORKER
            .with(Cell::get)
            .and_then(|(addr, index)| (addr == self.address()).then_some(index))
    }

    /// Wakes one parked worker if any. Callers must have already pushed
    /// their job and bumped `pending`.
    fn signal(&self) {
        let sleepers = self.sleep.lock().unwrap();
        if *sleepers > 0 {
            self.wakeup.notify_one();
        }
    }

    /// Pushes a job: onto worker `me`'s deque when called from a worker,
    /// else into the shared injector.
    fn push(&self, me: Option<usize>, job: Job) {
        match me {
            Some(index) => self.deques[index].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.signal();
    }

    /// Finds the next job: own deque (LIFO) → injector (FIFO) → steal from
    /// a random victim (FIFO end, i.e. the victim's largest range).
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(index) = me {
            if let Some(job) = self.deques[index].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.deques.len();
        let start = steal_start(n);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.telemetry.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Executes a job on the calling worker thread: recursively halves the
    /// chunk range (far halves become stealable), then runs the leaf chunk.
    fn execute(&self, job: Job) {
        let Job { task, lo, mut hi } = job;
        if let Some(micros) = unsafe { &*task }.latch().note_started() {
            self.telemetry
                .queue_wait
                .fetch_add(micros, Ordering::Relaxed);
        }
        let me = self.current_worker();
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            self.telemetry.splits.fetch_add(1, Ordering::Relaxed);
            self.push(me, Job { task, lo: mid, hi });
            hi = mid;
        }
        // SAFETY: the submitter blocks until the latch completes, keeping
        // `task` alive for the duration of this call.
        unsafe { Job::run_leaf(task, lo) };
        self.telemetry.tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `chunks` chunks of `task` to completion on this pool,
    /// propagating the first chunk panic to the caller.
    ///
    /// # Safety
    /// The caller must keep `task` alive until this returns (automatic for
    /// stack-owned tasks, since this call blocks) and `run_chunk` must be
    /// safe to invoke concurrently for distinct indices.
    pub unsafe fn run_batch(&self, task: &(dyn ChunkTask + '_), chunks: usize) {
        debug_assert!(chunks > 0, "empty batches are handled by the caller");
        self.telemetry.calls.fetch_add(1, Ordering::Relaxed);
        // SAFETY: lifetime erasure only; the pointee outlives every queued
        // job because this call blocks until the latch completes.
        let raw: *const (dyn ChunkTask + 'static) =
            unsafe { std::mem::transmute(std::ptr::from_ref(task)) };
        let me = self.current_worker();
        self.push(
            me,
            Job {
                task: raw,
                lo: 0,
                hi: chunks,
            },
        );
        match me {
            // A worker must keep executing jobs while it waits, or nested
            // parallelism on the same pool could deadlock.
            Some(_) => {
                while !task.latch().probe_done() {
                    match self.find_job(me) {
                        Some(job) => self.execute(job),
                        None => std::thread::yield_now(),
                    }
                }
            }
            None => task.latch().wait_blocking(),
        }
        if let Some(payload) = task.latch().take_panic() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Asks the workers to exit once the pool drains (called when a
    /// dedicated [`crate::ThreadPool`] is dropped; all its batches have
    /// completed by then, because submissions block).
    pub fn terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
        let _sleepers = self.sleep.lock().unwrap();
        self.wakeup.notify_all();
    }

    /// Parks the calling worker until new work is signalled. Re-checks
    /// `pending` under the sleep lock so a concurrent push cannot be lost.
    fn park(&self) {
        let mut sleepers = self.sleep.lock().unwrap();
        if self.pending.load(Ordering::SeqCst) > 0 || self.terminate.load(Ordering::SeqCst) {
            return;
        }
        *sleepers += 1;
        self.telemetry.parks.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.wakeup.wait(sleepers).unwrap();
        *guard -= 1;
    }
}

fn worker_loop(registry: &Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((registry.address(), index))));
    STEAL_RNG.with(|s| s.set(registry.address() as u64 ^ ((index as u64) << 32) | 1));
    loop {
        if let Some(job) = registry.find_job(Some(index)) {
            registry.execute(job);
            continue;
        }
        if registry.terminate.load(Ordering::SeqCst) {
            return;
        }
        registry.park();
    }
}

/// Random first victim for this steal attempt (xorshift64*).
fn steal_start(n: usize) -> usize {
    STEAL_RNG.with(|s| {
        let mut x = s.get().max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % n as u64) as usize
    })
}

/// The lazily-started global pool (sized to available parallelism).
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(default_parallelism(), |i| format!("rayon-global-{i}")))
}

/// Cached `available_parallelism` (the OS is queried exactly once).
pub(crate) fn default_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}
