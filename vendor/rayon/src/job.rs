//! Type-erased chunked jobs and their completion latch.
//!
//! A parallel operation is submitted to the pool as one [`ChunkTask`]: a
//! batch of `chunks` independent units, each executable in any order and on
//! any worker. Workers receive [`Job`]s — contiguous ranges of chunk
//! indices — and recursively halve them, pushing the far half onto their
//! own deque where idle workers can steal it. The submitting call blocks on
//! the task's [`Latch`] until every chunk has completed, which is what makes
//! the raw borrowed pointer inside [`Job`] sound.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A batch of independently executable chunks. Implementors map a chunk
/// index to an element range and recombine results *by chunk index*, so the
/// outcome is independent of execution order (and therefore of stealing).
pub(crate) trait ChunkTask: Sync {
    /// Executes chunk `index`. Called exactly once per index, possibly
    /// concurrently with other indices.
    fn run_chunk(&self, index: usize);

    /// The batch's completion latch.
    fn latch(&self) -> &Latch;
}

/// Completion state of one submitted [`ChunkTask`].
pub(crate) struct Latch {
    /// Chunks not yet executed.
    remaining: AtomicUsize,
    /// Whether any chunk has started (for queue-latency measurement).
    started: AtomicBool,
    /// When the batch was created/injected.
    injected_at: Instant,
    /// First panic payload from a chunk, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion flag + wakeup for a blocked submitter. `done` is the only
    /// field a waiter may consult to decide the latch can be destroyed: the
    /// completing worker's final touch is releasing this mutex.
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    pub fn new(chunks: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(chunks),
            started: AtomicBool::new(false),
            injected_at: Instant::now(),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Marks the batch as started; returns the queue latency in µs on the
    /// first call, `None` afterwards.
    pub fn note_started(&self) -> Option<u64> {
        if self.started.swap(true, Ordering::Relaxed) {
            None
        } else {
            Some(self.injected_at.elapsed().as_micros() as u64)
        }
    }

    /// Stores the first panic payload observed by any chunk.
    pub fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Marks one chunk complete; the last completion wakes the submitter.
    ///
    /// The latch must not be touched after this call returns (the submitter
    /// may already have destroyed it).
    pub fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut d = self.done.lock().unwrap();
            *d = true;
            self.cv.notify_all();
        }
    }

    /// `true` once every chunk has completed *and* the completing worker is
    /// finished with the latch.
    pub fn probe_done(&self) -> bool {
        *self.done.lock().unwrap()
    }

    /// Blocks the calling (non-worker) thread until the batch completes.
    pub fn wait_blocking(&self) {
        let mut d = self.done.lock().unwrap();
        while !*d {
            d = self.cv.wait(d).unwrap();
        }
    }

    /// Removes the stored panic payload, if any. Call after completion.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// A contiguous range `[lo, hi)` of chunk indices of one [`ChunkTask`].
///
/// The raw pointer borrows the submitter's stack frame; it stays valid
/// because the submitter blocks until the latch completes, and the latch
/// completes only after every queued `Job` of the task has executed.
pub(crate) struct Job {
    pub task: *const (dyn ChunkTask + 'static),
    pub lo: usize,
    pub hi: usize,
}

// SAFETY: the pointee is `Sync` (required by `ChunkTask`) and outlives the
// job per the invariant above, so moving the pointer across threads is fine.
unsafe impl Send for Job {}

impl Job {
    /// Runs one leaf chunk, capturing panics into the latch. Returns `true`
    /// if the chunk panicked.
    ///
    /// # Safety
    /// `task` must still be alive (guaranteed by the submitter blocking on
    /// the latch).
    pub unsafe fn run_leaf(task: *const (dyn ChunkTask + 'static), index: usize) -> bool {
        let task = unsafe { &*task };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| task.run_chunk(index)));
        let panicked = result.is_err();
        if let Err(payload) = result {
            task.latch().record_panic(payload);
        }
        // Last touch: after this the submitter may free the task.
        task.latch().complete_one();
        panicked
    }
}
