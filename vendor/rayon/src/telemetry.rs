//! Pool health counters.
//!
//! Every [`crate::ThreadPool`] (and the lazily-started global pool) keeps a
//! set of lock-free lifetime counters. Consumers snapshot them as
//! [`PoolStats`] and difference snapshots to get per-batch deltas — the
//! `pga-observe` integration in `pga-master-slave` does exactly that to
//! emit one pool-health event per dispatched evaluation batch.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Point-in-time snapshot of a pool's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads owned by the pool.
    pub workers: u64,
    /// Parallel operations dispatched to the pool.
    pub calls: u64,
    /// Leaf chunk tasks executed by workers.
    pub tasks_executed: u64,
    /// Times a worker halved a job, making the far half stealable.
    pub splits: u64,
    /// Jobs a worker obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Times a worker parked on an empty pool.
    pub parks: u64,
    /// Total microseconds between a call's injection and its first chunk
    /// starting to execute (per-call queue latency, summed over `calls`).
    pub queue_wait_micros: u64,
}

impl PoolStats {
    /// Counter-wise `self - earlier` (saturating), for per-batch deltas.
    /// `workers` keeps its current value.
    #[must_use]
    pub fn delta(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            workers: self.workers,
            calls: self.calls.saturating_sub(earlier.calls),
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            splits: self.splits.saturating_sub(earlier.splits),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
            queue_wait_micros: self
                .queue_wait_micros
                .saturating_sub(earlier.queue_wait_micros),
        }
    }
}

/// Live counters backing [`PoolStats`]. Relaxed ordering throughout: the
/// counters are diagnostics, never synchronization.
#[derive(Default)]
pub(crate) struct Telemetry {
    pub calls: AtomicU64,
    pub tasks: AtomicU64,
    pub splits: AtomicU64,
    pub steals: AtomicU64,
    pub parks: AtomicU64,
    pub queue_wait: AtomicU64,
}

impl Telemetry {
    pub fn snapshot(&self, workers: usize) -> PoolStats {
        PoolStats {
            workers: workers as u64,
            calls: self.calls.load(Relaxed),
            tasks_executed: self.tasks.load(Relaxed),
            splits: self.splits.load(Relaxed),
            steals: self.steals.load(Relaxed),
            parks: self.parks.load(Relaxed),
            queue_wait_micros: self.queue_wait.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_but_keeps_workers() {
        let a = PoolStats {
            workers: 4,
            calls: 10,
            tasks_executed: 100,
            splits: 20,
            steals: 5,
            parks: 8,
            queue_wait_micros: 400,
        };
        let b = PoolStats {
            workers: 4,
            calls: 12,
            tasks_executed: 130,
            splits: 26,
            steals: 6,
            parks: 9,
            queue_wait_micros: 450,
        };
        let d = b.delta(&a);
        assert_eq!(d.workers, 4);
        assert_eq!(d.calls, 2);
        assert_eq!(d.tasks_executed, 30);
        assert_eq!(d.splits, 6);
        assert_eq!(d.steals, 1);
        assert_eq!(d.parks, 1);
        assert_eq!(d.queue_wait_micros, 50);
    }
}
