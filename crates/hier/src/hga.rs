//! The hierarchical (multi-layer, multi-fidelity) island engine.

use crate::fidelity::{FidelityProblem, LevelView};
use pga_core::ops::ReplacementPolicy;
use pga_core::{Ga, Individual, Problem, SerialEvaluator};
use std::sync::Arc;

/// Shape and schedule of a hierarchy.
#[derive(Clone, Debug)]
pub struct HgaConfig {
    /// Islands per layer, root layer first — e.g. `[1, 2, 4]` is Sefrioui &
    /// Périaux's 3-layer binary tree. Layer 0 evaluates the precise model;
    /// layer `l` evaluates fidelity level `min(l, levels-1)`.
    pub layer_widths: Vec<usize>,
    /// Generations each island evolves between migrations.
    pub epoch_generations: u64,
    /// Individuals promoted to the parent (and sent down to each child) per
    /// epoch.
    pub promote_count: usize,
}

impl Default for HgaConfig {
    fn default() -> Self {
        Self {
            layer_widths: vec![1, 2, 4],
            epoch_generations: 10,
            promote_count: 2,
        }
    }
}

/// Progress point: cumulative cost vs best precise fitness.
#[derive(Clone, Copy, Debug)]
pub struct CostPoint {
    /// Cost units spent so far (1.0 = one precise evaluation).
    pub cost_units: f64,
    /// Best fitness found on the precise (level-0) model so far.
    pub best_precise: f64,
}

/// Result of an HGA run.
#[derive(Clone, Debug)]
pub struct HgaReport<G> {
    /// Best individual on the precise model.
    pub best: Individual<G>,
    /// Total cost units spent (precise-evaluation equivalents).
    pub cost_units: f64,
    /// Epochs completed.
    pub epochs: u64,
    /// `true` when the precise optimum was reached.
    pub hit_optimum: bool,
    /// Per-epoch cost/quality trajectory.
    pub trajectory: Vec<CostPoint>,
}

/// A tree of islands over fidelity levels.
pub struct Hga<F: FidelityProblem> {
    problem: Arc<F>,
    islands: Vec<Ga<LevelView<F>, SerialEvaluator>>,
    layer_of: Vec<usize>,
    parent_of: Vec<Option<usize>>,
    config: HgaConfig,
    cost_units: f64,
    /// Evaluations already charged per island.
    charged: Vec<u64>,
}

impl<F: FidelityProblem> Hga<F> {
    /// Assembles the hierarchy. `build_island` configures one engine for a
    /// given fidelity view and seed (operators, population size, scheme).
    ///
    /// # Panics
    /// Panics if the config has no layers or zero-width layers.
    #[must_use]
    pub fn new(
        problem: Arc<F>,
        config: HgaConfig,
        base_seed: u64,
        mut build_island: impl FnMut(LevelView<F>, u64) -> Ga<LevelView<F>, SerialEvaluator>,
    ) -> Self {
        assert!(!config.layer_widths.is_empty(), "need at least one layer");
        assert!(
            config.layer_widths.iter().all(|&w| w > 0),
            "layers must be non-empty"
        );
        assert!(config.promote_count > 0, "promote_count must be > 0");
        let mut islands = Vec::new();
        let mut layer_of = Vec::new();
        let mut parent_of: Vec<Option<usize>> = Vec::new();
        let mut layer_start = Vec::new();
        let max_level = problem.levels() - 1;
        let mut seed = base_seed;
        for (layer, &width) in config.layer_widths.iter().enumerate() {
            layer_start.push(islands.len());
            let level = layer.min(max_level);
            for j in 0..width {
                let view = LevelView::new(Arc::clone(&problem), level);
                islands.push(build_island(view, seed));
                seed = seed.wrapping_add(1);
                layer_of.push(layer);
                parent_of.push(if layer == 0 {
                    None
                } else {
                    // Children map onto parents round-robin by position.
                    let pw = config.layer_widths[layer - 1];
                    Some(layer_start[layer - 1] + j % pw)
                });
            }
        }
        let charged = islands.iter().map(Ga::evaluations).collect::<Vec<_>>();
        // Charge initial populations.
        let mut cost_units = 0.0;
        for (i, isl) in islands.iter().enumerate() {
            cost_units += charged[i] as f64 * isl.problem().cost();
        }
        Self {
            problem,
            islands,
            layer_of,
            parent_of,
            config,
            cost_units,
            charged,
        }
    }

    /// Cost units spent so far.
    #[must_use]
    pub fn cost_units(&self) -> f64 {
        self.cost_units
    }

    /// Island count across all layers.
    #[must_use]
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Best individual among the precise (layer-0) islands.
    #[must_use]
    pub fn best_precise(&self) -> Individual<F::Genome> {
        let objective = self.problem.objective();
        let mut best: Option<&Individual<F::Genome>> = None;
        for (i, isl) in self.islands.iter().enumerate() {
            if self.layer_of[i] != 0 {
                continue;
            }
            let cand = isl.best_ever();
            if best.is_none() || objective.better(cand.fitness(), best.expect("set").fitness()) {
                best = Some(cand);
            }
        }
        best.expect("layer 0 is non-empty").clone()
    }

    fn charge_new_evals(&mut self) {
        for i in 0..self.islands.len() {
            let now = self.islands[i].evaluations();
            let fresh = now - self.charged[i];
            if fresh > 0 {
                self.cost_units += fresh as f64 * self.islands[i].problem().cost();
                self.charged[i] = now;
            }
        }
    }

    /// One epoch: evolve every island, then migrate up (re-evaluating at the
    /// parent's fidelity) and down.
    pub fn epoch(&mut self) {
        for isl in &mut self.islands {
            for _ in 0..self.config.epoch_generations {
                isl.step();
            }
        }
        self.charge_new_evals();

        let objective = self.problem.objective();
        let promote = self.config.promote_count;

        // Collect upward and downward transfers first (genomes only),
        // then apply — transfers within one epoch see pre-migration state.
        let mut transfers: Vec<(usize, Vec<F::Genome>)> = Vec::new();
        for i in 0..self.islands.len() {
            if let Some(parent) = self.parent_of[i] {
                // Up: the child's best genomes.
                let top = self.islands[i]
                    .population()
                    .top_k_indices(objective, promote);
                let genomes = top
                    .into_iter()
                    .map(|k| self.islands[i].population()[k].genome.clone())
                    .collect();
                transfers.push((parent, genomes));
                // Down: random parent members to keep the child exploring.
                let mut rng = self.islands[parent].rng_mut().clone();
                let picks = rng.sample_distinct(self.islands[parent].population().len(), promote);
                *self.islands[parent].rng_mut() = rng;
                let genomes_down = picks
                    .into_iter()
                    .map(|k| self.islands[parent].population()[k].genome.clone())
                    .collect();
                transfers.push((i, genomes_down));
            }
        }

        for (dst, genomes) in transfers {
            let view = Arc::clone(self.islands[dst].problem());
            let immigrants: Vec<Individual<F::Genome>> = genomes
                .into_iter()
                .map(|g| {
                    // Re-evaluate at the destination fidelity: fitness is
                    // level-dependent and must not leak across layers.
                    let fitness = view.evaluate(&g);
                    self.cost_units += view.cost();
                    Individual::evaluated(g, fitness)
                })
                .collect();
            self.islands[dst].receive_immigrants(immigrants, ReplacementPolicy::WorstIfBetter);
        }
    }

    /// Runs until the precise optimum is hit or `max_cost_units` is spent.
    #[must_use]
    pub fn run(mut self, max_cost_units: f64) -> HgaReport<F::Genome> {
        let mut trajectory = vec![CostPoint {
            cost_units: self.cost_units,
            best_precise: self.best_precise().fitness(),
        }];
        let mut epochs = 0u64;
        while self.cost_units < max_cost_units {
            let best = self.best_precise();
            if self.problem.is_optimal(best.fitness()) {
                break;
            }
            self.epoch();
            epochs += 1;
            trajectory.push(CostPoint {
                cost_units: self.cost_units,
                best_precise: self.best_precise().fitness(),
            });
        }
        let best = self.best_precise();
        HgaReport {
            hit_optimum: self.problem.is_optimal(best.fitness()),
            best,
            cost_units: self.cost_units,
            epochs,
            trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::BlurredFidelity;
    use pga_core::ops::{BlxAlpha, GaussianMutation, Tournament};
    use pga_core::{Bounds, Objective, Problem, RealVector, Rng64, Scheme};

    struct Sphere(Bounds);
    impl Problem for Sphere {
        type Genome = RealVector;
        fn name(&self) -> String {
            "sphere".into()
        }
        fn objective(&self) -> Objective {
            Objective::Minimize
        }
        fn evaluate(&self, g: &RealVector) -> f64 {
            g.values().iter().map(|x| x * x).sum()
        }
        fn random_genome(&self, rng: &mut Rng64) -> RealVector {
            self.0.sample(rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(0.0)
        }
        fn optimum_epsilon(&self) -> f64 {
            1e-2
        }
    }

    fn build(
        view: LevelView<BlurredFidelity<Sphere>>,
        seed: u64,
    ) -> Ga<LevelView<BlurredFidelity<Sphere>>, SerialEvaluator> {
        let bounds = Bounds::uniform(-5.0, 5.0, 6);
        pga_core::GaBuilder::new(view)
            .seed(seed)
            .pop_size(24)
            .selection(Tournament::binary())
            .crossover(BlxAlpha::new(bounds.clone()))
            .mutation(GaussianMutation {
                p: 0.2,
                sigma: 0.3,
                bounds,
            })
            .scheme(Scheme::Generational { elitism: 1 })
            .build()
            .unwrap()
    }

    fn hga(amplitude: f64, cost_ratio: f64, seed: u64) -> Hga<BlurredFidelity<Sphere>> {
        let problem = Arc::new(BlurredFidelity::new(
            Sphere(Bounds::uniform(-5.0, 5.0, 6)),
            3,
            amplitude,
            cost_ratio,
        ));
        Hga::new(problem, HgaConfig::default(), seed, build)
    }

    #[test]
    fn hierarchy_shape() {
        let h = hga(0.3, 4.0, 1);
        assert_eq!(h.island_count(), 7);
        assert_eq!(h.layer_of, vec![0, 1, 1, 2, 2, 2, 2]);
        assert_eq!(h.parent_of[0], None);
        assert_eq!(h.parent_of[1], Some(0));
        assert_eq!(h.parent_of[2], Some(0));
        assert_eq!(h.parent_of[3], Some(1));
        assert_eq!(h.parent_of[4], Some(2));
    }

    #[test]
    fn initial_cost_accounts_fidelity() {
        // 24 individuals/island; 1 island at cost 1, 2 at 1/4, 4 at 1/16.
        let h = hga(0.3, 4.0, 2);
        let expected = 24.0 * (1.0 + 2.0 * 0.25 + 4.0 * 0.0625);
        assert!(
            (h.cost_units() - expected).abs() < 1e-9,
            "{}",
            h.cost_units()
        );
    }

    #[test]
    fn hga_improves_precise_best() {
        let report = hga(0.3, 4.0, 3).run(4_000.0);
        assert!(
            report.best.fitness() < 0.5,
            "best = {}",
            report.best.fitness()
        );
        assert!(report.epochs > 0);
        // Trajectory is monotone in cost and non-worsening in quality.
        for w in report.trajectory.windows(2) {
            assert!(w[1].cost_units >= w[0].cost_units);
            assert!(w[1].best_precise <= w[0].best_precise + 1e-12);
        }
    }

    #[test]
    fn cheap_layers_make_progress_cheaper() {
        // Same architecture; the all-precise variant pays cost 1 per
        // evaluation everywhere (cost_ratio = 1).
        let budget = 2_500.0;
        let multi = hga(0.3, 4.0, 10).run(budget);
        let precise_only = hga(0.0, 1.0, 10).run(budget);
        // Both should improve, but the multi-fidelity run gets far more
        // evolution per cost unit and should be at least as good.
        assert!(
            multi.best.fitness() <= precise_only.best.fitness() + 0.1,
            "multi {} vs precise {}",
            multi.best.fitness(),
            precise_only.best.fitness()
        );
    }

    #[test]
    fn deterministic() {
        let a = hga(0.3, 4.0, 5).run(1_000.0);
        let b = hga(0.3, 4.0, 5).run(1_000.0);
        assert_eq!(a.best.fitness(), b.best.fitness());
        assert_eq!(a.cost_units, b.cost_units);
        assert_eq!(a.epochs, b.epochs);
    }
}
