//! The hierarchical (multi-layer, multi-fidelity) island engine.

use crate::fidelity::{FidelityProblem, LevelView};
use pga_core::ops::ReplacementPolicy;
use pga_core::{
    ConfigError, Driver, Engine, Ga, Individual, Objective, Problem, Progress, RunOutcome,
    SerialEvaluator, Snapshot, SnapshotError, SnapshotWriter, StepReport, Termination,
};
use std::sync::Arc;
use std::time::Duration;

/// Shape and schedule of a hierarchy.
#[derive(Clone, Debug)]
pub struct HgaConfig {
    /// Islands per layer, root layer first — e.g. `[1, 2, 4]` is Sefrioui &
    /// Périaux's 3-layer binary tree. Layer 0 evaluates the precise model;
    /// layer `l` evaluates fidelity level `min(l, levels-1)`.
    pub layer_widths: Vec<usize>,
    /// Generations each island evolves between migrations.
    pub epoch_generations: u64,
    /// Individuals promoted to the parent (and sent down to each child) per
    /// epoch.
    pub promote_count: usize,
}

impl Default for HgaConfig {
    fn default() -> Self {
        Self {
            layer_widths: vec![1, 2, 4],
            epoch_generations: 10,
            promote_count: 2,
        }
    }
}

/// Progress point: cumulative cost vs best precise fitness.
#[derive(Clone, Copy, Debug)]
pub struct CostPoint {
    /// Cost units spent so far (1.0 = one precise evaluation).
    pub cost_units: f64,
    /// Best fitness found on the precise (level-0) model so far.
    pub best_precise: f64,
}

/// Island factory used by [`HgaBuilder`]: configures one engine for a given
/// fidelity view and seed.
pub type IslandFactory<F> = Box<dyn FnMut(LevelView<F>, u64) -> Ga<LevelView<F>, SerialEvaluator>>;

/// Fluent configuration for [`Hga`] — the builder façade matching
/// `GaBuilder`/`CellularGaBuilder`; validation happens in
/// [`build`](HgaBuilder::build).
pub struct HgaBuilder<F: FidelityProblem> {
    problem: Arc<F>,
    config: HgaConfig,
    seed: u64,
    build_island: Option<IslandFactory<F>>,
}

impl<F: FidelityProblem> HgaBuilder<F> {
    fn new(problem: Arc<F>) -> Self {
        Self {
            problem,
            config: HgaConfig::default(),
            seed: 0,
            build_island: None,
        }
    }

    /// Islands per layer, root first (see [`HgaConfig::layer_widths`]).
    #[must_use]
    pub fn layer_widths(mut self, widths: Vec<usize>) -> Self {
        self.config.layer_widths = widths;
        self
    }

    /// Generations each island evolves between migrations.
    #[must_use]
    pub fn epoch_generations(mut self, generations: u64) -> Self {
        self.config.epoch_generations = generations;
        self
    }

    /// Individuals promoted up (and sent down) per epoch.
    #[must_use]
    pub fn promote_count(mut self, count: usize) -> Self {
        self.config.promote_count = count;
        self
    }

    /// Base seed; island `i` gets `seed + i`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Island factory: builds one engine for a fidelity view and seed
    /// (operators, population size, scheme). Required.
    #[must_use]
    pub fn island(
        mut self,
        build: impl FnMut(LevelView<F>, u64) -> Ga<LevelView<F>, SerialEvaluator> + 'static,
    ) -> Self {
        self.build_island = Some(Box::new(build));
        self
    }

    /// Validates the configuration and assembles the hierarchy.
    ///
    /// # Errors
    /// [`ConfigError::MissingComponent`] without an island factory;
    /// [`ConfigError::InvalidParameter`] on empty/zero-width layers, zero
    /// `promote_count`, or zero `epoch_generations`.
    pub fn build(self) -> Result<Hga<F>, ConfigError> {
        if self.config.epoch_generations == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "epoch_generations",
                message: "must be > 0".into(),
            });
        }
        let build_island = self
            .build_island
            .ok_or(ConfigError::MissingComponent("island factory"))?;
        Hga::new(self.problem, self.config, self.seed, build_island)
    }
}

/// A tree of islands over fidelity levels.
pub struct Hga<F: FidelityProblem> {
    problem: Arc<F>,
    islands: Vec<Ga<LevelView<F>, SerialEvaluator>>,
    layer_of: Vec<usize>,
    parent_of: Vec<Option<usize>>,
    config: HgaConfig,
    cost_units: f64,
    /// Evaluations already charged per island.
    charged: Vec<u64>,
    epochs: u64,
    stagnant_epochs: u64,
    best_seen: Option<f64>,
    trajectory: Vec<CostPoint>,
}

impl<F: FidelityProblem> Hga<F> {
    /// Starts configuring a hierarchy over `problem` — the canonical
    /// entry point (see [`HgaBuilder`]).
    #[must_use]
    pub fn builder(problem: Arc<F>) -> HgaBuilder<F> {
        HgaBuilder::new(problem)
    }

    /// Assembles the hierarchy. `build_island` configures one engine for a
    /// given fidelity view and seed (operators, population size, scheme).
    ///
    /// # Errors
    /// Rejects configs with no layers, zero-width layers, or a zero
    /// `promote_count`.
    pub fn new(
        problem: Arc<F>,
        config: HgaConfig,
        base_seed: u64,
        mut build_island: impl FnMut(LevelView<F>, u64) -> Ga<LevelView<F>, SerialEvaluator>,
    ) -> Result<Self, ConfigError> {
        if config.layer_widths.is_empty() {
            return Err(ConfigError::InvalidParameter {
                name: "layer_widths",
                message: "need at least one layer".into(),
            });
        }
        if config.layer_widths.contains(&0) {
            return Err(ConfigError::InvalidParameter {
                name: "layer_widths",
                message: "layers must be non-empty".into(),
            });
        }
        if config.promote_count == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "promote_count",
                message: "must be > 0".into(),
            });
        }
        let mut islands = Vec::new();
        let mut layer_of = Vec::new();
        let mut parent_of: Vec<Option<usize>> = Vec::new();
        let mut layer_start = Vec::new();
        let max_level = problem.levels() - 1;
        let mut seed = base_seed;
        for (layer, &width) in config.layer_widths.iter().enumerate() {
            layer_start.push(islands.len());
            let level = layer.min(max_level);
            for j in 0..width {
                let view = LevelView::new(Arc::clone(&problem), level);
                islands.push(build_island(view, seed));
                seed = seed.wrapping_add(1);
                layer_of.push(layer);
                parent_of.push(if layer == 0 {
                    None
                } else {
                    // Children map onto parents round-robin by position.
                    let pw = config.layer_widths[layer - 1];
                    Some(layer_start[layer - 1] + j % pw)
                });
            }
        }
        let charged = islands.iter().map(Ga::evaluations).collect::<Vec<_>>();
        // Charge initial populations.
        let mut cost_units = 0.0;
        for (i, isl) in islands.iter().enumerate() {
            cost_units += charged[i] as f64 * isl.problem().cost();
        }
        let mut hga = Self {
            problem,
            islands,
            layer_of,
            parent_of,
            config,
            cost_units,
            charged,
            epochs: 0,
            stagnant_epochs: 0,
            best_seen: None,
            trajectory: Vec::new(),
        };
        hga.trajectory.push(CostPoint {
            cost_units: hga.cost_units,
            best_precise: hga.best_precise().fitness(),
        });
        Ok(hga)
    }

    /// Cost units spent so far.
    #[must_use]
    pub fn cost_units(&self) -> f64 {
        self.cost_units
    }

    /// Island count across all layers.
    #[must_use]
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Best individual among the precise (layer-0) islands.
    #[must_use]
    pub fn best_precise(&self) -> Individual<F::Genome> {
        let objective = self.problem.objective();
        let mut best: Option<&Individual<F::Genome>> = None;
        for (i, isl) in self.islands.iter().enumerate() {
            if self.layer_of[i] != 0 {
                continue;
            }
            let cand = isl.best_ever();
            if best.is_none() || objective.better(cand.fitness(), best.expect("set").fitness()) {
                best = Some(cand);
            }
        }
        best.expect("layer 0 is non-empty").clone()
    }

    fn charge_new_evals(&mut self) {
        for i in 0..self.islands.len() {
            let now = self.islands[i].evaluations();
            let fresh = now - self.charged[i];
            if fresh > 0 {
                self.cost_units += fresh as f64 * self.islands[i].problem().cost();
                self.charged[i] = now;
            }
        }
    }

    /// One epoch: evolve every island, then migrate up (re-evaluating at the
    /// parent's fidelity) and down.
    pub fn epoch(&mut self) {
        for isl in &mut self.islands {
            for _ in 0..self.config.epoch_generations {
                isl.step();
            }
        }
        self.charge_new_evals();

        let objective = self.problem.objective();
        let promote = self.config.promote_count;

        // Collect upward and downward transfers first (genomes only),
        // then apply — transfers within one epoch see pre-migration state.
        let mut transfers: Vec<(usize, Vec<F::Genome>)> = Vec::new();
        for i in 0..self.islands.len() {
            if let Some(parent) = self.parent_of[i] {
                // Up: the child's best genomes.
                let top = self.islands[i]
                    .population()
                    .top_k_indices(objective, promote);
                let genomes = top
                    .into_iter()
                    .map(|k| self.islands[i].population()[k].genome.clone())
                    .collect();
                transfers.push((parent, genomes));
                // Down: random parent members to keep the child exploring.
                let mut rng = self.islands[parent].rng_mut().clone();
                let picks = rng.sample_distinct(self.islands[parent].population().len(), promote);
                *self.islands[parent].rng_mut() = rng;
                let genomes_down = picks
                    .into_iter()
                    .map(|k| self.islands[parent].population()[k].genome.clone())
                    .collect();
                transfers.push((i, genomes_down));
            }
        }

        for (dst, genomes) in transfers {
            let view = Arc::clone(self.islands[dst].problem());
            let immigrants: Vec<Individual<F::Genome>> = genomes
                .into_iter()
                .map(|g| {
                    // Re-evaluate at the destination fidelity: fitness is
                    // level-dependent and must not leak across layers.
                    let fitness = view.evaluate(&g);
                    self.cost_units += view.cost();
                    Individual::evaluated(g, fitness)
                })
                .collect();
            self.islands[dst].receive_immigrants(immigrants, ReplacementPolicy::WorstIfBetter);
        }
    }

    /// Epochs completed.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Per-epoch cost/quality trajectory recorded so far (starts with the
    /// post-initialization point).
    #[must_use]
    pub fn trajectory(&self) -> &[CostPoint] {
        &self.trajectory
    }

    /// Total fitness evaluations spent across all islands (fidelity-blind;
    /// see [`Hga::cost_units`] for the cost-weighted figure).
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.islands.iter().map(Ga::evaluations).sum()
    }

    /// Runs under `termination` through the shared [`Driver`]. Cost budgets
    /// map to [`Termination::max_cost_units`]; generation budgets count
    /// epochs.
    ///
    /// # Errors
    /// [`ConfigError::UnboundedTermination`] when `termination` has no
    /// criteria.
    pub fn run(
        &mut self,
        termination: &Termination,
    ) -> Result<RunOutcome<Individual<F::Genome>>, ConfigError> {
        Driver::new(termination.clone()).run(self)
    }
}

impl<F: FidelityProblem> Engine for Hga<F> {
    type Best = Individual<F::Genome>;

    fn engine_id(&self) -> &'static str {
        "hga"
    }

    fn step(&mut self) -> StepReport {
        self.epoch();
        self.epochs += 1;
        let best = self.best_precise();
        let objective = self.problem.objective();
        match self.best_seen {
            Some(seen) if !objective.better(best.fitness(), seen) => self.stagnant_epochs += 1,
            _ => {
                self.best_seen = Some(best.fitness());
                self.stagnant_epochs = 0;
            }
        }
        self.trajectory.push(CostPoint {
            cost_units: self.cost_units,
            best_precise: best.fitness(),
        });
        // Mean over the precise (layer-0) populations: the quality figure
        // the hierarchy is accountable for.
        let (mut sum, mut n) = (0.0, 0usize);
        for (i, isl) in self.islands.iter().enumerate() {
            if self.layer_of[i] != 0 {
                continue;
            }
            for member in isl.population().members() {
                sum += member.fitness();
                n += 1;
            }
        }
        StepReport {
            generation: self.epochs,
            evaluations: self.evaluations(),
            best: best.fitness(),
            mean: if n == 0 {
                best.fitness()
            } else {
                sum / n as f64
            },
            best_ever: best.fitness(),
        }
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        let best = self.best_precise();
        Progress {
            generations: self.epochs,
            evaluations: self.evaluations(),
            best_fitness: best.fitness(),
            best_is_optimal: self.problem.is_optimal(best.fitness()),
            stagnant_generations: self.stagnant_epochs,
            elapsed,
            maximizing: self.problem.objective() == Objective::Maximize,
            cost_units: self.cost_units,
        }
    }

    fn best(&self) -> Individual<F::Genome> {
        self.best_precise()
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapshotWriter::new();
        w.put_f64(self.cost_units);
        w.put_u64(self.epochs);
        w.put_u64(self.stagnant_epochs);
        w.put_opt_f64(self.best_seen);
        w.put_usize(self.charged.len());
        for &c in &self.charged {
            w.put_u64(c);
        }
        w.put_usize(self.trajectory.len());
        for p in &self.trajectory {
            w.put_f64(p.cost_units);
            w.put_f64(p.best_precise);
        }
        w.put_usize(self.islands.len());
        for isl in &self.islands {
            let nested = Engine::snapshot(isl);
            w.put_str(nested.engine());
            w.put_bytes(nested.payload());
        }
        Snapshot::new(self.engine_id(), w.into_bytes())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = snapshot.reader_for(self.engine_id())?;
        let cost_units = r.take_f64()?;
        let epochs = r.take_u64()?;
        let stagnant_epochs = r.take_u64()?;
        let best_seen = r.take_opt_f64()?;
        let n_charged = r.take_usize()?;
        if n_charged != self.charged.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot has {n_charged} islands, hierarchy has {}",
                self.charged.len()
            )));
        }
        let mut charged = Vec::with_capacity(n_charged);
        for _ in 0..n_charged {
            charged.push(r.take_u64()?);
        }
        let n_points = r.take_usize()?;
        let mut trajectory = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            let cost_units = r.take_f64()?;
            let best_precise = r.take_f64()?;
            trajectory.push(CostPoint {
                cost_units,
                best_precise,
            });
        }
        let n_islands = r.take_usize()?;
        if n_islands != self.islands.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot has {n_islands} islands, hierarchy has {}",
                self.islands.len()
            )));
        }
        let mut nested = Vec::with_capacity(n_islands);
        for _ in 0..n_islands {
            let engine = r.take_str()?;
            let payload = r.take_bytes()?.to_vec();
            nested.push(Snapshot::new(engine, payload));
        }
        r.finish()?;
        for (isl, snap) in self.islands.iter_mut().zip(&nested) {
            Engine::restore(isl, snap)?;
        }
        self.cost_units = cost_units;
        self.epochs = epochs;
        self.stagnant_epochs = stagnant_epochs;
        self.best_seen = best_seen;
        self.charged = charged;
        self.trajectory = trajectory;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::BlurredFidelity;
    use pga_core::ops::{BlxAlpha, GaussianMutation, Tournament};
    use pga_core::{Bounds, Objective, Problem, RealVector, Rng64, Scheme, Termination};

    struct Sphere(Bounds);
    impl Problem for Sphere {
        type Genome = RealVector;
        fn name(&self) -> String {
            "sphere".into()
        }
        fn objective(&self) -> Objective {
            Objective::Minimize
        }
        fn evaluate(&self, g: &RealVector) -> f64 {
            g.values().iter().map(|x| x * x).sum()
        }
        fn random_genome(&self, rng: &mut Rng64) -> RealVector {
            self.0.sample(rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(0.0)
        }
        fn optimum_epsilon(&self) -> f64 {
            1e-2
        }
    }

    fn build(
        view: LevelView<BlurredFidelity<Sphere>>,
        seed: u64,
    ) -> Ga<LevelView<BlurredFidelity<Sphere>>, SerialEvaluator> {
        let bounds = Bounds::uniform(-5.0, 5.0, 6);
        pga_core::GaBuilder::new(view)
            .seed(seed)
            .pop_size(24)
            .selection(Tournament::binary())
            .crossover(BlxAlpha::new(bounds.clone()))
            .mutation(GaussianMutation {
                p: 0.2,
                sigma: 0.3,
                bounds,
            })
            .scheme(Scheme::Generational { elitism: 1 })
            .build()
            .unwrap()
    }

    fn hga(amplitude: f64, cost_ratio: f64, seed: u64) -> Hga<BlurredFidelity<Sphere>> {
        let problem = Arc::new(BlurredFidelity::new(
            Sphere(Bounds::uniform(-5.0, 5.0, 6)),
            3,
            amplitude,
            cost_ratio,
        ));
        Hga::new(problem, HgaConfig::default(), seed, build).unwrap()
    }

    fn budget(max_cost_units: f64) -> Termination {
        Termination::new()
            .until_optimum()
            .max_cost_units(max_cost_units)
    }

    #[test]
    fn hierarchy_shape() {
        let h = hga(0.3, 4.0, 1);
        assert_eq!(h.island_count(), 7);
        assert_eq!(h.layer_of, vec![0, 1, 1, 2, 2, 2, 2]);
        assert_eq!(h.parent_of[0], None);
        assert_eq!(h.parent_of[1], Some(0));
        assert_eq!(h.parent_of[2], Some(0));
        assert_eq!(h.parent_of[3], Some(1));
        assert_eq!(h.parent_of[4], Some(2));
    }

    #[test]
    fn initial_cost_accounts_fidelity() {
        // 24 individuals/island; 1 island at cost 1, 2 at 1/4, 4 at 1/16.
        let h = hga(0.3, 4.0, 2);
        let expected = 24.0 * (1.0 + 2.0 * 0.25 + 4.0 * 0.0625);
        assert!(
            (h.cost_units() - expected).abs() < 1e-9,
            "{}",
            h.cost_units()
        );
    }

    #[test]
    fn hga_improves_precise_best() {
        let mut h = hga(0.3, 4.0, 3);
        let outcome = h.run(&budget(4_000.0)).unwrap();
        assert!(
            outcome.best_fitness < 0.5,
            "best = {}",
            outcome.best_fitness
        );
        assert!(h.epochs() > 0);
        // Trajectory is monotone in cost and non-worsening in quality.
        for w in h.trajectory().windows(2) {
            assert!(w[1].cost_units >= w[0].cost_units);
            assert!(w[1].best_precise <= w[0].best_precise + 1e-12);
        }
    }

    #[test]
    fn cheap_layers_make_progress_cheaper() {
        // Same architecture; the all-precise variant pays cost 1 per
        // evaluation everywhere (cost_ratio = 1).
        let rule = budget(2_500.0);
        let multi = hga(0.3, 4.0, 10).run(&rule).unwrap();
        let precise_only = hga(0.0, 1.0, 10).run(&rule).unwrap();
        // Both should improve, but the multi-fidelity run gets far more
        // evolution per cost unit and should be at least as good.
        assert!(
            multi.best_fitness <= precise_only.best_fitness + 0.1,
            "multi {} vs precise {}",
            multi.best_fitness,
            precise_only.best_fitness
        );
    }

    #[test]
    fn deterministic() {
        let mut ha = hga(0.3, 4.0, 5);
        let mut hb = hga(0.3, 4.0, 5);
        let a = ha.run(&budget(1_000.0)).unwrap();
        let b = hb.run(&budget(1_000.0)).unwrap();
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(ha.cost_units(), hb.cost_units());
        assert_eq!(ha.epochs(), hb.epochs());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let problem = Arc::new(BlurredFidelity::new(
            Sphere(Bounds::uniform(-5.0, 5.0, 6)),
            3,
            0.3,
            4.0,
        ));
        let bad = HgaConfig {
            layer_widths: vec![],
            ..HgaConfig::default()
        };
        assert!(matches!(
            Hga::new(problem, bad, 1, build),
            Err(pga_core::ConfigError::InvalidParameter {
                name: "layer_widths",
                ..
            })
        ));
    }
}
