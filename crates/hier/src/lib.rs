//! # pga-hierarchical
//!
//! The Hierarchical Genetic Algorithm of Sefrioui & Périaux (PPSN 2000):
//! a multi-layered tree of islands where each layer evaluates a *model of
//! different fidelity*. The bottom layers explore cheaply on coarse models;
//! promising individuals migrate up, being re-evaluated at higher fidelity,
//! until the precise (expensive) top layer refines them. The surveyed claim
//! (reproduced as experiment E08) is that a 3-layer hierarchy matches the
//! all-precise quality roughly 3× cheaper.
//!
//! The paper's CFD nozzle models are replaced by analytic multi-fidelity
//! surfaces ([`FidelityProblem`] + [`BlurredFidelity`]) per DESIGN.md §1 —
//! the optimizer sees exactly what it saw in the paper: a hierarchy of
//! models that agree near optima and disagree in detail, with a steep cost
//! gradient.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod fidelity;
pub mod hga;

pub use fidelity::{BlurredFidelity, FidelityProblem, LevelView};
pub use hga::{CostPoint, Hga, HgaBuilder, HgaConfig, IslandFactory};
