//! Multi-fidelity problem abstraction.

use pga_core::rng::splitmix64;
use pga_core::{Objective, Problem, RealVector, Rng64};
use std::sync::Arc;

/// A problem evaluable at several fidelity levels.
///
/// Level 0 is the *precise* model (the real objective); higher levels are
/// cheaper approximations. Costs are relative to one level-0 evaluation.
pub trait FidelityProblem: Problem {
    /// Number of fidelity levels (≥ 1).
    fn levels(&self) -> usize;

    /// Evaluates at a given level; level 0 must equal
    /// [`Problem::evaluate`].
    fn evaluate_at(&self, genome: &Self::Genome, level: usize) -> f64;

    /// Relative cost of one evaluation at `level` (level 0 costs 1.0).
    fn cost(&self, level: usize) -> f64;
}

/// Wraps a real-vector problem with deterministic "blur" per level.
///
/// Level `l > 0` adds a smooth pseudo-random perturbation with amplitude
/// `amplitude · l` (a deterministic function of the genome, so the
/// approximate models are consistent landscapes, not noise), and costs
/// `cost_ratio^-l`. This mimics coarse-mesh solvers: cheaper, same broad
/// shape, wrong in detail.
pub struct BlurredFidelity<P> {
    inner: P,
    levels: usize,
    amplitude: f64,
    cost_ratio: f64,
}

impl<P: Problem<Genome = RealVector>> BlurredFidelity<P> {
    /// `levels` fidelity levels over `inner`, with per-level blur
    /// `amplitude` and per-level cost reduction `cost_ratio` (e.g. 4.0 ⇒
    /// level 1 costs 1/4, level 2 costs 1/16).
    #[must_use]
    pub fn new(inner: P, levels: usize, amplitude: f64, cost_ratio: f64) -> Self {
        assert!(levels >= 1, "need at least one level");
        assert!(cost_ratio >= 1.0, "cost ratio must be >= 1");
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        Self {
            inner,
            levels,
            amplitude,
            cost_ratio,
        }
    }

    /// Deterministic smooth perturbation for a genome at a level.
    fn blur(&self, genome: &RealVector, level: usize) -> f64 {
        if level == 0 || self.amplitude == 0.0 {
            return 0.0;
        }
        // Hash the coarse-grid cell of the genome so nearby points share
        // their perturbation (smoothness) while distant points differ.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (level as u64).wrapping_mul(0x100_0000_01b3);
        for &x in genome.values() {
            let cell = (x * 4.0).floor() as i64 as u64;
            let mut s = h ^ cell;
            h = splitmix64(&mut s);
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        self.amplitude * level as f64 * (2.0 * unit - 1.0)
    }
}

impl<P: Problem<Genome = RealVector>> Problem for BlurredFidelity<P> {
    type Genome = RealVector;

    fn name(&self) -> String {
        format!("{}@{}levels", self.inner.name(), self.levels)
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn evaluate(&self, genome: &RealVector) -> f64 {
        self.inner.evaluate(genome)
    }

    fn random_genome(&self, rng: &mut Rng64) -> RealVector {
        self.inner.random_genome(rng)
    }

    fn optimum(&self) -> Option<f64> {
        self.inner.optimum()
    }

    fn optimum_epsilon(&self) -> f64 {
        self.inner.optimum_epsilon()
    }
}

impl<P: Problem<Genome = RealVector>> FidelityProblem for BlurredFidelity<P> {
    fn levels(&self) -> usize {
        self.levels
    }

    fn evaluate_at(&self, genome: &RealVector, level: usize) -> f64 {
        assert!(level < self.levels, "level {level} out of range");
        self.inner.evaluate(genome) + self.blur(genome, level)
    }

    fn cost(&self, level: usize) -> f64 {
        assert!(level < self.levels, "level {level} out of range");
        self.cost_ratio.powi(-(level as i32))
    }
}

/// Adapter presenting one fidelity level of a shared [`FidelityProblem`]
/// as an ordinary [`Problem`], so any engine can run on it unchanged.
pub struct LevelView<F> {
    problem: Arc<F>,
    level: usize,
}

impl<F: FidelityProblem> LevelView<F> {
    /// A view of `problem` at `level`.
    #[must_use]
    pub fn new(problem: Arc<F>, level: usize) -> Self {
        assert!(level < problem.levels(), "level out of range");
        Self { problem, level }
    }

    /// The viewed level.
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Relative cost of one evaluation through this view.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.problem.cost(self.level)
    }

    /// The underlying shared problem.
    #[must_use]
    pub fn shared(&self) -> &Arc<F> {
        &self.problem
    }
}

impl<F: FidelityProblem> Problem for LevelView<F> {
    type Genome = F::Genome;

    fn name(&self) -> String {
        format!("{}#L{}", self.problem.name(), self.level)
    }

    fn objective(&self) -> Objective {
        self.problem.objective()
    }

    fn evaluate(&self, genome: &Self::Genome) -> f64 {
        self.problem.evaluate_at(genome, self.level)
    }

    fn random_genome(&self, rng: &mut Rng64) -> Self::Genome {
        self.problem.random_genome(rng)
    }

    fn optimum(&self) -> Option<f64> {
        // Only the precise level can claim the true optimum.
        if self.level == 0 {
            self.problem.optimum()
        } else {
            None
        }
    }

    fn optimum_epsilon(&self) -> f64 {
        self.problem.optimum_epsilon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::Bounds;

    struct Sphere(Bounds);
    impl Problem for Sphere {
        type Genome = RealVector;
        fn name(&self) -> String {
            "sphere".into()
        }
        fn objective(&self) -> Objective {
            Objective::Minimize
        }
        fn evaluate(&self, g: &RealVector) -> f64 {
            g.values().iter().map(|x| x * x).sum()
        }
        fn random_genome(&self, rng: &mut Rng64) -> RealVector {
            self.0.sample(rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(0.0)
        }
        fn optimum_epsilon(&self) -> f64 {
            1e-2
        }
    }

    fn blurred() -> BlurredFidelity<Sphere> {
        BlurredFidelity::new(Sphere(Bounds::uniform(-5.0, 5.0, 4)), 3, 0.5, 4.0)
    }

    #[test]
    fn level_zero_is_exact() {
        let p = blurred();
        let g = RealVector::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.evaluate_at(&g, 0), 5.0);
        assert_eq!(p.evaluate(&g), 5.0);
    }

    #[test]
    fn higher_levels_are_blurred_but_bounded() {
        let p = blurred();
        let g = RealVector::new(vec![1.0, 2.0, 0.0, 0.0]);
        let exact = p.evaluate_at(&g, 0);
        for level in 1..3 {
            let approx = p.evaluate_at(&g, level);
            let err = (approx - exact).abs();
            assert!(err <= 0.5 * level as f64 + 1e-12, "level {level} err {err}");
        }
    }

    #[test]
    fn blur_is_deterministic_and_locally_smooth() {
        let p = blurred();
        let a = RealVector::new(vec![1.0, 1.0, 1.0, 1.0]);
        let b = RealVector::new(vec![1.01, 1.0, 1.0, 1.0]); // same coarse cell
        let fa = p.evaluate_at(&a, 2) - p.evaluate_at(&a, 0);
        let fb = p.evaluate_at(&b, 2) - p.evaluate_at(&b, 0);
        assert_eq!(fa, fb, "same cell must share the perturbation");
        assert_eq!(p.evaluate_at(&a, 2), p.evaluate_at(&a, 2));
    }

    #[test]
    fn costs_fall_geometrically() {
        let p = blurred();
        assert_eq!(p.cost(0), 1.0);
        assert!((p.cost(1) - 0.25).abs() < 1e-12);
        assert!((p.cost(2) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn level_view_delegates() {
        let p = Arc::new(blurred());
        let v0 = LevelView::new(Arc::clone(&p), 0);
        let v2 = LevelView::new(Arc::clone(&p), 2);
        let g = RealVector::new(vec![0.5; 4]);
        assert_eq!(v0.evaluate(&g), p.evaluate_at(&g, 0));
        assert_eq!(v2.evaluate(&g), p.evaluate_at(&g, 2));
        assert_eq!(v0.optimum(), Some(0.0));
        assert_eq!(v2.optimum(), None);
        assert!((v2.cost() - 0.0625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_level_panics() {
        let p = Arc::new(blurred());
        let _ = LevelView::new(p, 3);
    }
}
