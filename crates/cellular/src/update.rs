//! Cell-update policies (Giacobini, Alba & Tomassini 2003).

use pga_core::Rng64;

/// In what order the cells of the grid are updated each generation.
///
/// One "generation" always performs `n` cell updates (for a grid of `n`
/// cells), so policies are comparable in evaluation budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdatePolicy {
    /// All cells update simultaneously from the previous generation's grid
    /// (double buffered). The weakest selection pressure.
    Synchronous,
    /// Asynchronous: cells update in place in fixed row-major order.
    LineSweep,
    /// Asynchronous: one random permutation is drawn at construction and
    /// reused every generation.
    FixedRandomSweep,
    /// Asynchronous: a fresh random permutation every generation.
    NewRandomSweep,
    /// Asynchronous: `n` cells drawn uniformly *with replacement* per
    /// generation (some cells update several times, some not at all).
    /// The weakest of the asynchronous policies — closest to synchronous.
    UniformChoice,
}

impl UpdatePolicy {
    /// All five policies, in the canonical order used by the E05 tables
    /// (synchronous first, then the four asynchronous policies).
    pub const ALL: [UpdatePolicy; 5] = [
        UpdatePolicy::Synchronous,
        UpdatePolicy::LineSweep,
        UpdatePolicy::FixedRandomSweep,
        UpdatePolicy::NewRandomSweep,
        UpdatePolicy::UniformChoice,
    ];

    /// Name used in harness tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Synchronous => "synchronous",
            Self::LineSweep => "line-sweep",
            Self::FixedRandomSweep => "fixed-random-sweep",
            Self::NewRandomSweep => "new-random-sweep",
            Self::UniformChoice => "uniform-choice",
        }
    }

    /// `true` for in-place (asynchronous) policies.
    #[must_use]
    pub fn is_asynchronous(self) -> bool {
        self != Self::Synchronous
    }

    /// The sequence of cell indices to update this generation.
    ///
    /// `fixed_sweep` must be the permutation drawn at construction (used by
    /// [`UpdatePolicy::FixedRandomSweep`]); `n` is the cell count.
    #[must_use]
    pub fn order(self, n: usize, fixed_sweep: &[usize], rng: &mut Rng64) -> Vec<usize> {
        let mut order = Vec::new();
        self.order_into(n, fixed_sweep, rng, &mut order);
        order
    }

    /// Like [`UpdatePolicy::order`], but fills `out` in place so the engine
    /// can reuse one buffer across generations. Draws the same RNG stream
    /// as `order`.
    pub fn order_into(
        self,
        n: usize,
        fixed_sweep: &[usize],
        rng: &mut Rng64,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match self {
            // Synchronous also visits every cell once; the engine handles
            // the double-buffering that makes it simultaneous.
            Self::Synchronous | Self::LineSweep => out.extend(0..n),
            Self::FixedRandomSweep => {
                assert_eq!(fixed_sweep.len(), n, "fixed sweep length mismatch");
                out.extend_from_slice(fixed_sweep);
            }
            Self::NewRandomSweep => {
                out.extend(0..n);
                rng.shuffle(out);
            }
            Self::UniformChoice => out.extend((0..n).map(|_| rng.below(n))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(n: usize) -> Vec<usize> {
        (0..n).rev().collect()
    }

    #[test]
    fn orders_have_n_entries() {
        let mut rng = Rng64::new(1);
        for p in UpdatePolicy::ALL {
            let o = p.order(16, &fixed(16), &mut rng);
            assert_eq!(o.len(), 16, "{}", p.name());
            assert!(o.iter().all(|&i| i < 16));
        }
    }

    #[test]
    fn sweeps_are_permutations() {
        let mut rng = Rng64::new(2);
        for p in [
            UpdatePolicy::Synchronous,
            UpdatePolicy::LineSweep,
            UpdatePolicy::FixedRandomSweep,
            UpdatePolicy::NewRandomSweep,
        ] {
            let mut o = p.order(32, &fixed(32), &mut rng);
            o.sort_unstable();
            assert_eq!(o, (0..32).collect::<Vec<_>>(), "{}", p.name());
        }
    }

    #[test]
    fn fixed_sweep_is_stable_new_sweep_is_not() {
        let mut rng = Rng64::new(3);
        let f = fixed(64);
        let a = UpdatePolicy::FixedRandomSweep.order(64, &f, &mut rng);
        let b = UpdatePolicy::FixedRandomSweep.order(64, &f, &mut rng);
        assert_eq!(a, b);
        let c = UpdatePolicy::NewRandomSweep.order(64, &f, &mut rng);
        let d = UpdatePolicy::NewRandomSweep.order(64, &f, &mut rng);
        assert_ne!(c, d);
    }

    #[test]
    fn uniform_choice_has_repeats_with_high_probability() {
        let mut rng = Rng64::new(4);
        let o = UpdatePolicy::UniformChoice.order(64, &fixed(64), &mut rng);
        let mut dedup = o.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() < 64, "birthday paradox should produce repeats");
    }
}
