//! # pga-cellular
//!
//! The **fine-grained** (cellular, diffusion, massively parallel) PGA model:
//! one individual per cell of a toroidal 2-D grid, interacting only with a
//! small neighborhood (Manderick & Spiessens 1989; Baluja 1993; Pelikan's
//! Charm++ implementation). Good genes spread by *diffusion* through
//! overlapping neighborhoods instead of by migration.
//!
//! The update order of cells is a first-class parameter: this crate
//! implements synchronous (double-buffered) updating plus the four
//! asynchronous policies whose selection pressure Giacobini, Alba &
//! Tomassini (GECCO 2003) analyzed — line sweep, fixed random sweep, new
//! random sweep, uniform choice — reproduced as experiment E05.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod deme_impl;
pub mod engine;
pub mod takeover;
pub mod update;

pub use engine::{CellularGa, CellularGaBuilder};
pub use takeover::TakeoverGrid;
pub use update::UpdatePolicy;
