//! Cellular grids as islands: the survey's **hybrid** model.
//!
//! Implementing `pga-island`'s [`Deme`] trait for [`CellularGa`] lets an
//! archipelago host fine-grained islands — a ring of cellular GAs, or a
//! mixed ring of panmictic and cellular demes (Alba & Troya 2002's
//! distributed study runs generational, steady-state and cellular islands
//! under one migration policy). Immigrants land on random grid cells
//! (`Random`/`RandomIfBetter`) or on the worst cell (`Worst`/
//! `WorstIfBetter`); emigrants leave from the best cells, random cells, or
//! tournament winners, exactly mirroring the panmictic semantics.

use crate::engine::CellularGa;
use pga_core::ops::ReplacementPolicy;
use pga_core::{Engine, Individual, Objective, Problem, Snapshot, SnapshotError, StepReport};
use pga_island::{Deme, EmigrantSelection};

impl<P: Problem> Deme for CellularGa<P> {
    type Genome = P::Genome;

    fn step_deme(&mut self) -> StepReport {
        self.step()
    }

    fn objective(&self) -> Objective {
        self.problem().objective()
    }

    fn generation(&self) -> u64 {
        CellularGa::generation(self)
    }

    fn evaluations(&self) -> u64 {
        CellularGa::evaluations(self)
    }

    fn best_individual(&self) -> Individual<P::Genome> {
        self.best_ever().clone()
    }

    fn is_optimal(&self) -> bool {
        self.problem().is_optimal(self.best_ever().fitness())
    }

    fn emigrants(
        &mut self,
        selection: EmigrantSelection,
        count: usize,
    ) -> Vec<Individual<P::Genome>> {
        let objective = self.problem().objective();
        let n = self.len();
        let count = count.min(n);
        let mut rng = self.rng_mut().clone();
        let picks: Vec<usize> = match selection {
            EmigrantSelection::Best => {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| {
                    let fa = self.grid()[a].fitness();
                    let fb = self.grid()[b].fitness();
                    match objective {
                        Objective::Maximize => fb.total_cmp(&fa),
                        Objective::Minimize => fa.total_cmp(&fb),
                    }
                });
                idx.truncate(count);
                idx
            }
            EmigrantSelection::Random => rng.sample_distinct(n, count),
            EmigrantSelection::Tournament(k) => {
                let k = k.max(1);
                (0..count)
                    .map(|_| {
                        let mut best = rng.below(n);
                        for _ in 1..k {
                            let c = rng.below(n);
                            if objective
                                .better(self.grid()[c].fitness(), self.grid()[best].fitness())
                            {
                                best = c;
                            }
                        }
                        best
                    })
                    .collect()
            }
        };
        *self.rng_mut() = rng;
        picks.into_iter().map(|i| self.grid()[i].clone()).collect()
    }

    fn immigrate(
        &mut self,
        immigrants: Vec<Individual<P::Genome>>,
        policy: ReplacementPolicy,
    ) -> usize {
        let objective = self.problem().objective();
        let n = self.len();
        let mut accepted = 0usize;
        for im in immigrants {
            debug_assert!(im.is_evaluated(), "immigrants must carry fitness");
            self.note_best(&im);
            let mut rng = self.rng_mut().clone();
            let target = match policy {
                ReplacementPolicy::Worst | ReplacementPolicy::WorstIfBetter => (0..n)
                    .max_by(|&a, &b| {
                        let fa = self.grid()[a].fitness();
                        let fb = self.grid()[b].fitness();
                        // "max" by badness: worst under the objective.
                        match objective {
                            Objective::Maximize => fb.total_cmp(&fa),
                            Objective::Minimize => fa.total_cmp(&fb),
                        }
                    })
                    .expect("non-empty grid"),
                ReplacementPolicy::Random | ReplacementPolicy::RandomIfBetter => rng.below(n),
            };
            *self.rng_mut() = rng;
            let conditional = matches!(
                policy,
                ReplacementPolicy::WorstIfBetter | ReplacementPolicy::RandomIfBetter
            );
            if conditional && !objective.better(im.fitness(), self.grid()[target].fitness()) {
                continue;
            }
            self.grid_mut()[target] = im;
            accepted += 1;
        }
        accepted
    }

    fn record_event(&mut self, event: &pga_observe::Event) {
        CellularGa::record_event(self, event);
    }

    fn set_trace_island(&mut self, island: u32) {
        CellularGa::set_trace_island(self, island);
    }

    fn record_run_started(&mut self) {
        CellularGa::record_run_started(self);
    }

    fn record_run_finished(&mut self) {
        CellularGa::record_run_finished(self);
    }

    fn snapshot_deme(&self) -> Snapshot {
        Engine::snapshot(self)
    }

    fn restore_deme(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        Engine::restore(self, snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdatePolicy;
    use pga_core::ops::{BitFlip, OnePoint, ReplacementPolicy, Tournament};
    use pga_core::{BitString, GaBuilder, Rng64, Scheme, Termination};
    use pga_island::{Archipelago, MigrationPolicy};
    use pga_topology::Topology;
    use std::sync::Arc;

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    fn cell_island(seed: u64) -> CellularGa<Arc<OneMax>> {
        CellularGa::builder(Arc::new(OneMax(32)))
            .grid(6, 6)
            .seed(seed)
            .update_policy(UpdatePolicy::Synchronous)
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(32))
            .build()
            .unwrap()
    }

    #[test]
    fn cellular_deme_hooks_roundtrip() {
        let mut deme = cell_island(1);
        let out = deme.emigrants(EmigrantSelection::Best, 3);
        assert_eq!(out.len(), 3);
        // Best emigrants are sorted best-first.
        assert!(out[0].fitness() >= out[1].fitness());
        let perfect = Individual::evaluated(BitString::ones(32), 32.0);
        let accepted = deme.immigrate(vec![perfect], ReplacementPolicy::WorstIfBetter);
        assert_eq!(accepted, 1);
        assert_eq!(deme.best_individual().fitness(), 32.0);
        assert!(Deme::is_optimal(&deme));
    }

    #[test]
    fn ring_of_cellular_islands_solves_onemax() {
        let demes: Vec<CellularGa<Arc<OneMax>>> = (0..4).map(|i| cell_island(10 + i)).collect();
        let mut arch = Archipelago::new(
            demes,
            Topology::RingUni,
            MigrationPolicy {
                interval: 4,
                ..MigrationPolicy::default()
            },
        )
        .unwrap();
        let r = arch
            .run(&Termination::new().until_optimum().max_generations(200))
            .unwrap();
        assert!(r.hit_optimum, "best = {}", r.best.fitness());
    }

    #[test]
    fn mixed_panmictic_and_cellular_ring() {
        // The hybrid model proper: two cellular grids + two panmictic GAs
        // exchanging migrants in one ring.
        let problem = Arc::new(OneMax(32));
        let mut demes: Vec<Box<dyn Deme<Genome = BitString>>> = Vec::new();
        for i in 0..2 {
            demes.push(Box::new(cell_island(20 + i)));
            demes.push(Box::new(
                GaBuilder::new(Arc::clone(&problem))
                    .seed(30 + i)
                    .pop_size(36)
                    .selection(Tournament::binary())
                    .crossover(OnePoint)
                    .mutation(BitFlip::one_over_len(32))
                    .scheme(Scheme::Generational { elitism: 1 })
                    .build()
                    .unwrap(),
            ));
        }
        let mut arch =
            Archipelago::new(demes, Topology::RingBi, MigrationPolicy::default()).unwrap();
        let r = arch
            .run(&Termination::new().until_optimum().max_generations(250))
            .unwrap();
        assert!(r.hit_optimum, "best = {}", r.best.fitness());
        assert_eq!(r.per_island_best.len(), 4);
    }

    #[test]
    fn immigrate_worst_replaces_worst_cell() {
        let mut deme = cell_island(5);
        let worst_before = deme
            .grid()
            .iter()
            .map(Individual::fitness)
            .fold(f64::INFINITY, f64::min);
        let marker = Individual::evaluated(BitString::ones(32), 32.0);
        deme.immigrate(vec![marker], ReplacementPolicy::Worst);
        let worst_after = deme
            .grid()
            .iter()
            .map(Individual::fitness)
            .fold(f64::INFINITY, f64::min);
        assert!(worst_after >= worst_before);
        assert!(deme.grid().iter().any(|c| c.fitness() == 32.0));
    }
}
