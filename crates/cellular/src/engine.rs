//! The cellular GA engine.

use crate::update::UpdatePolicy;
use pga_core::ops::{Crossover, Mutation};
use pga_core::rng::splitmix64;
use pga_core::termination::{Progress, Termination};
use pga_core::{
    ConfigError, Driver, Engine, Genome, Individual, Objective, Problem, Rng64, RunOutcome,
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StepReport,
};
use pga_observe::{Event, EventKind, Recorder, Stopwatch};
use pga_topology::CellNeighborhood;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A fine-grained GA: one individual per toroidal-grid cell, local binary
/// tournament over the cell's neighborhood, offspring replacing the center
/// when at least as fit.
///
/// Synchronous updates run the whole grid in parallel on rayon using a
/// double buffer (each cell's RNG stream is derived from
/// `(seed, generation, cell)`, so the result is independent of rayon's
/// scheduling). Asynchronous policies update in place, sequentially, in the
/// policy's order.
pub struct CellularGa<P: Problem> {
    problem: Arc<P>,
    grid: Vec<Individual<P::Genome>>,
    rows: usize,
    cols: usize,
    neighborhood: CellNeighborhood,
    policy: UpdatePolicy,
    crossover: Box<dyn Crossover<P::Genome>>,
    mutation: Box<dyn Mutation<P::Genome>>,
    crossover_rate: f64,
    seed: u64,
    rng: Rng64,
    fixed_sweep: Vec<usize>,
    /// Reused across generations: the per-sweep cell-update order.
    order_buf: Vec<usize>,
    /// Reused across generations: the synchronous path's offspring batch
    /// (one allocation for the lifetime of the engine, not one per sweep).
    offspring_buf: Vec<Individual<P::Genome>>,
    generation: u64,
    evaluations: u64,
    best_ever: Individual<P::Genome>,
    stagnant_generations: u64,
    trace_island: u32,
    optimum_traced: bool,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem> CellularGa<P> {
    /// Starts configuring a cellular GA.
    #[must_use]
    pub fn builder(problem: P) -> CellularGaBuilder<P> {
        CellularGaBuilder::new(problem)
    }

    /// Grid cell count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// `true` when the grid has no cells (builder prevents this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Generations executed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Evaluations spent.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Best individual ever observed.
    #[must_use]
    pub fn best_ever(&self) -> &Individual<P::Genome> {
        &self.best_ever
    }

    /// The shared problem.
    #[must_use]
    pub fn problem(&self) -> &Arc<P> {
        &self.problem
    }

    /// Grid snapshot (row-major).
    #[must_use]
    pub fn grid(&self) -> &[Individual<P::Genome>] {
        &self.grid
    }

    /// Statistics of the current grid (without stepping).
    #[must_use]
    pub fn current_stats(&self) -> StepReport {
        self.stats()
    }

    pub(crate) fn rng_mut(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Attaches an observability recorder (replacing any existing one).
    /// Purely observational — the grid's RNG streams are untouched.
    pub fn set_recorder(&mut self, recorder: impl Recorder + 'static) {
        self.recorder = Some(Box::new(recorder));
    }

    /// Detaches and returns the recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// Island id stamped on this engine's events (0 unless a parallel
    /// driver assigns one).
    pub fn set_trace_island(&mut self, island: u32) {
        self.trace_island = island;
    }

    /// Routes a driver-side event through this engine's recorder.
    pub fn record_event(&mut self, event: &Event) {
        if let Some(r) = &mut self.recorder {
            r.record(event);
        }
    }

    fn emit(&mut self, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.record(&Event::new(kind));
        }
    }

    pub(crate) fn grid_mut(&mut self) -> &mut Vec<Individual<P::Genome>> {
        &mut self.grid
    }

    pub(crate) fn note_best(&mut self, candidate: &Individual<P::Genome>) {
        if self
            .problem
            .objective()
            .better(candidate.fitness(), self.best_ever.fitness())
        {
            self.best_ever = candidate.clone();
        }
    }

    fn stats(&self) -> StepReport {
        let objective = self.problem.objective();
        let mut best = self.grid[0].fitness();
        let mut sum = 0.0;
        for cell in &self.grid {
            let f = cell.fitness();
            if objective.better(f, best) {
                best = f;
            }
            sum += f;
        }
        StepReport {
            generation: self.generation,
            evaluations: self.evaluations,
            best,
            mean: sum / self.grid.len() as f64,
            best_ever: self.best_ever.fitness(),
        }
    }

    /// Deterministic per-cell stream: independent of scheduling.
    fn cell_rng(seed: u64, generation: u64, cell: usize) -> Rng64 {
        let mut s = seed ^ generation.rotate_left(32) ^ (cell as u64).wrapping_mul(0x9E37_79B9);
        Rng64::new(splitmix64(&mut s))
    }

    /// Produces the offspring for `idx` reading parents from `source`.
    #[allow(clippy::too_many_arguments)] // one call site; grouping into a struct would obscure it
    fn breed(
        problem: &P,
        source: &[Individual<P::Genome>],
        idx: usize,
        rows: usize,
        cols: usize,
        neighborhood: CellNeighborhood,
        crossover: &dyn Crossover<P::Genome>,
        mutation: &dyn Mutation<P::Genome>,
        crossover_rate: f64,
        rng: &mut Rng64,
    ) -> Individual<P::Genome> {
        let objective = problem.objective();
        let (r, c) = (idx / cols, idx % cols);
        // Stack-buffered neighborhood: breed runs once per cell per
        // generation, so a heap Vec here would dominate the sweep.
        let mut nb_buf = [0usize; 9];
        let nb = neighborhood.neighbors_into(r, c, rows, cols, &mut nb_buf);
        // Two independent binary tournaments over the neighborhood.
        let pick = |rng: &mut Rng64| {
            let a = *rng.choose(nb);
            let b = *rng.choose(nb);
            if objective.better(source[a].fitness(), source[b].fitness()) {
                a
            } else {
                b
            }
        };
        let pa = pick(rng);
        let pb = pick(rng);
        let (mut child, _) = if rng.chance(crossover_rate) {
            crossover.crossover(&source[pa].genome, &source[pb].genome, rng)
        } else {
            (source[pa].genome.clone(), source[pb].genome.clone())
        };
        mutation.mutate(&mut child, rng);
        let fitness = problem.evaluate(&child);
        Individual::evaluated(child, fitness)
    }

    /// One generation (`n` cell updates). Returns end-of-generation stats.
    pub fn step(&mut self) -> StepReport {
        let n = self.grid.len();
        let sw = Stopwatch::started_if(self.recorder.is_some());
        let objective = self.problem.objective();
        let best_before = self.best_ever.fitness();
        let order = {
            let mut rng = self.rng.clone();
            let mut o = std::mem::take(&mut self.order_buf);
            self.policy
                .order_into(n, &self.fixed_sweep, &mut rng, &mut o);
            self.rng = rng;
            o
        };

        if self.policy.is_asynchronous() {
            for (step_idx, &idx) in order.iter().enumerate() {
                let mut rng = Self::cell_rng(self.seed, self.generation, step_idx);
                let child = Self::breed(
                    &self.problem,
                    &self.grid,
                    idx,
                    self.rows,
                    self.cols,
                    self.neighborhood,
                    self.crossover.as_ref(),
                    self.mutation.as_ref(),
                    self.crossover_rate,
                    &mut rng,
                );
                self.evaluations += 1;
                if objective.better_or_equal(child.fitness(), self.grid[idx].fitness()) {
                    if objective.better(child.fitness(), self.best_ever.fitness()) {
                        self.best_ever = child.clone();
                    }
                    self.grid[idx] = child;
                }
            }
        } else {
            // Synchronous: breed all cells in parallel from the old grid,
            // on the persistent pool, into the reused offspring buffer.
            let mut offspring = std::mem::take(&mut self.offspring_buf);
            {
                let problem = &self.problem;
                let (rows, cols) = (self.rows, self.cols);
                let neighborhood = self.neighborhood;
                let crossover = self.crossover.as_ref();
                let mutation = self.mutation.as_ref();
                let rate = self.crossover_rate;
                let (seed, generation) = (self.seed, self.generation);
                let grid = &self.grid;
                (0..n)
                    .into_par_iter()
                    .map(|idx| {
                        let mut rng = Self::cell_rng(seed, generation, idx);
                        Self::breed(
                            problem,
                            grid,
                            idx,
                            rows,
                            cols,
                            neighborhood,
                            crossover,
                            mutation,
                            rate,
                            &mut rng,
                        )
                    })
                    .collect_into_vec(&mut offspring);
            }
            self.evaluations += n as u64;
            for (idx, child) in offspring.drain(..).enumerate() {
                if objective.better_or_equal(child.fitness(), self.grid[idx].fitness()) {
                    if objective.better(child.fitness(), self.best_ever.fitness()) {
                        self.best_ever = child.clone();
                    }
                    self.grid[idx] = child;
                }
            }
            self.offspring_buf = offspring;
        }
        self.order_buf = order;

        self.generation += 1;
        if objective.better(self.best_ever.fitness(), best_before) {
            self.stagnant_generations = 0;
        } else {
            self.stagnant_generations += 1;
        }
        let stats = self.stats();
        if self.recorder.is_some() {
            if let Some(micros) = sw.elapsed_micros() {
                self.emit(EventKind::EvaluationBatch {
                    island: self.trace_island,
                    batch: stats.generation,
                    size: n as u64,
                    fresh: n as u64,
                    micros,
                });
            }
            self.emit(EventKind::GenerationCompleted {
                island: self.trace_island,
                generation: stats.generation,
                evaluations: stats.evaluations,
                best: stats.best,
                mean: stats.mean,
                best_ever: stats.best_ever,
            });
        }
        // Tracked unconditionally so snapshot bytes do not depend on
        // whether a recorder is attached; `emit` no-ops without one.
        if !self.optimum_traced && self.problem.is_optimal(stats.best_ever) {
            self.optimum_traced = true;
            self.emit(EventKind::CheckpointHit {
                island: self.trace_island,
                generation: stats.generation,
                best: stats.best_ever,
            });
        }
        stats
    }

    /// Emits `RunStarted` for an externally driven run (e.g. a cellular
    /// deme stepped by an island driver).
    pub fn record_run_started(&mut self) {
        if self.recorder.is_some() {
            let engine = format!("cellular-{}", self.policy.name());
            let problem = self.problem.name();
            let seed = self.seed;
            self.emit(EventKind::RunStarted {
                island: self.trace_island,
                engine,
                problem,
                seed,
            });
        }
    }

    /// Emits `RunFinished` and flushes the recorder; counterpart of
    /// [`CellularGa::record_run_started`].
    pub fn record_run_finished(&mut self) {
        if self.recorder.is_some() {
            let hit_optimum = self.problem.is_optimal(self.best_ever.fitness());
            self.emit(EventKind::RunFinished {
                island: self.trace_island,
                generations: self.generation,
                evaluations: self.evaluations,
                best: self.best_ever.fitness(),
                hit_optimum,
            });
            if let Some(r) = &mut self.recorder {
                r.flush();
            }
        }
    }

    /// Runs until the shared termination rule fires (via the generic
    /// [`Driver`]), collecting per-generation history. Returns an error if
    /// the rule is unbounded.
    pub fn run(
        &mut self,
        termination: &Termination,
    ) -> Result<RunOutcome<Individual<P::Genome>>, ConfigError> {
        Driver::new(termination.clone())
            .keep_history(true)
            .run(self)
    }
}

/// The fine-grained cellular model as a uniformly driven [`Engine`]: one
/// `step` is one sweep over the whole grid.
impl<P: Problem> Engine for CellularGa<P> {
    type Best = Individual<P::Genome>;

    fn engine_id(&self) -> &'static str {
        "cellular"
    }

    fn step(&mut self) -> StepReport {
        CellularGa::step(self)
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        Progress {
            generations: self.generation,
            evaluations: self.evaluations,
            best_fitness: self.best_ever.fitness(),
            best_is_optimal: self.problem.is_optimal(self.best_ever.fitness()),
            stagnant_generations: self.stagnant_generations,
            elapsed,
            maximizing: self.problem.objective() == Objective::Maximize,
            cost_units: self.evaluations as f64,
        }
    }

    fn best(&self) -> Self::Best {
        self.best_ever.clone()
    }

    fn record_run_started(&mut self) {
        CellularGa::record_run_started(self);
    }

    fn record_run_finished(&mut self) {
        CellularGa::record_run_finished(self);
    }

    /// Captures the grid, RNG stream, and counters. The fixed sweep order
    /// and scratch buffers are derived from the configuration, so they are
    /// not part of the snapshot.
    fn snapshot(&self) -> Snapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.generation);
        w.put_u64(self.evaluations);
        w.put_u64(self.stagnant_generations);
        w.put_bool(self.optimum_traced);
        let (s, spare) = self.rng.snapshot_state();
        for word in s {
            w.put_u64(word);
        }
        w.put_opt_f64(spare);
        self.best_ever.genome.encode(&mut w);
        w.put_opt_f64(self.best_ever.fitness);
        w.put_usize(self.grid.len());
        for cell in &self.grid {
            cell.genome.encode(&mut w);
            w.put_opt_f64(cell.fitness);
        }
        Snapshot::new("cellular", w.into_bytes())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = snapshot.reader_for("cellular")?;
        let generation = r.take_u64()?;
        let evaluations = r.take_u64()?;
        let stagnant_generations = r.take_u64()?;
        let optimum_traced = r.take_bool()?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.take_u64()?;
        }
        let spare = r.take_opt_f64()?;
        let take_individual =
            |r: &mut SnapshotReader<'_>| -> Result<Individual<P::Genome>, SnapshotError> {
                let genome = P::Genome::decode(r)?;
                let fitness = r.take_opt_f64()?;
                Ok(Individual { genome, fitness })
            };
        let best_ever = take_individual(&mut r)?;
        let len = r.take_usize()?;
        if len != self.grid.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot grid has {len} cells, engine has {}",
                self.grid.len()
            )));
        }
        let mut grid = Vec::with_capacity(len);
        for _ in 0..len {
            grid.push(take_individual(&mut r)?);
        }
        r.finish()?;
        self.generation = generation;
        self.evaluations = evaluations;
        self.stagnant_generations = stagnant_generations;
        self.optimum_traced = optimum_traced;
        self.rng = Rng64::from_snapshot_state(s, spare);
        self.best_ever = best_ever;
        self.grid = grid;
        Ok(())
    }
}

/// Builder for [`CellularGa`].
pub struct CellularGaBuilder<P: Problem> {
    problem: Arc<P>,
    rows: usize,
    cols: usize,
    neighborhood: CellNeighborhood,
    policy: UpdatePolicy,
    crossover: Option<Box<dyn Crossover<P::Genome>>>,
    mutation: Option<Box<dyn Mutation<P::Genome>>>,
    crossover_rate: f64,
    seed: u64,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem> CellularGaBuilder<P> {
    /// Defaults: 16×16 torus, Von Neumann neighborhood, synchronous update,
    /// crossover rate 0.9, seed 0.
    #[must_use]
    pub fn new(problem: P) -> Self {
        Self {
            problem: Arc::new(problem),
            rows: 16,
            cols: 16,
            neighborhood: CellNeighborhood::VonNeumann,
            policy: UpdatePolicy::Synchronous,
            crossover: None,
            mutation: None,
            crossover_rate: 0.9,
            seed: 0,
            recorder: None,
        }
    }

    /// Grid dimensions.
    #[must_use]
    pub fn grid(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Neighborhood shape.
    #[must_use]
    pub fn neighborhood(mut self, nb: CellNeighborhood) -> Self {
        self.neighborhood = nb;
        self
    }

    /// Update policy.
    #[must_use]
    pub fn update_policy(mut self, policy: UpdatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Crossover operator.
    #[must_use]
    pub fn crossover(mut self, c: impl Crossover<P::Genome> + 'static) -> Self {
        self.crossover = Some(Box::new(c));
        self
    }

    /// Mutation operator.
    #[must_use]
    pub fn mutation(mut self, m: impl Mutation<P::Genome> + 'static) -> Self {
        self.mutation = Some(Box::new(m));
        self
    }

    /// Crossover application probability.
    #[must_use]
    pub fn crossover_rate(mut self, rate: f64) -> Self {
        self.crossover_rate = rate;
        self
    }

    /// RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an observability recorder receiving the engine's event
    /// stream (see `pga-observe`).
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Validates, samples and evaluates the initial grid.
    pub fn build(self) -> Result<CellularGa<P>, ConfigError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "grid",
                message: format!("grid must be non-empty, got {}x{}", self.rows, self.cols),
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(ConfigError::InvalidParameter {
                name: "crossover_rate",
                message: format!("must be in [0,1], got {}", self.crossover_rate),
            });
        }
        let crossover = self
            .crossover
            .ok_or(ConfigError::MissingComponent("crossover"))?;
        let mutation = self
            .mutation
            .ok_or(ConfigError::MissingComponent("mutation"))?;
        let mut rng = Rng64::new(self.seed);
        let n = self.rows * self.cols;
        let grid: Vec<Individual<P::Genome>> = (0..n)
            .map(|_| {
                let genome = self.problem.random_genome(&mut rng);
                let fitness = self.problem.evaluate(&genome);
                Individual::evaluated(genome, fitness)
            })
            .collect();
        let mut fixed_sweep: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut fixed_sweep);
        let objective = self.problem.objective();
        let best_ever = grid
            .iter()
            .reduce(|a, b| {
                if objective.better(b.fitness(), a.fitness()) {
                    b
                } else {
                    a
                }
            })
            .expect("non-empty grid")
            .clone();
        Ok(CellularGa {
            problem: self.problem,
            grid,
            rows: self.rows,
            cols: self.cols,
            neighborhood: self.neighborhood,
            policy: self.policy,
            crossover,
            mutation,
            crossover_rate: self.crossover_rate,
            seed: self.seed,
            rng,
            fixed_sweep,
            order_buf: Vec::new(),
            offspring_buf: Vec::new(),
            generation: 0,
            evaluations: n as u64,
            best_ever,
            stagnant_generations: 0,
            trace_island: 0,
            optimum_traced: false,
            recorder: self.recorder,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::ops::{BitFlip, OnePoint};
    use pga_core::{BitString, Objective};

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    fn cga(policy: UpdatePolicy, seed: u64) -> CellularGa<OneMax> {
        CellularGa::builder(OneMax(32))
            .grid(10, 10)
            .update_policy(policy)
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(32))
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn build_errors() {
        let e = CellularGa::builder(OneMax(8))
            .grid(0, 5)
            .crossover(OnePoint)
            .mutation(BitFlip { p: 0.1 })
            .build()
            .err()
            .unwrap();
        assert!(matches!(
            e,
            ConfigError::InvalidParameter { name: "grid", .. }
        ));
        let e = CellularGa::builder(OneMax(8))
            .mutation(BitFlip { p: 0.1 })
            .build()
            .err()
            .unwrap();
        assert_eq!(e, ConfigError::MissingComponent("crossover"));
    }

    #[test]
    fn all_policies_solve_onemax() {
        for policy in UpdatePolicy::ALL {
            let mut cga = cga(policy, 5);
            let outcome = cga
                .run(&Termination::new().until_optimum().max_generations(300))
                .unwrap();
            assert!(
                outcome.hit_optimum,
                "{}: best = {}",
                policy.name(),
                outcome.best_fitness
            );
            assert!(!outcome.history.is_empty());
        }
    }

    #[test]
    fn synchronous_step_is_deterministic_despite_rayon() {
        let mut a = cga(UpdatePolicy::Synchronous, 42);
        let mut b = cga(UpdatePolicy::Synchronous, 42);
        for _ in 0..10 {
            let (sa, sb) = (a.step(), b.step());
            assert_eq!(sa.best, sb.best);
            assert_eq!(sa.mean, sb.mean);
        }
    }

    #[test]
    fn elitist_replacement_never_regresses_best_cell() {
        let mut cga = cga(UpdatePolicy::LineSweep, 7);
        let mut last = cga.step().best;
        for _ in 0..30 {
            let s = cga.step();
            assert!(s.best >= last);
            last = s.best;
        }
    }

    #[test]
    fn evaluations_count_one_per_update() {
        let mut cga = cga(UpdatePolicy::Synchronous, 1);
        assert_eq!(cga.evaluations(), 100); // initial grid
        cga.step();
        assert_eq!(cga.evaluations(), 200);
        let mut acga = cga_async();
        assert_eq!(acga.evaluations(), 100);
        acga.step();
        assert_eq!(acga.evaluations(), 200);
    }

    fn cga_async() -> CellularGa<OneMax> {
        cga(UpdatePolicy::UniformChoice, 1)
    }

    #[test]
    fn recorder_observes_cellular_run() {
        use pga_observe::RingRecorder;
        let ring = RingRecorder::new(4096);
        let mut cga = CellularGa::builder(OneMax(32))
            .grid(8, 8)
            .update_policy(UpdatePolicy::LineSweep)
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(32))
            .seed(3)
            .recorder(ring.clone())
            .build()
            .unwrap();
        let outcome = cga
            .run(&Termination::new().until_optimum().max_generations(200))
            .unwrap();
        let events = ring.events();
        assert!(matches!(
            &events[0].kind,
            EventKind::RunStarted { engine, .. } if engine == "cellular-line-sweep"
        ));
        assert_eq!(events.last().unwrap().kind.name(), "run_finished");
        let gens = events
            .iter()
            .filter(|e| e.kind.name() == "generation_completed")
            .count();
        assert_eq!(gens, outcome.history.len());
    }

    #[test]
    fn mean_improves_over_time() {
        let mut cga = cga(UpdatePolicy::NewRandomSweep, 3);
        let first = cga.step().mean;
        for _ in 0..50 {
            cga.step();
        }
        let last = cga.step().mean;
        assert!(last > first + 3.0, "mean {first} -> {last}");
    }
}
