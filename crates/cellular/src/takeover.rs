//! Selection-only takeover experiments (selection pressure measurement).
//!
//! The standard methodology of Giacobini et al. (2003) and Alba & Troya
//! (2002): plant a single best individual in a population, run *selection
//! only* (no crossover, no mutation), and record the proportion of copies of
//! the best per generation. Faster takeover ⇔ higher selection pressure.

use crate::update::UpdatePolicy;
use pga_core::Rng64;
use pga_topology::CellNeighborhood;

/// A fitness-only grid for takeover experiments.
///
/// Cells hold plain fitness values (1.0 for the planted best, uniform
/// `(0, 1)` otherwise). Each update replaces a cell by the winner of a
/// binary tournament over its neighborhood whenever the winner is at least
/// as fit — the elitist local-selection rule standard in takeover studies.
#[derive(Clone, Debug)]
pub struct TakeoverGrid {
    cells: Vec<f64>,
    rows: usize,
    cols: usize,
    neighborhood: CellNeighborhood,
    policy: UpdatePolicy,
    fixed_sweep: Vec<usize>,
    rng: Rng64,
    generation: u64,
}

impl TakeoverGrid {
    /// Builds a `rows × cols` grid with random fitness in `(0, 1)` and one
    /// planted best (fitness 1.0) at the grid center.
    #[must_use]
    pub fn new(
        rows: usize,
        cols: usize,
        neighborhood: CellNeighborhood,
        policy: UpdatePolicy,
        seed: u64,
    ) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
        let mut rng = Rng64::new(seed);
        let n = rows * cols;
        let mut cells: Vec<f64> = (0..n).map(|_| rng.next_f64() * 0.999).collect();
        cells[(rows / 2) * cols + cols / 2] = 1.0;
        let mut fixed_sweep: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut fixed_sweep);
        Self {
            cells,
            rows,
            cols,
            neighborhood,
            policy,
            fixed_sweep,
            rng,
            generation: 0,
        }
    }

    /// Cell count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` for an empty grid (constructor prevents this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Generations executed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Proportion of cells currently holding the best fitness (1.0).
    #[must_use]
    pub fn best_proportion(&self) -> f64 {
        let count = self.cells.iter().filter(|&&f| f >= 1.0).count();
        count as f64 / self.cells.len() as f64
    }

    /// Winner of a binary tournament among two uniform neighborhood picks.
    fn local_winner(&self, cells: &[f64], idx: usize, rng: &mut Rng64) -> f64 {
        let (r, c) = (idx / self.cols, idx % self.cols);
        let nb = self.neighborhood.neighbors(r, c, self.rows, self.cols);
        let a = cells[*rng.choose(&nb)];
        let b = cells[*rng.choose(&nb)];
        a.max(b)
    }

    /// One generation of selection-only updates (`n` cell updates).
    pub fn step(&mut self) {
        let n = self.cells.len();
        let order = {
            let mut rng = self.rng.clone();
            let o = self.policy.order(n, &self.fixed_sweep, &mut rng);
            self.rng = rng;
            o
        };
        if self.policy.is_asynchronous() {
            // In-place: later updates see earlier winners within the sweep.
            let mut rng = self.rng.clone();
            for idx in order {
                let winner = self.local_winner(&self.cells, idx, &mut rng);
                if winner >= self.cells[idx] {
                    self.cells[idx] = winner;
                }
            }
            self.rng = rng;
        } else {
            // Double buffer: every cell reads the old generation.
            let old = self.cells.clone();
            let mut rng = self.rng.clone();
            for idx in order {
                let winner = self.local_winner(&old, idx, &mut rng);
                if winner >= old[idx] {
                    self.cells[idx] = winner;
                }
            }
            self.rng = rng;
        }
        self.generation += 1;
    }

    /// Runs until the best fills the grid (or `max_generations`), returning
    /// the per-generation proportion curve, starting with generation 0.
    #[must_use]
    pub fn takeover_curve(&mut self, max_generations: u64) -> Vec<f64> {
        let mut curve = vec![self.best_proportion()];
        while self.best_proportion() < 1.0 && self.generation < max_generations {
            self.step();
            curve.push(self.best_proportion());
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(policy: UpdatePolicy, seed: u64) -> TakeoverGrid {
        TakeoverGrid::new(16, 16, CellNeighborhood::VonNeumann, policy, seed)
    }

    #[test]
    fn starts_with_one_best() {
        let g = grid(UpdatePolicy::Synchronous, 1);
        assert!((g.best_proportion() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn proportion_is_monotone_under_elitist_rule() {
        for policy in UpdatePolicy::ALL {
            let mut g = grid(policy, 2);
            let mut last = g.best_proportion();
            for _ in 0..40 {
                g.step();
                let now = g.best_proportion();
                assert!(now >= last, "{}: {now} < {last}", policy.name());
                last = now;
            }
        }
    }

    #[test]
    fn takeover_completes() {
        for policy in UpdatePolicy::ALL {
            let mut g = grid(policy, 3);
            let curve = g.takeover_curve(10_000);
            assert_eq!(*curve.last().unwrap(), 1.0, "{}", policy.name());
            // Diffusion needs at least grid-radius generations.
            assert!(curve.len() > 4, "{}", policy.name());
        }
    }

    #[test]
    fn synchronous_spreads_at_most_one_ring_per_generation() {
        // With a Von Neumann neighborhood the best can move at most one
        // Manhattan step per synchronous generation: after g generations at
        // most 2g² + 2g + 1 cells can hold it.
        let mut g = TakeoverGrid::new(
            32,
            32,
            CellNeighborhood::VonNeumann,
            UpdatePolicy::Synchronous,
            4,
        );
        for generation in 1..=10u64 {
            g.step();
            let max_cells = 2 * generation * generation + 2 * generation + 1;
            let held = (g.best_proportion() * 1024.0).round() as u64;
            assert!(held <= max_cells, "gen {generation}: {held} > {max_cells}");
        }
    }

    #[test]
    fn uniform_choice_is_fastest_synchronous_slowest() {
        // Average takeover time over a few seeds: the Giacobini ordering.
        let avg = |policy: UpdatePolicy| -> f64 {
            (0..5)
                .map(|s| {
                    let mut g = grid(policy, 100 + s);
                    g.takeover_curve(10_000).len() as f64
                })
                .sum::<f64>()
                / 5.0
        };
        let sync = avg(UpdatePolicy::Synchronous);
        let uniform = avg(UpdatePolicy::UniformChoice);
        assert!(
            sync > uniform,
            "synchronous ({sync}) should take over slower than uniform choice ({uniform})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = grid(UpdatePolicy::NewRandomSweep, 9);
        let mut b = grid(UpdatePolicy::NewRandomSweep, 9);
        let ca = a.takeover_curve(1000);
        let cb = b.takeover_curve(1000);
        assert_eq!(ca, cb);
    }
}
