//! Chaos-engineering integration tests: every fault is scripted by a
//! seeded [`ChaosPlan`], so each scenario is a deterministic replay —
//! the same plan injects the same faults at the same points every run.
//!
//! The invariants under test are the serve layer's availability
//! contract: healthy tenants finish **bit-identically** to a fault-free
//! run no matter what faults land around them; poison jobs are
//! quarantined after exactly the retry budget; spool faults degrade
//! (never kill) the server and clear on recovery; torn spool writes in
//! any window never abort startup.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use pga_core::{Driver, ErasedRun};
use pga_serve::factory::build_engine;
use pga_serve::{
    Budget, ChaosPlan, EngineSpec, JobId, JobSpec, JobState, ProblemSpec, Serve, ServeBuilder,
    StormSpec,
};

const WAIT: Duration = Duration::from_secs(120);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pga-serve-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(tenant: &str, seed: u64, engine: EngineSpec, generations: u64) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        problem: ProblemSpec::onemax(48),
        engine,
        seed,
        budget: Budget {
            generations: Some(generations),
            ..Budget::default()
        },
    }
}

/// Fault-free reference: the same spec driven by the core driver.
fn reference_bits(spec: &JobSpec) -> u64 {
    let mut engine = build_engine(spec, None).expect("reference engine builds");
    let termination = spec.budget.to_termination().expect("bounded budget");
    let outcome = Driver::new(termination)
        .run(&mut ErasedRun(engine.as_mut()))
        .expect("reference run completes");
    outcome.best_fitness.to_bits()
}

fn counter(serve: &Serve, name: &str) -> u64 {
    let text = serve.metrics_text();
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(0)
}

#[test]
fn poison_tenant_is_quarantined_after_exactly_the_retry_budget() {
    let dir = temp_dir("poison");
    let budget = 2;
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(4)
        .quantum_steps(4)
        .retry_budget(budget)
        .backoff_base_ms(1)
        .chaos(ChaosPlan::none().poison_tenant("evil"))
        .build()
        .expect("server starts");

    let healthy: Vec<(JobSpec, JobId)> = [
        spec("alpha", 21, EngineSpec::ga(24, 1), 30),
        spec("beta", 22, EngineSpec::island(3, 12), 30),
        spec("gamma", 23, EngineSpec::cga(63), 30),
    ]
    .into_iter()
    .map(|s| {
        let id = serve.submit(s.clone()).expect("admitted");
        (s, id)
    })
    .collect();
    let evil = serve
        .submit(spec("evil", 24, EngineSpec::ga(24, 1), 30))
        .expect("poison job is admitted like any other");

    assert!(serve.wait_all(WAIT), "pool drains despite the poison job");

    // Quarantine: terminal `poisoned` after exactly `budget` retries,
    // which means exactly `budget + 1` crashes — never more.
    assert!(
        matches!(serve.state(evil), Some(JobState::Poisoned(_))),
        "expected poisoned, got {:?}",
        serve.state(evil)
    );
    let doc = serve.status_json(evil).expect("status visible");
    assert!(doc.contains("\"state\":\"poisoned\""), "{doc}");
    assert!(doc.contains(&format!("\"retries\":{budget}")), "{doc}");
    assert_eq!(counter(&serve, "serve.poisoned"), 1);
    assert_eq!(counter(&serve, "serve.retries"), budget);
    assert_eq!(counter(&serve, "serve.slice_crashes"), budget + 1);
    assert_eq!(serve.health().poisoned, 1);

    // The job's event stream narrates the quarantine.
    let lines = serve.events(evil).expect("stream").drain_lines().join("\n");
    assert!(lines.contains("job_retried"), "{lines}");
    assert!(lines.contains("job_poisoned"), "{lines}");

    // Blast-radius contract: every healthy job is bit-identical to a
    // fault-free run — the poison tenant perturbed nothing.
    for (s, id) in &healthy {
        assert_eq!(
            serve.state(*id),
            Some(JobState::Done(pga_core::StopReason::MaxGenerations))
        );
        let progress = serve.progress_of(*id).expect("progress");
        assert_eq!(
            progress.best_fitness.to_bits(),
            reference_bits(s),
            "healthy job diverged under chaos: {s:?}"
        );
    }
    serve.shutdown();

    // The quarantine survives restart: the poisoned tombstone comes
    // back from the spool (record version 2, state tag `poisoned`).
    let second = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("restart");
    assert_eq!(second.recover_report().skipped, 0);
    assert_eq!(second.recover_report().resumed, 0, "nothing left to run");
    let doc = second.status_json(evil).expect("tombstone retained");
    assert!(doc.contains("\"state\":\"poisoned\""), "{doc}");
    assert!(doc.contains(&format!("\"retries\":{budget}")), "{doc}");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spool_write_faults_degrade_then_recover_without_losing_the_run() {
    let dir = temp_dir("degrade");
    // Three consecutive write faults: one full persist_with_retry cycle
    // (3 attempts) fails end-to-end, flipping the degraded flag; the
    // next persist succeeds and clears it.
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(4)
        .quantum_steps(4)
        .chaos(
            ChaosPlan::none()
                .spool_write_error(0)
                .spool_write_error(1)
                .spool_write_error(2),
        )
        .build()
        .expect("server starts");
    let s = spec("solo", 31, EngineSpec::steady(24), 40);
    let id = serve.submit(s.clone()).expect("admitted");
    assert!(serve.wait(id, WAIT), "job finishes despite spool faults");

    assert_eq!(counter(&serve, "serve.spool_errors"), 3);
    // The final persist succeeded, so the flag has cleared.
    assert!(!serve.health().degraded, "degraded mode must clear");
    // The run itself was never perturbed: results are bit-identical.
    let progress = serve.progress_of(id).expect("progress");
    assert_eq!(progress.best_fitness.to_bits(), reference_bits(&s));
    // The degraded episode is narrated on the job's event stream —
    // one entering transition, one clearing transition.
    let lines = serve.events(id).expect("stream").drain_lines().join("\n");
    assert!(lines.contains("spool_degraded"), "{lines}");
    serve.shutdown();

    // The terminal state made it to disk once writes healed.
    let second = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("restart");
    let doc = second.status_json(id).expect("terminal record on disk");
    assert!(doc.contains("\"state\":\"done\""), "{doc}");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_reclassifies_a_stalled_slice_and_the_job_still_finishes() {
    let dir = temp_dir("stall");
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(4)
        .quantum_steps(4)
        .retry_budget(3)
        .backoff_base_ms(1)
        .slice_deadline_ms(50)
        .chaos(ChaosPlan::none().slice_stall(0, Duration::from_millis(400)))
        .build()
        .expect("server starts");
    let s = spec("solo", 41, EngineSpec::ga(24, 1), 30);
    let id = serve.submit(s.clone()).expect("admitted");
    assert!(serve.wait(id, WAIT), "job finishes after the stall");

    assert!(
        counter(&serve, "serve.stalled") >= 1,
        "watchdog never fired"
    );
    assert!(counter(&serve, "serve.retries") >= 1, "stall cost a retry");
    // The stalled slice's work was discarded and replayed, so the
    // result is still bit-identical to the fault-free reference.
    assert_eq!(
        serve.state(id),
        Some(JobState::Done(pga_core::StopReason::MaxGenerations))
    );
    let progress = serve.progress_of(id).expect("progress");
    assert_eq!(progress.best_fitness.to_bits(), reference_bits(&s));
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_spool_writes_in_every_window_never_abort_startup() {
    let dir = temp_dir("torn");
    // Seed the spool with one legitimate terminal record.
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("server starts");
    let keep = serve
        .submit(spec("solo", 51, EngineSpec::ga(16, 1), 10))
        .expect("admitted");
    assert!(serve.wait(keep, WAIT));
    serve.shutdown();

    // Window 1: tmp fully written, rename never happened. Must be
    // ignored (only `.pgaj` targets are scanned).
    std::fs::write(dir.join("99.pgaj.tmp"), b"complete tmp, no rename").expect("write");
    // Window 2: tmp partially written (crash mid-write).
    std::fs::write(dir.join("98.pgaj.tmp"), [0u8; 7]).expect("write");
    // Window 3: target itself torn — truncated mid-content. The
    // checksum catches it and the file is quarantined, not fatal.
    let good = std::fs::read(dir.join(format!("{keep}.pgaj"))).expect("record exists");
    std::fs::write(dir.join("97.pgaj"), &good[..good.len() / 2]).expect("write");
    // Window 4: target exists but is empty (open + crash before write —
    // not reachable through the tmp+rename path, but hostile anyway).
    std::fs::write(dir.join("96.pgaj"), b"").expect("write");

    let second = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("startup survives every torn window");
    assert_eq!(
        second.recover_report().skipped,
        2,
        "both torn targets quarantined"
    );
    // The good record still recovered, and the server still works.
    assert!(second.status_json(keep).is_some(), "good record survived");
    let fresh = second
        .submit(spec("solo", 52, EngineSpec::ga(16, 1), 10))
        .expect("fresh work admitted");
    assert!(second.wait(fresh, WAIT));
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_storm_leaves_every_healthy_tenant_bit_identical() {
    let dir = temp_dir("storm");
    let storm = StormSpec::default();
    let plan = ChaosPlan::storm(0xC4A05, &storm).poison_tenant("mallory");
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(4)
        .quantum_steps(4)
        .retry_budget(3)
        .backoff_base_ms(1)
        .slice_deadline_ms(2_000)
        .chaos(plan)
        .build()
        .expect("server starts");

    let healthy: Vec<(JobSpec, JobId)> = [
        spec("alpha", 61, EngineSpec::ga(24, 1), 30),
        spec("alpha", 62, EngineSpec::steady(24), 30),
        spec("beta", 63, EngineSpec::cellular(5, 5), 30),
        spec("beta", 64, EngineSpec::island(3, 12), 30),
        spec("gamma", 65, EngineSpec::async_steady(20, 4), 30),
        spec("gamma", 66, EngineSpec::cga(63), 30),
        spec("delta", 67, EngineSpec::pcga(63, 6), 30),
    ]
    .into_iter()
    .map(|s| {
        let id = serve.submit(s.clone()).expect("admitted");
        (s, id)
    })
    .collect();
    let doomed = serve
        .submit(spec("mallory", 68, EngineSpec::ga(24, 1), 30))
        .expect("admitted");

    assert!(serve.wait_all(WAIT), "storm drains");
    assert!(matches!(serve.state(doomed), Some(JobState::Poisoned(_))));
    assert_eq!(counter(&serve, "serve.poisoned"), 1, "exactly one poisoned");
    for (s, id) in &healthy {
        assert_eq!(
            serve.state(*id),
            Some(JobState::Done(pga_core::StopReason::MaxGenerations)),
            "healthy job did not finish: {s:?}"
        );
        let progress = serve.progress_of(*id).expect("progress");
        assert_eq!(
            progress.best_fitness.to_bits(),
            reference_bits(s),
            "storm perturbed a healthy result: {s:?}"
        );
    }
    serve.shutdown();

    // Post-storm recovery on a clean (chaos-free) server. A torn
    // terminal write may have quarantined a record — bounded by the
    // scripted truncation count — and a failed terminal persist may
    // have left a *stale but valid* record, which simply resumes and
    // replays deterministically to the same answer.
    let second = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("restart");
    assert!(
        second.recover_report().skipped <= storm.spool_truncations,
        "more corruption than the plan scripted: {:?}",
        second.recover_report()
    );
    assert!(second.wait_all(WAIT), "resumed stragglers finish");
    for (s, id) in &healthy {
        let Some(doc) = second.status_json(*id) else {
            continue; // terminal write torn: record quarantined, job forgotten
        };
        assert!(doc.contains("\"state\":\"done\""), "{doc}");
        if let Some(progress) = second.progress_of(*id) {
            assert_eq!(
                progress.best_fitness.to_bits(),
                reference_bits(s),
                "post-storm replay diverged: {s:?}"
            );
        }
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// HTTP connection-drop chaos
// ---------------------------------------------------------------------

/// Raw client that tolerates the server dropping the connection:
/// returns `None` when no status line ever arrives.
fn try_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> Option<(u16, String)> {
    let mut conn = TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(WAIT)).ok()?;
    let mut payload = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    payload.extend_from_slice(body);
    conn.write_all(&payload).ok()?;
    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    let code: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).ok()?;
    Some((code, body))
}

#[test]
fn dropped_connections_hit_only_the_scripted_request() {
    let dir = temp_dir("drop");
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .bind("127.0.0.1:0")
        .chaos(ChaosPlan::none().drop_connection(0))
        .build()
        .expect("server starts");
    let addr = serve.http_addr().expect("bound");

    // The first connection is scripted to drop: no response at all.
    assert_eq!(
        try_request(addr, "GET", "/healthz", b""),
        None,
        "scripted connection should be severed before any response"
    );
    // The very next connection is served normally.
    let (code, body) = try_request(addr, "GET", "/healthz", b"").expect("second conn served");
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
