//! End-to-end tests of the GA-as-a-service runtime: crash-safe resume
//! (the tentpole guarantee — a hard-dropped server recovers every
//! in-flight job **bit-identically**), admission control, per-tenant
//! fairness, cooperative cancel, and the HTTP wire surface.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pga_core::{Driver, ErasedRun};
use pga_serve::factory::build_engine;
use pga_serve::{
    Budget, EngineSpec, JobId, JobSpec, JobState, ProblemSpec, Serve, ServeBuilder, Spool,
    SubmitError,
};

const WAIT: Duration = Duration::from_secs(120);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pga-serve-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(tenant: &str, seed: u64, engine: EngineSpec, generations: u64) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        problem: ProblemSpec::onemax(48),
        engine,
        seed,
        budget: Budget {
            generations: Some(generations),
            ..Budget::default()
        },
    }
}

/// Every wire-buildable engine family, one job each.
fn family_specs(generations: u64) -> Vec<JobSpec> {
    vec![
        spec("alpha", 11, EngineSpec::ga(24, 1), generations),
        spec("alpha", 12, EngineSpec::steady(24), generations),
        spec("beta", 13, EngineSpec::cellular(5, 5), generations),
        spec("beta", 14, EngineSpec::island(3, 12), generations),
        // Barrier-free asynchronous family: folds arrive under a virtual
        // clock, so spool resume must also restore in-flight work.
        spec("gamma", 15, EngineSpec::async_steady(20, 4), generations),
        // Compact family: the snapshot is a probability vector + RNG, so
        // crash-resume must restore the model bit-for-bit.
        spec("gamma", 16, EngineSpec::cga(63), generations),
        // Sharded compact family: per-node RNG streams and a virtual
        // clock ride along in the snapshot.
        spec("delta", 17, EngineSpec::pcga(63, 6), generations),
    ]
}

/// The reference result: the same spec driven, uninterrupted, by the
/// core generic driver. Returns (best fitness bits, final snapshot).
fn reference_run(spec: &JobSpec) -> (u64, Vec<u8>) {
    let mut engine = build_engine(spec, None).expect("reference engine builds");
    let termination = spec.budget.to_termination().expect("bounded budget");
    let outcome = Driver::new(termination)
        .run(&mut ErasedRun(engine.as_mut()))
        .expect("reference run completes");
    (outcome.best_fitness.to_bits(), engine.snapshot().to_bytes())
}

#[test]
fn hard_dropped_server_resumes_every_job_bit_identically() {
    let dir = temp_dir("resume");
    let specs = family_specs(40);

    // First server: admit everything, then crash mid-flight.
    let first = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(4)
        .quantum_steps(4)
        .build()
        .expect("first server starts");
    let ids: Vec<JobId> = specs
        .iter()
        .map(|s| first.submit(s.clone()).expect("admitted"))
        .collect();
    // Let every job make partial progress (≥ 1 slice, < full budget).
    let deadline = Instant::now() + WAIT;
    loop {
        let progressed = ids
            .iter()
            .all(|&id| first.progress_of(id).is_some_and(|p| p.generations >= 4));
        if progressed {
            break;
        }
        assert!(Instant::now() < deadline, "jobs never progressed");
        std::thread::sleep(Duration::from_millis(2));
    }
    first.abandon(); // kill -9 at a slice boundary: in-flight batch lost

    // Second server over the same spool: must resume all four.
    let second = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(4)
        .quantum_steps(4)
        .build()
        .expect("second server starts");
    let report = second.recover_report().clone();
    assert_eq!(
        report.resumed,
        specs.len(),
        "all in-flight jobs re-admitted"
    );
    assert_eq!(report.skipped, 0, "no spool corruption");
    assert!(second.wait_all(WAIT), "recovered jobs finish");

    // Each recovered job's result must be bit-identical to an
    // uninterrupted run of the same spec.
    for (spec, id) in specs.iter().zip(&ids) {
        let (ref_bits, ref_snapshot) = reference_run(spec);
        let progress = second.progress_of(*id).expect("job known after restart");
        assert_eq!(
            progress.best_fitness.to_bits(),
            ref_bits,
            "best fitness diverged for {spec:?}"
        );
        assert_eq!(progress.generations, 40, "full budget consumed exactly");
        assert_eq!(
            second.state(*id),
            Some(JobState::Done(pga_core::StopReason::MaxGenerations))
        );
        // Strongest form: the final engine state in the spool is
        // byte-for-byte the uninterrupted engine's state.
        let scan = Spool::open(&dir)
            .expect("spool reopens")
            .load_all()
            .expect("scan");
        let record = scan
            .records
            .iter()
            .find(|r| r.id == *id)
            .expect("terminal record retained");
        let snapshot = record
            .engine_snapshot
            .as_ref()
            .expect("final snapshot persisted");
        assert_eq!(
            snapshot.to_bytes(),
            ref_snapshot,
            "final engine state diverged for {spec:?}"
        );
    }
    second.shutdown();

    // Third server: terminal jobs survive as status tombstones.
    let third = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("third server");
    assert_eq!(third.recover_report().terminal, specs.len());
    assert_eq!(third.recover_report().resumed, 0);
    for id in &ids {
        let doc = third.status_json(*id).expect("status retained");
        assert!(doc.contains("\"state\":\"done\""), "{doc}");
    }
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_restart_mid_run_is_also_bit_identical() {
    let dir = temp_dir("graceful");
    let spec = spec("solo", 77, EngineSpec::island(3, 12), 30);
    let first = ServeBuilder::new()
        .spool_dir(&dir)
        .steps_per_slice(2)
        .quantum_steps(2)
        .build()
        .expect("server starts");
    let id = first.submit(spec.clone()).expect("admitted");
    let deadline = Instant::now() + WAIT;
    while first.progress_of(id).is_none_or(|p| p.generations < 2) {
        assert!(Instant::now() < deadline, "job never progressed");
        std::thread::sleep(Duration::from_millis(1));
    }
    first.shutdown();

    let second = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("restart");
    assert_eq!(second.recover_report().resumed, 1);
    assert!(second.wait(id, WAIT));
    let (ref_bits, _) = reference_run(&spec);
    let progress = second.progress_of(id).expect("known");
    assert_eq!(progress.best_fitness.to_bits(), ref_bits);
    assert_eq!(progress.generations, 30);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submissions_past_the_job_cap_are_shed_and_readmitted_later() {
    let dir = temp_dir("shed");
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .max_jobs(2)
        .retry_after_ms(1500)
        .build()
        .expect("server starts");
    let a = serve
        .submit(spec("t", 1, EngineSpec::ga(16, 1), 2000))
        .expect("first admitted");
    let b = serve
        .submit(spec("t", 2, EngineSpec::ga(16, 1), 2000))
        .expect("second admitted");
    // At the cap: the third submission is shed with the retry hint.
    match serve.submit(spec("t", 3, EngineSpec::ga(16, 1), 10)) {
        Err(SubmitError::Shed { retry_after_ms }) => assert_eq!(retry_after_ms, 1500),
        other => panic!("expected shed, got {other:?}"),
    }
    assert!(serve.metrics_text().contains("serve.shed 1\n"));
    // Free capacity and retry: admitted.
    assert!(serve.cancel(a));
    assert!(serve.wait(a, WAIT));
    let c = serve
        .submit(spec("t", 3, EngineSpec::ga(16, 1), 10))
        .expect("admitted after capacity freed");
    assert!(serve.wait(c, WAIT));
    assert!(serve.cancel(b));
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_hog_tenant_cannot_starve_a_late_small_tenant() {
    let dir = temp_dir("fair");
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .max_jobs(64)
        .steps_per_slice(4)
        .quantum_steps(4)
        .build()
        .expect("server starts");
    // The hog floods first: 12 long jobs.
    let hog_ids: Vec<JobId> = (0..12)
        .map(|i| {
            serve
                .submit(spec("hog", 100 + i, EngineSpec::ga(16, 1), 400))
                .expect("hog admitted")
        })
        .collect();
    // The small tenant arrives after the flood with 2 short jobs.
    let small_ids: Vec<JobId> = (0..2)
        .map(|i| {
            serve
                .submit(spec("small", 200 + i, EngineSpec::ga(16, 1), 40))
                .expect("small admitted")
        })
        .collect();
    // Under DRR the small tenant's 80 steps share the server fairly
    // with the hog's 4800: both small jobs must finish while the hog
    // still has work outstanding — i.e. the flood cannot starve them.
    for id in &small_ids {
        assert!(serve.wait(*id, WAIT), "small tenant starved");
    }
    let hog_unfinished = hog_ids
        .iter()
        .filter(|id| serve.state(**id).is_some_and(|s| !s.is_terminal()))
        .count();
    assert!(
        hog_unfinished > 0,
        "hog finished entirely before the small tenant — DRR not effective"
    );
    // Fairness ledger: both tenants were granted slices.
    let slices = serve.tenant_slices();
    assert!(slices["hog"] > 0 && slices["small"] > 0);
    assert!(serve.wait_all(WAIT), "hog eventually completes too");
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_interrupts_a_running_job_and_persists_the_cancellation() {
    let dir = temp_dir("cancel");
    let serve = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("server starts");
    let id = serve
        .submit(spec("t", 5, EngineSpec::ga(16, 1), 1_000_000))
        .expect("admitted");
    // Let it get going, then cancel.
    let deadline = Instant::now() + WAIT;
    while serve.progress_of(id).is_none_or(|p| p.generations == 0) {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(serve.cancel(id));
    assert!(serve.wait(id, WAIT));
    assert_eq!(serve.state(id), Some(JobState::Cancelled));
    assert!(
        !serve.cancel(id),
        "cancel is not repeatable on a terminal job"
    );
    let generations_at_cancel = serve.progress_of(id).expect("known").generations;
    assert!(generations_at_cancel < 1_000_000);
    serve.shutdown();
    // The cancellation is durable.
    let restarted = ServeBuilder::new()
        .spool_dir(&dir)
        .build()
        .expect("restart");
    assert_eq!(restarted.state(id), Some(JobState::Cancelled));
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// HTTP wire surface
// ---------------------------------------------------------------------

struct Response {
    code: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// Minimal HTTP/1.1 client: one request, close-delimited read.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(WAIT)).expect("timeout");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("body");
    Response {
        code,
        headers,
        body,
    }
}

fn start_http_server(dir: &PathBuf, max_jobs: usize) -> (Serve, std::net::SocketAddr) {
    let serve = ServeBuilder::new()
        .spool_dir(dir)
        .max_jobs(max_jobs)
        .bind("127.0.0.1:0")
        .build()
        .expect("http server starts");
    let addr = serve.http_addr().expect("bound");
    (serve, addr)
}

#[test]
fn http_surface_submits_reports_streams_and_cancels() {
    let dir = temp_dir("http");
    let (serve, addr) = start_http_server(&dir, 8);

    // Submit a short job over the wire.
    let submit = http(
        addr,
        "POST",
        "/jobs",
        r#"{"tenant":"wire","problem":{"kind":"onemax","len":32},
           "engine":{"family":"ga","pop":16},"seed":9,"budget":{"generations":12}}"#,
    );
    assert_eq!(submit.code, 201, "{}", submit.body);
    assert!(submit.body.contains("\"id\":\"j0\""), "{}", submit.body);

    // The events endpoint streams JSONL until the job completes.
    let events = http(addr, "GET", "/jobs/j0/events", "");
    assert_eq!(events.code, 200);
    assert_eq!(
        events.headers.get("content-type").map(String::as_str),
        Some("application/x-ndjson")
    );
    let lines: Vec<&str> = events.body.lines().collect();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"kind\":\"generation_completed\"")),
        "no generation events in: {:?}",
        &lines[..lines.len().min(3)]
    );
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));

    // Status for the finished job.
    let status = http(addr, "GET", "/jobs/j0", "");
    assert_eq!(status.code, 200);
    assert!(
        status.body.contains("\"state\":\"done\""),
        "{}",
        status.body
    );
    assert!(
        status.body.contains("\"generations\":12"),
        "{}",
        status.body
    );

    // Unknown jobs and bad specs are typed failures.
    assert_eq!(http(addr, "GET", "/jobs/j99", "").code, 404);
    let bad = http(addr, "POST", "/jobs", r#"{"tenant":"x"}"#);
    assert_eq!(bad.code, 400);
    assert!(bad.body.contains("error"));

    // Cancel over the wire: submit a long job, then DELETE it.
    let long = http(
        addr,
        "POST",
        "/jobs",
        r#"{"tenant":"wire","problem":{"kind":"onemax","len":32},
           "engine":{"family":"ga","pop":16},"seed":10,"budget":{"generations":500000}}"#,
    );
    assert_eq!(long.code, 201);
    let cancel = http(addr, "DELETE", "/jobs/j1", "");
    assert_eq!(cancel.code, 200);
    assert!(cancel.body.contains("\"cancelled\":true"));
    // Once the cancellation lands (terminal state), a repeat DELETE
    // conflicts. A DELETE racing the in-flight slice may still get 200,
    // so wait for the state transition first.
    assert!(
        serve.wait(pga_serve::JobId(1), WAIT),
        "cancelled job never became terminal"
    );
    let second_cancel = http(addr, "DELETE", "/jobs/j1", "");
    assert_eq!(
        second_cancel.code, 409,
        "cancel of a terminal job conflicts"
    );

    // Metrics document includes runtime counters and live pool stats.
    let metrics = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.code, 200);
    assert!(
        metrics.body.contains("serve.submitted 2\n"),
        "{}",
        metrics.body
    );
    assert!(metrics.body.contains("pool.workers "), "{}", metrics.body);

    // The registry listing is wire-visible: every registered family and
    // problem shows up in GET /families.
    let families = http(addr, "GET", "/families", "");
    assert_eq!(families.code, 200);
    for name in [
        "\"ga\"",
        "\"steady\"",
        "\"cellular\"",
        "\"island\"",
        "\"async-steady\"",
        "\"cga\"",
        "\"pcga\"",
        "\"onemax\"",
        "\"trap\"",
    ] {
        assert!(families.body.contains(name), "{}", families.body);
    }

    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_sheds_with_retry_after_at_the_cap() {
    let dir = temp_dir("http-shed");
    let (serve, addr) = start_http_server(&dir, 1);
    let body = r#"{"tenant":"wire","problem":{"kind":"onemax","len":32},
        "engine":{"family":"ga","pop":16},"seed":1,"budget":{"generations":500000}}"#;
    assert_eq!(http(addr, "POST", "/jobs", body).code, 201);
    let shed = http(addr, "POST", "/jobs", body);
    assert_eq!(shed.code, 429);
    let retry_after: u64 = shed
        .headers
        .get("retry-after")
        .and_then(|v| v.parse().ok())
        .expect("Retry-After header");
    assert!(retry_after >= 1);
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
