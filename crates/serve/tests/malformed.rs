//! Deterministic malformed-input suite for the serve wire surface.
//!
//! Two layers are attacked: the JSON codec in `protocol` (truncated
//! records, absurd nesting and lengths — every case must come back as a
//! typed error, never a panic or a stack overflow), and the HTTP front
//! end (invalid UTF-8 bodies, oversized `Content-Length` rejected `413`
//! before the body is read, the health/readiness/drain surface).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use pga_serve::protocol::Json;
use pga_serve::{Budget, EngineSpec, JobSpec, ProblemSpec, Serve, ServeBuilder};

const WAIT: Duration = Duration::from_secs(60);

/// A canonical valid spec, produced by the encoder itself so the wire
/// shape can never drift out from under the truncation sweep.
fn valid_spec() -> String {
    JobSpec {
        tenant: "acme".into(),
        problem: ProblemSpec::onemax(32),
        engine: EngineSpec::ga(16, 1),
        seed: 7,
        budget: Budget {
            generations: Some(10),
            ..Budget::default()
        },
    }
    .to_json_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pga-serve-mal-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// Protocol layer
// ---------------------------------------------------------------------

#[test]
fn every_truncation_of_a_valid_spec_is_a_typed_error() {
    let valid = valid_spec();
    assert!(JobSpec::from_json_str(&valid).is_ok());
    for cut in 0..valid.len() {
        let prefix = &valid[..cut];
        assert!(
            JobSpec::from_json_str(prefix).is_err(),
            "truncation at byte {cut} parsed: {prefix:?}"
        );
    }
}

#[test]
fn absurd_nesting_is_bounded_not_a_stack_overflow() {
    // 100k opening brackets would previously recurse 100k frames deep.
    for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
        let deep = open.repeat(100_000);
        let err = Json::parse(&deep).expect_err("unterminated nesting");
        assert!(
            err.to_string().contains("nesting deeper"),
            "expected a depth error, got: {err}"
        );
        // Balanced-but-deep documents fail the same way.
        let balanced = format!("{}0{}", open.repeat(100), close.repeat(100));
        assert!(Json::parse(&balanced).is_err());
    }
    // Documents inside the bound still parse.
    let shallow = format!("{}0{}", "[".repeat(32), "]".repeat(32));
    assert!(Json::parse(&shallow).is_ok());
}

#[test]
fn absurd_literals_are_rejected_not_trusted() {
    // A 10 MB unterminated string.
    let long = format!("\"{}", "x".repeat(10 << 20));
    assert!(Json::parse(&long).is_err());
    // Numbers that do not fit a finite f64, and garbage after a value.
    for text in ["1e999999999", "-", "0x10", "1 2", "nulll", "\u{0}"] {
        assert!(Json::parse(text).is_err(), "accepted {text:?}");
    }
    // A spec whose fields are the wrong shapes entirely.
    for text in [
        "[]",
        "42",
        r#"{"tenant":7,"problem":{"kind":"onemax","len":32},"engine":{"family":"ga","pop":16},"seed":1,"budget":{"generations":1}}"#,
        r#"{"tenant":"t","problem":[],"engine":{"family":"ga","pop":16},"seed":1,"budget":{"generations":1}}"#,
        r#"{"tenant":"t","problem":{"kind":"onemax","len":32},"engine":{"family":"ga","pop":16},"seed":1,"budget":{}}"#,
    ] {
        assert!(JobSpec::from_json_str(text).is_err(), "accepted {text:?}");
    }
}

// ---------------------------------------------------------------------
// HTTP layer
// ---------------------------------------------------------------------

struct Response {
    code: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// Minimal raw client: writes `payload` verbatim, reads to close.
fn raw(addr: std::net::SocketAddr, payload: &[u8]) -> Response {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(WAIT)).expect("timeout");
    conn.write_all(payload).expect("request written");
    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("body");
    Response {
        code,
        headers,
        body,
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> Response {
    let mut payload = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    payload.extend_from_slice(body);
    raw(addr, &payload)
}

fn start(dir: &PathBuf, cap: usize) -> (Serve, std::net::SocketAddr) {
    let serve = ServeBuilder::new()
        .spool_dir(dir)
        .max_body_bytes(cap)
        .bind("127.0.0.1:0")
        .build()
        .expect("server starts");
    let addr = serve.http_addr().expect("bound");
    (serve, addr)
}

#[test]
fn oversized_content_length_is_rejected_413_before_the_body() {
    let dir = temp_dir("cap");
    let (serve, addr) = start(&dir, 256);
    // Claim a giant body but never send it: the server must answer from
    // the headers alone instead of waiting for (or buffering) the body.
    let huge =
        "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: 10000000000\r\nConnection: close\r\n\r\n";
    let resp = raw(addr, huge.as_bytes());
    assert_eq!(resp.code, 413, "{}", resp.body);
    assert!(resp.body.contains("cap"), "{}", resp.body);
    // Just over the configured cap: also 413.
    let body = vec![b'x'; 257];
    assert_eq!(request(addr, "POST", "/jobs", &body).code, 413);
    // Under the cap: the body is read and judged on its merits (400 —
    // it is not a job spec).
    let small = vec![b'x'; 10];
    assert_eq!(request(addr, "POST", "/jobs", &small).code, 400);
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_utf8_and_malformed_bodies_get_400() {
    let dir = temp_dir("utf8");
    let (serve, addr) = start(&dir, 1 << 20);
    let valid = valid_spec();
    let resp = request(addr, "POST", "/jobs", &[0xff, 0xfe, 0x80, 0x80]);
    assert_eq!(resp.code, 400);
    assert!(resp.body.contains("UTF-8"), "{}", resp.body);
    for bad in [
        &b"{"[..],
        &b"[[[[[[[["[..],
        &b"{\"tenant\":}"[..],
        &valid.as_bytes()[..valid.len() - 1],
    ] {
        assert_eq!(request(addr, "POST", "/jobs", bad).code, 400);
    }
    // A valid spec still goes through after all that abuse.
    assert_eq!(request(addr, "POST", "/jobs", valid.as_bytes()).code, 201);
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_ready_and_drain_surface() {
    let dir = temp_dir("health");
    let (serve, addr) = start(&dir, 1 << 20);
    let health = request(addr, "GET", "/healthz", b"");
    assert_eq!(health.code, 200);
    assert!(health.body.contains("\"status\":\"ok\""), "{}", health.body);
    assert!(
        health.body.contains("\"degraded\":false"),
        "{}",
        health.body
    );
    assert_eq!(
        health.headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    let ready = request(addr, "GET", "/readyz", b"");
    assert_eq!(ready.code, 200);
    assert!(ready.body.contains("\"ready\":true"));

    // Admit a job, then drain over the wire: admission closes, the job
    // is persisted, readiness flips.
    let valid = valid_spec();
    assert_eq!(request(addr, "POST", "/jobs", valid.as_bytes()).code, 201);
    let drain = request(addr, "POST", "/drain", b"");
    assert_eq!(drain.code, 200);
    assert!(drain.body.contains("\"persisted\":"), "{}", drain.body);
    let ready = request(addr, "GET", "/readyz", b"");
    assert_eq!(ready.code, 503);
    assert!(ready.body.contains("\"ready\":false"));
    let shed = request(addr, "POST", "/jobs", valid.as_bytes());
    assert_eq!(shed.code, 503, "draining server admits nothing");
    // Health stays 200 while draining — the pool is alive.
    assert_eq!(request(addr, "GET", "/healthz", b"").code, 200);
    // Wrong methods on the new routes are 405, not 404.
    assert_eq!(request(addr, "POST", "/healthz", b"").code, 405);
    assert_eq!(request(addr, "GET", "/drain", b"").code, 405);
    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
