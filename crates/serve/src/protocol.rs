//! Wire protocol: job DTOs and the minimal JSON codec they ride on.
//!
//! The server is zero-dependency, so this module carries its own small
//! JSON value model ([`Json`]) with a recursive-descent parser and a
//! canonical serializer. Job specifications round-trip exactly through
//! this codec (`spec == JobSpec::from_json_str(&spec.to_json_string())`),
//! which the spool relies on to rebuild engines bit-identically after a
//! crash.
//!
//! A job specification looks like:
//!
//! ```json
//! {
//!   "tenant": "acme",
//!   "problem": {"kind": "onemax", "len": 64},
//!   "engine": {"family": "ga", "pop": 40},
//!   "seed": 7,
//!   "budget": {"generations": 50}
//! }
//! ```

use std::fmt;

use pga_core::termination::Termination;

/// Errors raised while decoding or validating wire payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// The JSON text failed to parse.
    Parse {
        /// Byte offset of the failure.
        pos: usize,
        /// What the parser expected.
        message: String,
    },
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but its value is out of range or the wrong type.
    Invalid {
        /// Field name.
        field: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The budget has no criterion that is guaranteed to fire.
    UnboundedBudget,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { pos, message } => write!(f, "JSON parse error at byte {pos}: {message}"),
            Self::Missing(field) => write!(f, "missing required field `{field}`"),
            Self::Invalid { field, message } => write!(f, "invalid field `{field}`: {message}"),
            Self::UnboundedBudget => write!(
                f,
                "budget has no bounded criterion (need generations, evaluations, or wall_clock_ms)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A parsed JSON value (numbers as `f64`; integers are exact to 2^53,
/// far beyond any parameter this protocol carries).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (the canonical serializer preserves
    /// field order, so round-trips are byte-stable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Self, ProtocolError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes canonically (no whitespace, object order preserved,
    /// floats via Rust's shortest round-tripping `Display`).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    fn render(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Self::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursion bound for nested arrays/objects: the recursive-descent
/// parser would otherwise turn `[[[[…` into a stack overflow. Job specs
/// are ~4 levels deep; 64 is generous headroom.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> ProtocolError {
        ProtocolError::Parse {
            pos: self.pos,
            message: format!("expected {expected}"),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ProtocolError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(token))
        }
    }

    fn value(&mut self) -> Result<Json, ProtocolError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Self::array),
            Some(b'{') => self.nested(Self::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    /// Runs one container parse with the depth counter held, bounding
    /// recursion at [`MAX_DEPTH`].
    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Json, ProtocolError>,
    ) -> Result<Json, ProtocolError> {
        if self.depth >= MAX_DEPTH {
            return Err(ProtocolError::Parse {
                pos: self.pos,
                message: format!("nesting deeper than {MAX_DEPTH} levels"),
            });
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("closing quote")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("4 hex digits"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("4 hex digits"))?;
                            // Surrogates are not produced by our serializer;
                            // map unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of ordinary bytes at once:
                    // validating per character would re-scan the tail of
                    // the input each time, turning a long string into
                    // O(n²) work — a malformed-input DoS vector.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| !matches!(b, b'"' | b'\\'))
                    {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("a number"))?;
        // `parse::<f64>` happily overflows to ±inf (e.g. `1e999999999`);
        // JSON numbers are finite, so reject anything that is not.
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("a finite number")),
        }
    }

    fn array(&mut self) -> Result<Json, ProtocolError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ProtocolError> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }
}

/// Strips `head` from an object's fields, keeping the rest in order.
fn fields_without(json: &Json, head: &str) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(fields.iter().filter(|(k, _)| k != head).cloned().collect()),
        _ => Json::Obj(Vec::new()),
    }
}

/// Builds a params object from `(key, integer)` pairs.
fn num_params(pairs: &[(&str, u64)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), Json::Num(*v as f64)))
            .collect(),
    )
}

/// Which benchmark problem a job optimizes: an open `(kind, params)`
/// pair resolved against the server's
/// [`ProblemRegistry`](crate::factory::ProblemRegistry). The protocol
/// layer does not enumerate problems — registering a kind is all it
/// takes to make it wire-reachable.
#[derive(Clone, Debug, PartialEq)]
pub struct ProblemSpec {
    kind: String,
    params: Json,
}

impl ProblemSpec {
    /// A spec for any registered problem kind. `params` should be a
    /// [`Json::Obj`]; validation happens against the registry when the
    /// spec is parsed or built.
    #[must_use]
    pub fn new(kind: impl Into<String>, params: Json) -> Self {
        Self {
            kind: kind.into(),
            params,
        }
    }

    /// OneMax over `len` bits.
    #[must_use]
    pub fn onemax(len: usize) -> Self {
        Self::new("onemax", num_params(&[("len", len as u64)]))
    }

    /// Concatenated deceptive traps: `blocks` traps of `k` bits.
    #[must_use]
    pub fn trap(k: usize, blocks: usize) -> Self {
        Self::new(
            "trap",
            num_params(&[("k", k as u64), ("blocks", blocks as u64)]),
        )
    }

    /// P-PEAKS multimodal generator: `p` peaks over `n` bits.
    #[must_use]
    pub fn ppeaks(p: usize, n: usize, seed: u64) -> Self {
        Self::new(
            "ppeaks",
            num_params(&[("p", p as u64), ("n", n as u64), ("seed", seed)]),
        )
    }

    /// Royal Road: `blocks` schemata of `block` bits.
    #[must_use]
    pub fn royal_road(block: usize, blocks: usize) -> Self {
        Self::new(
            "royalroad",
            num_params(&[("block", block as u64), ("blocks", blocks as u64)]),
        )
    }

    /// The problem kind, for tables and status payloads.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.kind
    }

    /// The wire params (everything but `kind`).
    #[must_use]
    pub fn params(&self) -> &Json {
        &self.params
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.kind.clone()))];
        if let Json::Obj(params) = &self.params {
            fields.extend(params.iter().cloned());
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Missing("problem.kind"))?
            .to_string();
        let params = fields_without(json, "kind");
        crate::factory::Registries::builtin()
            .problems
            .validate(&kind, &params)?;
        Ok(Self { kind, params })
    }
}

/// Which engine family runs a job: an open `(family, params)` pair
/// resolved against the server's
/// [`FamilyRegistry`](crate::factory::FamilyRegistry). The protocol
/// layer does not enumerate families — a single
/// [`register`](crate::factory::FamilyRegistry::register) call makes a
/// new family wire-reachable, spool-restorable, and listed by
/// `GET /families`.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSpec {
    family: String,
    params: Json,
}

impl EngineSpec {
    /// A spec for any registered engine family. `params` should be a
    /// [`Json::Obj`]; validation happens against the registry when the
    /// spec is parsed or built.
    #[must_use]
    pub fn new(family: impl Into<String>, params: Json) -> Self {
        Self {
            family: family.into(),
            params,
        }
    }

    /// Panmictic generational GA (`pop` individuals, `elitism` elites).
    #[must_use]
    pub fn ga(pop: usize, elitism: usize) -> Self {
        Self::new(
            "ga",
            num_params(&[("pop", pop as u64), ("elitism", elitism as u64)]),
        )
    }

    /// Panmictic steady-state GA (worst-if-better replacement).
    #[must_use]
    pub fn steady(pop: usize) -> Self {
        Self::new("steady", num_params(&[("pop", pop as u64)]))
    }

    /// Cellular GA on a `rows × cols` torus.
    #[must_use]
    pub fn cellular(rows: usize, cols: usize) -> Self {
        Self::new(
            "cellular",
            num_params(&[("rows", rows as u64), ("cols", cols as u64)]),
        )
    }

    /// Ring-of-islands archipelago of generational GAs.
    #[must_use]
    pub fn island(islands: usize, pop: usize) -> Self {
        Self::new(
            "island",
            num_params(&[("islands", islands as u64), ("pop", pop as u64)]),
        )
    }

    /// Barrier-free asynchronous steady-state master–slave GA over the
    /// streaming cluster simulator (`workers` virtual evaluation nodes):
    /// results fold into the population as they arrive instead of at a
    /// batch barrier, under a deterministic virtual clock.
    #[must_use]
    pub fn async_steady(pop: usize, workers: usize) -> Self {
        Self::new(
            "async-steady",
            num_params(&[("pop", pop as u64), ("workers", workers as u64)]),
        )
    }

    /// Compact GA: the population is a probability vector updated by
    /// `virtual_pop`-sized steps — O(genome) memory, trivially
    /// checkpointable.
    #[must_use]
    pub fn cga(virtual_pop: usize) -> Self {
        Self::new("cga", num_params(&[("virtual_pop", virtual_pop as u64)]))
    }

    /// Sharded parallel compact GA: the probability vector is
    /// partitioned across `nodes` simulated nodes that exchange model
    /// updates (sampled slices and winner ids), never individuals,
    /// under a deterministic virtual clock.
    #[must_use]
    pub fn pcga(virtual_pop: usize, nodes: usize) -> Self {
        Self::new(
            "pcga",
            num_params(&[("virtual_pop", virtual_pop as u64), ("nodes", nodes as u64)]),
        )
    }

    /// Family name for tables and status payloads.
    #[must_use]
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The wire params (everything but `family`).
    #[must_use]
    pub fn params(&self) -> &Json {
        &self.params
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("family".to_string(), Json::Str(self.family.clone()))];
        if let Json::Obj(params) = &self.params {
            fields.extend(params.iter().cloned());
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let family = json
            .get("family")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Missing("engine.family"))?
            .to_string();
        let params = fields_without(json, "family");
        crate::factory::Registries::builtin()
            .families
            .validate(&family, &params)?;
        Ok(Self { family, params })
    }
}

/// A job's stopping budget. At least one *bounded* criterion
/// (`generations`, `evaluations`, or `wall_clock_ms`) is required.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Budget {
    /// Stop after this many generations.
    pub generations: Option<u64>,
    /// Stop after this many fitness evaluations.
    pub evaluations: Option<u64>,
    /// Stop after this much wall-clock time, in milliseconds, measured as
    /// *active* scheduler time (time actually spent stepping the job, so
    /// multi-tenant queueing does not eat a job's budget).
    pub wall_clock_ms: Option<u64>,
    /// Stop once best fitness reaches this target.
    pub target: Option<f64>,
    /// Stop at the problem's known optimum.
    pub until_optimum: bool,
}

impl Budget {
    /// Converts to the core [`Termination`] rule, rejecting unbounded
    /// budgets (which would let a job hold pool slices forever).
    pub fn to_termination(&self) -> Result<Termination, ProtocolError> {
        let mut t = Termination::new();
        if let Some(g) = self.generations {
            t = t.max_generations(g);
        }
        if let Some(e) = self.evaluations {
            t = t.max_evaluations(e);
        }
        if let Some(ms) = self.wall_clock_ms {
            t = t.wall_clock(std::time::Duration::from_millis(ms));
        }
        if let Some(target) = self.target {
            t = t.target_fitness(target);
        }
        if self.until_optimum {
            t = t.until_optimum();
        }
        if !t.is_bounded() {
            return Err(ProtocolError::UnboundedBudget);
        }
        Ok(t)
    }

    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(g) = self.generations {
            fields.push(("generations".to_string(), Json::Num(g as f64)));
        }
        if let Some(e) = self.evaluations {
            fields.push(("evaluations".to_string(), Json::Num(e as f64)));
        }
        if let Some(ms) = self.wall_clock_ms {
            fields.push(("wall_clock_ms".to_string(), Json::Num(ms as f64)));
        }
        if let Some(t) = self.target {
            fields.push(("target".to_string(), Json::Num(t)));
        }
        if self.until_optimum {
            fields.push(("until_optimum".to_string(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let int = |key: &str, field: &'static str| match json.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or(ProtocolError::Invalid {
                field,
                message: "must be a non-negative integer".into(),
            }),
        };
        let budget = Self {
            generations: int("generations", "budget.generations")?,
            evaluations: int("evaluations", "budget.evaluations")?,
            wall_clock_ms: int("wall_clock_ms", "budget.wall_clock_ms")?,
            target: match json.get("target") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or(ProtocolError::Invalid {
                    field: "budget.target",
                    message: "must be a number".into(),
                })?),
            },
            until_optimum: match json.get("until_optimum") {
                None => false,
                Some(v) => v.as_bool().ok_or(ProtocolError::Invalid {
                    field: "budget.until_optimum",
                    message: "must be a boolean".into(),
                })?,
            },
        };
        budget.to_termination()?;
        Ok(budget)
    }
}

/// One optimization job as submitted over the wire: who wants it
/// (`tenant`), what to optimize (`problem`), which engine family to run
/// it on (`engine`), the RNG seed, and when to stop (`budget`).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Tenant identity used for fair scheduling (deficit round-robin).
    pub tenant: String,
    /// The problem to optimize.
    pub problem: ProblemSpec,
    /// The engine family and its structure.
    pub engine: EngineSpec,
    /// RNG seed — the sole source of run randomness, so a spec replays
    /// bit-identically.
    pub seed: u64,
    /// Stopping rule.
    pub budget: Budget,
}

impl JobSpec {
    /// Decodes and validates a specification from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ProtocolError> {
        let json = Json::parse(text)?;
        Self::from_json(&json)
    }

    /// Decodes and validates a specification from a parsed value.
    pub fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let tenant = json
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Missing("tenant"))?;
        if tenant.is_empty() || tenant.len() > 128 {
            return Err(ProtocolError::Invalid {
                field: "tenant",
                message: "must be 1..=128 characters".into(),
            });
        }
        Ok(Self {
            tenant: tenant.to_string(),
            problem: ProblemSpec::from_json(
                json.get("problem")
                    .ok_or(ProtocolError::Missing("problem"))?,
            )?,
            engine: EngineSpec::from_json(
                json.get("engine").ok_or(ProtocolError::Missing("engine"))?,
            )?,
            seed: json.get("seed").and_then(Json::as_u64).unwrap_or(0),
            budget: Budget::from_json(json.get("budget").ok_or(ProtocolError::Missing("budget"))?)?,
        })
    }

    /// Canonical JSON encoding; round-trips exactly through
    /// [`JobSpec::from_json_str`] (the spool persistence contract).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("tenant".into(), Json::Str(self.tenant.clone())),
            ("problem".into(), self.problem.to_json()),
            ("engine".into(), self.engine.to_json()),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("budget".into(), self.budget.to_json()),
        ])
        .to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            tenant: "acme".into(),
            problem: ProblemSpec::trap(4, 8),
            engine: EngineSpec::island(4, 20),
            seed: 42,
            budget: Budget {
                generations: Some(50),
                until_optimum: true,
                ..Budget::default()
            },
        }
    }

    #[test]
    fn spec_roundtrips_exactly() {
        let original = spec();
        let text = original.to_json_string();
        let back = JobSpec::from_json_str(&text).unwrap();
        assert_eq!(back, original);
        // Canonical: serializing again is byte-identical.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn all_families_and_problems_roundtrip() {
        let problems = [
            ProblemSpec::onemax(64),
            ProblemSpec::trap(4, 8),
            ProblemSpec::ppeaks(10, 64, 3),
            ProblemSpec::royal_road(8, 8),
        ];
        let engines = [
            EngineSpec::ga(30, 1),
            EngineSpec::steady(30),
            EngineSpec::cellular(6, 5),
            EngineSpec::island(3, 10),
            EngineSpec::async_steady(24, 6),
            EngineSpec::cga(63),
            EngineSpec::pcga(63, 8),
        ];
        for problem in &problems {
            for engine in &engines {
                let s = JobSpec {
                    tenant: "t".into(),
                    problem: problem.clone(),
                    engine: engine.clone(),
                    seed: 9,
                    budget: Budget {
                        evaluations: Some(1000),
                        ..Budget::default()
                    },
                };
                let back = JobSpec::from_json_str(&s.to_json_string()).unwrap();
                assert_eq!(back, s);
            }
        }
    }

    #[test]
    fn json_parser_handles_nesting_strings_and_numbers() {
        let v =
            Json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"\\\nA"},"d":null,"e":true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\"\\\nA"
        );
        assert_eq!(v.get("d").unwrap(), &Json::Null);
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert!(
            matches!(err, ProtocolError::Parse { pos: 6, .. }),
            "{err:?}"
        );
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn unbounded_budget_is_rejected() {
        let text = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"ga","pop":10},"budget":{"until_optimum":true}}"#;
        assert_eq!(
            JobSpec::from_json_str(text).unwrap_err(),
            ProtocolError::UnboundedBudget
        );
    }

    #[test]
    fn invalid_fields_are_typed() {
        let bad_family = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"quantum","pop":10},"budget":{"generations":5}}"#;
        assert!(matches!(
            JobSpec::from_json_str(bad_family).unwrap_err(),
            ProtocolError::Invalid {
                field: "engine.family",
                ..
            }
        ));
        let zero_pop = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"ga","pop":0},"budget":{"generations":5}}"#;
        assert!(matches!(
            JobSpec::from_json_str(zero_pop).unwrap_err(),
            ProtocolError::Invalid {
                field: "engine.pop",
                ..
            }
        ));
        let no_tenant = r#"{"problem":{"kind":"onemax","len":8},
            "engine":{"family":"ga","pop":10},"budget":{"generations":5}}"#;
        assert_eq!(
            JobSpec::from_json_str(no_tenant).unwrap_err(),
            ProtocolError::Missing("tenant")
        );
    }

    #[test]
    fn snapshot_tags_resolve_through_the_registry() {
        let families = &crate::factory::Registries::builtin().families;
        assert_eq!(families.snapshot_tag("ga"), Some("ga"));
        assert_eq!(families.snapshot_tag("steady"), Some("ga"));
        assert_eq!(families.snapshot_tag("cellular"), Some("cellular"));
        assert_eq!(families.snapshot_tag("island"), Some("archipelago"));
        assert_eq!(families.snapshot_tag("async-steady"), Some("async-steady"));
        assert_eq!(families.snapshot_tag("cga"), Some("cga"));
        assert_eq!(families.snapshot_tag("pcga"), Some("pcga"));
        assert_eq!(families.snapshot_tag("quantum"), None);
    }

    #[test]
    fn async_steady_workers_default_to_four() {
        // A spec with `workers` omitted builds the same engine as one
        // that says `workers: 4` explicitly — defaults live in the
        // family registration, not in the parser.
        let text = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"async-steady","pop":12},"seed":3,"budget":{"generations":5}}"#;
        let implied = JobSpec::from_json_str(text).unwrap();
        assert_eq!(implied.engine.family(), "async-steady");
        let explicit = JobSpec {
            engine: EngineSpec::async_steady(12, 4),
            ..implied.clone()
        };
        let a = crate::factory::build_engine(&implied, None).unwrap();
        let b = crate::factory::build_engine(&explicit, None).unwrap();
        assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
    }
}
