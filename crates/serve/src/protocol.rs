//! Wire protocol: job DTOs and the minimal JSON codec they ride on.
//!
//! The server is zero-dependency, so this module carries its own small
//! JSON value model ([`Json`]) with a recursive-descent parser and a
//! canonical serializer. Job specifications round-trip exactly through
//! this codec (`spec == JobSpec::from_json_str(&spec.to_json_string())`),
//! which the spool relies on to rebuild engines bit-identically after a
//! crash.
//!
//! A job specification looks like:
//!
//! ```json
//! {
//!   "tenant": "acme",
//!   "problem": {"kind": "onemax", "len": 64},
//!   "engine": {"family": "ga", "pop": 40},
//!   "seed": 7,
//!   "budget": {"generations": 50}
//! }
//! ```

use std::fmt;

use pga_core::termination::Termination;

/// Errors raised while decoding or validating wire payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// The JSON text failed to parse.
    Parse {
        /// Byte offset of the failure.
        pos: usize,
        /// What the parser expected.
        message: String,
    },
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but its value is out of range or the wrong type.
    Invalid {
        /// Field name.
        field: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The budget has no criterion that is guaranteed to fire.
    UnboundedBudget,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { pos, message } => write!(f, "JSON parse error at byte {pos}: {message}"),
            Self::Missing(field) => write!(f, "missing required field `{field}`"),
            Self::Invalid { field, message } => write!(f, "invalid field `{field}`: {message}"),
            Self::UnboundedBudget => write!(
                f,
                "budget has no bounded criterion (need generations, evaluations, or wall_clock_ms)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A parsed JSON value (numbers as `f64`; integers are exact to 2^53,
/// far beyond any parameter this protocol carries).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (the canonical serializer preserves
    /// field order, so round-trips are byte-stable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Self, ProtocolError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes canonically (no whitespace, object order preserved,
    /// floats via Rust's shortest round-tripping `Display`).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    fn render(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Self::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> ProtocolError {
        ProtocolError::Parse {
            pos: self.pos,
            message: format!("expected {expected}"),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ProtocolError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(token))
        }
    }

    fn value(&mut self) -> Result<Json, ProtocolError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("closing quote")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("4 hex digits"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("4 hex digits"))?;
                            // Surrogates are not produced by our serializer;
                            // map unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("a character"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("a number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("a number"))
    }

    fn array(&mut self) -> Result<Json, ProtocolError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ProtocolError> {
        self.eat("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }
}

/// Which benchmark problem a job optimizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemSpec {
    /// OneMax over `len` bits.
    OneMax {
        /// Genome length in bits.
        len: usize,
    },
    /// Concatenated deceptive traps: `blocks` traps of `k` bits.
    Trap {
        /// Bits per trap block.
        k: usize,
        /// Number of blocks.
        blocks: usize,
    },
    /// P-PEAKS multimodal generator.
    PPeaks {
        /// Number of peaks.
        p: usize,
        /// Genome length in bits.
        n: usize,
        /// Instance seed.
        seed: u64,
    },
    /// Royal Road: `blocks` schemata of `block` bits.
    RoyalRoad {
        /// Bits per schema.
        block: usize,
        /// Number of schemata.
        blocks: usize,
    },
}

impl ProblemSpec {
    /// Genome length in bits.
    #[must_use]
    pub fn genome_len(&self) -> usize {
        match self {
            Self::OneMax { len } => *len,
            Self::Trap { k, blocks } => k * blocks,
            Self::PPeaks { n, .. } => *n,
            Self::RoyalRoad { block, blocks } => block * blocks,
        }
    }

    /// Short name for tables and status payloads.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::OneMax { .. } => "onemax",
            Self::Trap { .. } => "trap",
            Self::PPeaks { .. } => "ppeaks",
            Self::RoyalRoad { .. } => "royalroad",
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.name().into()))];
        match self {
            Self::OneMax { len } => fields.push(("len".into(), Json::Num(*len as f64))),
            Self::Trap { k, blocks } => {
                fields.push(("k".into(), Json::Num(*k as f64)));
                fields.push(("blocks".into(), Json::Num(*blocks as f64)));
            }
            Self::PPeaks { p, n, seed } => {
                fields.push(("p".into(), Json::Num(*p as f64)));
                fields.push(("n".into(), Json::Num(*n as f64)));
                fields.push(("seed".into(), Json::Num(*seed as f64)));
            }
            Self::RoyalRoad { block, blocks } => {
                fields.push(("block".into(), Json::Num(*block as f64)));
                fields.push(("blocks".into(), Json::Num(*blocks as f64)));
            }
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Missing("problem.kind"))?;
        let dim = |field: &'static str| -> Result<usize, ProtocolError> {
            let v = json
                .get(field.rsplit('.').next().unwrap_or(field))
                .and_then(Json::as_u64)
                .ok_or(ProtocolError::Missing(field))?;
            if v == 0 || v > 1 << 20 {
                return Err(ProtocolError::Invalid {
                    field,
                    message: format!("must be in 1..=2^20, got {v}"),
                });
            }
            usize::try_from(v).map_err(|_| ProtocolError::Invalid {
                field,
                message: "overflows usize".into(),
            })
        };
        match kind {
            "onemax" => Ok(Self::OneMax {
                len: dim("problem.len")?,
            }),
            "trap" => Ok(Self::Trap {
                k: dim("problem.k")?,
                blocks: dim("problem.blocks")?,
            }),
            "ppeaks" => Ok(Self::PPeaks {
                p: dim("problem.p")?,
                n: dim("problem.n")?,
                seed: json
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or(ProtocolError::Missing("problem.seed"))?,
            }),
            "royalroad" => Ok(Self::RoyalRoad {
                block: dim("problem.block")?,
                blocks: dim("problem.blocks")?,
            }),
            other => Err(ProtocolError::Invalid {
                field: "problem.kind",
                message: format!(
                    "unknown problem `{other}` (known: onemax, trap, ppeaks, royalroad)"
                ),
            }),
        }
    }
}

/// Which engine family runs a job, and its structural parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineSpec {
    /// Panmictic generational GA.
    Ga {
        /// Population size.
        pop: usize,
        /// Elites preserved per generation.
        elitism: usize,
    },
    /// Panmictic steady-state GA (worst-if-better replacement).
    SteadyState {
        /// Population size.
        pop: usize,
    },
    /// Cellular GA on a `rows × cols` torus.
    Cellular {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Ring-of-islands archipelago of generational GAs.
    Island {
        /// Number of islands.
        islands: usize,
        /// Population per island.
        pop: usize,
    },
    /// Barrier-free asynchronous steady-state master–slave GA over the
    /// streaming cluster simulator (`workers` virtual evaluation nodes):
    /// results fold into the population as they arrive instead of at a
    /// batch barrier, under a deterministic virtual clock.
    AsyncSteady {
        /// Population size.
        pop: usize,
        /// Virtual worker nodes evaluating in flight.
        workers: usize,
    },
}

impl EngineSpec {
    /// Short family name for tables and status payloads.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            Self::Ga { .. } => "ga",
            Self::SteadyState { .. } => "steady",
            Self::Cellular { .. } => "cellular",
            Self::Island { .. } => "island",
            Self::AsyncSteady { .. } => "async-steady",
        }
    }

    /// The engine tag its snapshots will carry (see
    /// `Snapshot::engine_tag`), used to dispatch spool restores.
    #[must_use]
    pub fn snapshot_tag(&self) -> &'static str {
        match self {
            Self::Ga { .. } | Self::SteadyState { .. } => "ga",
            Self::Cellular { .. } => "cellular",
            Self::Island { .. } => "archipelago",
            Self::AsyncSteady { .. } => "async-steady",
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("family".to_string(), Json::Str(self.family().into()))];
        match self {
            Self::Ga { pop, elitism } => {
                fields.push(("pop".into(), Json::Num(*pop as f64)));
                fields.push(("elitism".into(), Json::Num(*elitism as f64)));
            }
            Self::SteadyState { pop } => fields.push(("pop".into(), Json::Num(*pop as f64))),
            Self::Cellular { rows, cols } => {
                fields.push(("rows".into(), Json::Num(*rows as f64)));
                fields.push(("cols".into(), Json::Num(*cols as f64)));
            }
            Self::Island { islands, pop } => {
                fields.push(("islands".into(), Json::Num(*islands as f64)));
                fields.push(("pop".into(), Json::Num(*pop as f64)));
            }
            Self::AsyncSteady { pop, workers } => {
                fields.push(("pop".into(), Json::Num(*pop as f64)));
                fields.push(("workers".into(), Json::Num(*workers as f64)));
            }
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let family = json
            .get("family")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Missing("engine.family"))?;
        let dim = |key: &str, field: &'static str, default: Option<u64>| {
            let v = match json.get(key).map(Json::as_u64) {
                Some(Some(v)) => v,
                Some(None) => {
                    return Err(ProtocolError::Invalid {
                        field,
                        message: "must be a non-negative integer".into(),
                    })
                }
                None => default.ok_or(ProtocolError::Missing(field))?,
            };
            if v == 0 || v > 1 << 16 {
                return Err(ProtocolError::Invalid {
                    field,
                    message: format!("must be in 1..=65536, got {v}"),
                });
            }
            Ok(v as usize)
        };
        match family {
            "ga" => Ok(Self::Ga {
                pop: dim("pop", "engine.pop", None)?,
                elitism: match json.get("elitism").map(Json::as_u64) {
                    Some(Some(e)) if e <= 1 << 16 => e as usize,
                    None => 1,
                    _ => {
                        return Err(ProtocolError::Invalid {
                            field: "engine.elitism",
                            message: "must be a small non-negative integer".into(),
                        })
                    }
                },
            }),
            "steady" => Ok(Self::SteadyState {
                pop: dim("pop", "engine.pop", None)?,
            }),
            "cellular" => Ok(Self::Cellular {
                rows: dim("rows", "engine.rows", None)?,
                cols: dim("cols", "engine.cols", None)?,
            }),
            "island" => Ok(Self::Island {
                islands: dim("islands", "engine.islands", Some(4))?,
                pop: dim("pop", "engine.pop", None)?,
            }),
            "async-steady" => Ok(Self::AsyncSteady {
                pop: dim("pop", "engine.pop", None)?,
                workers: dim("workers", "engine.workers", Some(4))?,
            }),
            other => Err(ProtocolError::Invalid {
                field: "engine.family",
                message: format!(
                    "unknown family `{other}` (known: ga, steady, cellular, island, async-steady)"
                ),
            }),
        }
    }
}

/// A job's stopping budget. At least one *bounded* criterion
/// (`generations`, `evaluations`, or `wall_clock_ms`) is required.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Budget {
    /// Stop after this many generations.
    pub generations: Option<u64>,
    /// Stop after this many fitness evaluations.
    pub evaluations: Option<u64>,
    /// Stop after this much wall-clock time, in milliseconds, measured as
    /// *active* scheduler time (time actually spent stepping the job, so
    /// multi-tenant queueing does not eat a job's budget).
    pub wall_clock_ms: Option<u64>,
    /// Stop once best fitness reaches this target.
    pub target: Option<f64>,
    /// Stop at the problem's known optimum.
    pub until_optimum: bool,
}

impl Budget {
    /// Converts to the core [`Termination`] rule, rejecting unbounded
    /// budgets (which would let a job hold pool slices forever).
    pub fn to_termination(&self) -> Result<Termination, ProtocolError> {
        let mut t = Termination::new();
        if let Some(g) = self.generations {
            t = t.max_generations(g);
        }
        if let Some(e) = self.evaluations {
            t = t.max_evaluations(e);
        }
        if let Some(ms) = self.wall_clock_ms {
            t = t.wall_clock(std::time::Duration::from_millis(ms));
        }
        if let Some(target) = self.target {
            t = t.target_fitness(target);
        }
        if self.until_optimum {
            t = t.until_optimum();
        }
        if !t.is_bounded() {
            return Err(ProtocolError::UnboundedBudget);
        }
        Ok(t)
    }

    fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(g) = self.generations {
            fields.push(("generations".to_string(), Json::Num(g as f64)));
        }
        if let Some(e) = self.evaluations {
            fields.push(("evaluations".to_string(), Json::Num(e as f64)));
        }
        if let Some(ms) = self.wall_clock_ms {
            fields.push(("wall_clock_ms".to_string(), Json::Num(ms as f64)));
        }
        if let Some(t) = self.target {
            fields.push(("target".to_string(), Json::Num(t)));
        }
        if self.until_optimum {
            fields.push(("until_optimum".to_string(), Json::Bool(true)));
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let int = |key: &str, field: &'static str| match json.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or(ProtocolError::Invalid {
                field,
                message: "must be a non-negative integer".into(),
            }),
        };
        let budget = Self {
            generations: int("generations", "budget.generations")?,
            evaluations: int("evaluations", "budget.evaluations")?,
            wall_clock_ms: int("wall_clock_ms", "budget.wall_clock_ms")?,
            target: match json.get("target") {
                None => None,
                Some(v) => Some(v.as_f64().ok_or(ProtocolError::Invalid {
                    field: "budget.target",
                    message: "must be a number".into(),
                })?),
            },
            until_optimum: match json.get("until_optimum") {
                None => false,
                Some(v) => v.as_bool().ok_or(ProtocolError::Invalid {
                    field: "budget.until_optimum",
                    message: "must be a boolean".into(),
                })?,
            },
        };
        budget.to_termination()?;
        Ok(budget)
    }
}

/// One optimization job as submitted over the wire: who wants it
/// (`tenant`), what to optimize (`problem`), which engine family to run
/// it on (`engine`), the RNG seed, and when to stop (`budget`).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Tenant identity used for fair scheduling (deficit round-robin).
    pub tenant: String,
    /// The problem to optimize.
    pub problem: ProblemSpec,
    /// The engine family and its structure.
    pub engine: EngineSpec,
    /// RNG seed — the sole source of run randomness, so a spec replays
    /// bit-identically.
    pub seed: u64,
    /// Stopping rule.
    pub budget: Budget,
}

impl JobSpec {
    /// Decodes and validates a specification from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ProtocolError> {
        let json = Json::parse(text)?;
        Self::from_json(&json)
    }

    /// Decodes and validates a specification from a parsed value.
    pub fn from_json(json: &Json) -> Result<Self, ProtocolError> {
        let tenant = json
            .get("tenant")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::Missing("tenant"))?;
        if tenant.is_empty() || tenant.len() > 128 {
            return Err(ProtocolError::Invalid {
                field: "tenant",
                message: "must be 1..=128 characters".into(),
            });
        }
        Ok(Self {
            tenant: tenant.to_string(),
            problem: ProblemSpec::from_json(
                json.get("problem")
                    .ok_or(ProtocolError::Missing("problem"))?,
            )?,
            engine: EngineSpec::from_json(
                json.get("engine").ok_or(ProtocolError::Missing("engine"))?,
            )?,
            seed: json.get("seed").and_then(Json::as_u64).unwrap_or(0),
            budget: Budget::from_json(json.get("budget").ok_or(ProtocolError::Missing("budget"))?)?,
        })
    }

    /// Canonical JSON encoding; round-trips exactly through
    /// [`JobSpec::from_json_str`] (the spool persistence contract).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("tenant".into(), Json::Str(self.tenant.clone())),
            ("problem".into(), self.problem.to_json()),
            ("engine".into(), self.engine.to_json()),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("budget".into(), self.budget.to_json()),
        ])
        .to_json_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            tenant: "acme".into(),
            problem: ProblemSpec::Trap { k: 4, blocks: 8 },
            engine: EngineSpec::Island {
                islands: 4,
                pop: 20,
            },
            seed: 42,
            budget: Budget {
                generations: Some(50),
                until_optimum: true,
                ..Budget::default()
            },
        }
    }

    #[test]
    fn spec_roundtrips_exactly() {
        let original = spec();
        let text = original.to_json_string();
        let back = JobSpec::from_json_str(&text).unwrap();
        assert_eq!(back, original);
        // Canonical: serializing again is byte-identical.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn all_families_and_problems_roundtrip() {
        let problems = [
            ProblemSpec::OneMax { len: 64 },
            ProblemSpec::Trap { k: 4, blocks: 8 },
            ProblemSpec::PPeaks {
                p: 10,
                n: 64,
                seed: 3,
            },
            ProblemSpec::RoyalRoad {
                block: 8,
                blocks: 8,
            },
        ];
        let engines = [
            EngineSpec::Ga {
                pop: 30,
                elitism: 1,
            },
            EngineSpec::SteadyState { pop: 30 },
            EngineSpec::Cellular { rows: 6, cols: 5 },
            EngineSpec::Island {
                islands: 3,
                pop: 10,
            },
            EngineSpec::AsyncSteady {
                pop: 24,
                workers: 6,
            },
        ];
        for problem in &problems {
            for engine in &engines {
                let s = JobSpec {
                    tenant: "t".into(),
                    problem: problem.clone(),
                    engine: engine.clone(),
                    seed: 9,
                    budget: Budget {
                        evaluations: Some(1000),
                        ..Budget::default()
                    },
                };
                let back = JobSpec::from_json_str(&s.to_json_string()).unwrap();
                assert_eq!(back, s);
            }
        }
    }

    #[test]
    fn json_parser_handles_nesting_strings_and_numbers() {
        let v =
            Json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"\\\nA"},"d":null,"e":true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\"\\\nA"
        );
        assert_eq!(v.get("d").unwrap(), &Json::Null);
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert!(
            matches!(err, ProtocolError::Parse { pos: 6, .. }),
            "{err:?}"
        );
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn unbounded_budget_is_rejected() {
        let text = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"ga","pop":10},"budget":{"until_optimum":true}}"#;
        assert_eq!(
            JobSpec::from_json_str(text).unwrap_err(),
            ProtocolError::UnboundedBudget
        );
    }

    #[test]
    fn invalid_fields_are_typed() {
        let bad_family = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"quantum","pop":10},"budget":{"generations":5}}"#;
        assert!(matches!(
            JobSpec::from_json_str(bad_family).unwrap_err(),
            ProtocolError::Invalid {
                field: "engine.family",
                ..
            }
        ));
        let zero_pop = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"ga","pop":0},"budget":{"generations":5}}"#;
        assert!(matches!(
            JobSpec::from_json_str(zero_pop).unwrap_err(),
            ProtocolError::Invalid {
                field: "engine.pop",
                ..
            }
        ));
        let no_tenant = r#"{"problem":{"kind":"onemax","len":8},
            "engine":{"family":"ga","pop":10},"budget":{"generations":5}}"#;
        assert_eq!(
            JobSpec::from_json_str(no_tenant).unwrap_err(),
            ProtocolError::Missing("tenant")
        );
    }

    #[test]
    fn snapshot_tags_match_engine_families() {
        assert_eq!(EngineSpec::Ga { pop: 2, elitism: 0 }.snapshot_tag(), "ga");
        assert_eq!(EngineSpec::SteadyState { pop: 2 }.snapshot_tag(), "ga");
        assert_eq!(
            EngineSpec::Cellular { rows: 2, cols: 2 }.snapshot_tag(),
            "cellular"
        );
        assert_eq!(
            EngineSpec::Island { islands: 2, pop: 2 }.snapshot_tag(),
            "archipelago"
        );
        assert_eq!(
            EngineSpec::AsyncSteady { pop: 2, workers: 2 }.snapshot_tag(),
            "async-steady"
        );
    }

    #[test]
    fn async_steady_workers_default_to_four() {
        let text = r#"{"tenant":"t","problem":{"kind":"onemax","len":8},
            "engine":{"family":"async-steady","pop":12},"budget":{"generations":5}}"#;
        let spec = JobSpec::from_json_str(text).unwrap();
        assert_eq!(
            spec.engine,
            EngineSpec::AsyncSteady {
                pop: 12,
                workers: 4
            }
        );
    }
}
