//! The multi-tenant job runtime: slice scheduling, deficit round-robin
//! fairness, admission control, and crash-safe checkpointing.
//!
//! One scheduler thread owns the loop. Each turn it picks up to
//! `max_batch` runnable jobs — at most one per tenant per pass, in
//! deficit-round-robin order — takes their engines out of the shared
//! state, and runs one bounded *slice* per job **in parallel on the
//! global work-stealing pool** (the same persistent pool the engines
//! themselves use for fitness evaluation). A slice executes at most the
//! tenant's current step allowance, re-checking termination *before*
//! every step — exactly the check-then-step contract of the core
//! [`Driver`](pga_core::driver::Driver) — so how a run is sliced can
//! never change its trajectory, which is what makes crash recovery
//! bit-identical.
//!
//! After every slice the job's engine snapshot and counters are written
//! to the [`Spool`]; a runtime restarted over the same spool directory
//! re-admits every non-terminal job and continues it from its last
//! completed slice.
//!
//! ## Fairness
//!
//! Tenants are scheduled by deficit round-robin (DRR) in units of
//! *engine steps*: each time a tenant is visited it earns
//! `quantum_steps`, a job slice may spend at most
//! `min(deficit, steps_per_slice)` steps, and the steps actually
//! executed are charged back. A tenant with 50 queued jobs therefore
//! gets the same step throughput as a tenant with one — no starvation,
//! bounded by one slice of lag.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pga_cluster::chaos::{ChaosInjector, SliceChaos};
use pga_core::driver::Clock;
use pga_core::erased::BoxedEngine;
use pga_core::snapshot::Snapshot;
use pga_core::termination::{StopReason, Termination};
use pga_observe::{
    exponential_bounds, Event, EventKind, JsonlStream, MetricsSnapshot, Recorder, Registry,
};

use crate::factory::build_engine;
use crate::job::{Job, JobId, JobProgress, JobState};
use crate::protocol::{JobSpec, ProtocolError};
use crate::spool::{JobRecord, Spool};

/// Runtime tuning knobs (validated by `ServeBuilder`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Directory for per-job checkpoint files.
    pub spool_dir: PathBuf,
    /// Admission bound: maximum live (non-terminal) jobs.
    pub max_jobs: usize,
    /// Hard cap on engine steps per slice.
    pub steps_per_slice: u64,
    /// Steps a tenant earns per scheduling visit (DRR quantum).
    pub quantum_steps: u64,
    /// Maximum jobs sliced concurrently per scheduler turn.
    pub max_batch: usize,
    /// `Retry-After` hint (milliseconds) returned when shedding.
    pub retry_after_ms: u64,
    /// Per-job event stream capacity (lines) before drop-oldest.
    pub stream_capacity: usize,
    /// Resurrections granted to a crashing job before it is quarantined
    /// as [`JobState::Poisoned`].
    pub retry_budget: u64,
    /// Base of the exponential resurrection backoff (`base × 2^(n-1)`
    /// milliseconds before retry *n* becomes schedulable).
    pub backoff_base_ms: u64,
    /// Watchdog: a yielded slice that took longer than this is treated
    /// as stalled — its engine is discarded and the job replays from its
    /// last good snapshot. `0` disables the watchdog.
    pub slice_deadline_ms: u64,
    /// Largest request body `POST /jobs` accepts (bytes); larger
    /// `Content-Length`s are rejected `413` before the body is read.
    pub max_body_bytes: usize,
    /// Deterministic fault injection (`None` in production: the no-op
    /// default costs one branch per guarded operation).
    pub chaos: Option<Arc<ChaosInjector>>,
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The server is at its live-job bound; retry after the hinted delay.
    Shed {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The runtime is shutting down and admits nothing.
    ShuttingDown,
    /// The spec failed validation or the engine could not be built.
    Invalid(ProtocolError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shed { retry_after_ms } => {
                write!(f, "queue full, retry after {retry_after_ms} ms")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::Invalid(e) => write!(f, "invalid job: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What a runtime found in its spool at startup.
#[derive(Clone, Debug, Default)]
pub struct RecoverReport {
    /// Jobs re-admitted and resumed from their last slice.
    pub resumed: usize,
    /// Terminal jobs whose status was retained.
    pub terminal: usize,
    /// Spool files skipped as corrupt or unbuildable.
    pub skipped: usize,
}

/// What `POST /drain` persisted and left behind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Runnable (non-terminal) jobs whose checkpoint was persisted.
    pub persisted: usize,
    /// Runnable jobs whose persist failed even after retries.
    pub failed: usize,
    /// Terminal jobs at drain time (already durable).
    pub terminal: usize,
}

/// Liveness/readiness summary for `GET /healthz` and `GET /readyz`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// `true` while spool persistence is failing and jobs run on
    /// in-memory checkpoints only.
    pub degraded: bool,
    /// `true` once a drain started: admission is closed.
    pub draining: bool,
    /// Live (non-terminal) jobs.
    pub live: usize,
    /// Jobs waiting in tenant queues.
    pub queued: usize,
    /// Jobs quarantined in [`JobState::Poisoned`].
    pub poisoned: usize,
}

struct Tenant {
    deficit: u64,
    queue: VecDeque<JobId>,
    completed_slices: u64,
}

struct State {
    jobs: BTreeMap<JobId, Job>,
    tenants: BTreeMap<String, Tenant>,
    ring: VecDeque<String>,
    next_id: u64,
    live: usize,
    stopping: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the scheduler thread (new work or shutdown).
    wake: Condvar,
    /// Broadcast after every reintegrated batch (progress observers).
    progress: Condvar,
    registry: Mutex<Registry>,
    /// Crash simulation: when set, the scheduler discards its in-flight
    /// batch instead of persisting and reintegrating it.
    hard_drop: AtomicBool,
    /// Spool persistence is failing; jobs continue on in-memory
    /// checkpoints only. Cleared by the next successful persist.
    degraded: AtomicBool,
    /// A drain started: admission closed, scheduler idles.
    draining: AtomicBool,
    /// Jobs currently checked out on the slice pool (drain barrier).
    in_flight: std::sync::atomic::AtomicUsize,
    config: ServeConfig,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How one slice ended.
enum SliceEnd {
    /// Allowance exhausted; the job remains runnable.
    Yield,
    /// A termination criterion fired.
    Done(StopReason),
    /// The cancel flag was observed.
    Cancelled,
    /// The engine panicked mid-step, or the watchdog reclassified a
    /// stalled slice. The crash path: deltas are discarded and the job
    /// is resurrected from its last good snapshot (or quarantined once
    /// its retry budget is spent).
    Failed(String),
}

/// A job checked out of the shared state for one slice. Carries copies
/// of everything the persist step needs, so spool writes never take the
/// state lock.
struct SliceTask {
    id: JobId,
    tenant: String,
    spec: JobSpec,
    engine: Option<BoxedEngine>,
    termination: Termination,
    cancel: Arc<AtomicBool>,
    allowance: u64,
    consumed: Duration,
    prior_slices: u64,
    prior_steps: u64,
    prior_retries: u64,
    first_slice: bool,
    /// Scripted fault for this slice (always `None` without chaos).
    chaos: SliceChaos,
    // Filled in by the slice:
    steps_run: u64,
    /// Evaluations folded into the population this slice (poll-step
    /// progress; equals step-count × population for synchronous engines).
    evals_folded: u64,
    slice_time: Duration,
    end: SliceEnd,
    progress: JobProgress,
    snapshot: Option<pga_core::Snapshot>,
}

/// The job runtime. Construct through `ServeBuilder` (crate root);
/// drop or [`shutdown`](Self::shutdown) to stop the scheduler thread.
pub struct ServeRuntime {
    shared: Arc<Shared>,
    spool: Arc<Spool>,
    worker: Mutex<Option<JoinHandle<()>>>,
    recover_report: RecoverReport,
}

impl ServeRuntime {
    /// Opens the spool, recovers every job found in it, and starts the
    /// scheduler thread.
    pub(crate) fn start(config: ServeConfig) -> Result<Self, std::io::Error> {
        let mut spool = Spool::open(&config.spool_dir)?;
        spool.set_chaos(config.chaos.clone());
        let spool = Arc::new(spool);
        let mut registry = Registry::default();
        registry.histogram_with_bounds("serve.slice_micros", exponential_bounds(50.0, 2.0, 18));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                tenants: BTreeMap::new(),
                ring: VecDeque::new(),
                next_id: 0,
                live: 0,
                stopping: false,
            }),
            wake: Condvar::new(),
            progress: Condvar::new(),
            registry: Mutex::new(registry),
            hard_drop: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
            config,
        });
        let recover_report = recover(&shared, &spool);
        let worker = {
            let shared = Arc::clone(&shared);
            let spool = Arc::clone(&spool);
            std::thread::Builder::new()
                .name("pga-serve-scheduler".into())
                .spawn(move || scheduler_loop(&shared, &spool))?
        };
        Ok(Self {
            shared,
            spool,
            worker: Mutex::new(Some(worker)),
            recover_report,
        })
    }

    /// What recovery found in the spool at startup.
    #[must_use]
    pub fn recover_report(&self) -> &RecoverReport {
        &self.recover_report
    }

    /// The spool directory backing this runtime.
    #[must_use]
    pub fn spool_dir(&self) -> &std::path::Path {
        self.spool.dir()
    }

    /// Request-body cap enforced by the HTTP front end.
    #[must_use]
    pub fn max_body_bytes(&self) -> usize {
        self.shared.config.max_body_bytes
    }

    /// The armed chaos injector, when fault drills are on.
    #[must_use]
    pub fn chaos(&self) -> Option<&Arc<ChaosInjector>> {
        self.shared.config.chaos.as_ref()
    }

    /// Submits a job. Applies admission control *before* building the
    /// engine, so shedding is cheap under overload.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let termination = spec.budget.to_termination().map_err(SubmitError::Invalid)?;
        let id = {
            let mut st = lock(&self.shared.state);
            if st.stopping || self.shared.draining.load(Ordering::Acquire) {
                return Err(SubmitError::ShuttingDown);
            }
            if st.live >= self.shared.config.max_jobs {
                lock(&self.shared.registry).inc("serve.shed", 1);
                return Err(SubmitError::Shed {
                    retry_after_ms: self.shared.config.retry_after_ms,
                });
            }
            // Reserve the slot and id under the lock; build outside it.
            st.live += 1;
            let id = JobId(st.next_id);
            st.next_id += 1;
            id
        };
        let stream = JsonlStream::with_capacity(self.shared.config.stream_capacity);
        let engine = match build_engine(&spec, Some(stream.clone())) {
            Ok(engine) => engine,
            Err(e) => {
                let mut st = lock(&self.shared.state);
                st.live -= 1;
                return Err(SubmitError::Invalid(e));
            }
        };
        let job = Job::new(id, spec, termination, engine, stream);
        let mut st = lock(&self.shared.state);
        enqueue(&mut st, job);
        lock(&self.shared.registry).inc("serve.submitted", 1);
        drop(st);
        self.shared.wake.notify_all();
        Ok(id)
    }

    /// The job's current lifecycle state.
    #[must_use]
    pub fn state(&self, id: JobId) -> Option<JobState> {
        lock(&self.shared.state)
            .jobs
            .get(&id)
            .map(|j| j.state.clone())
    }

    /// The job's last mirrored progress counters.
    #[must_use]
    pub fn progress_of(&self, id: JobId) -> Option<JobProgress> {
        lock(&self.shared.state).jobs.get(&id).map(|j| j.progress)
    }

    /// The job's status document (JSON text), as served by
    /// `GET /jobs/:id`.
    #[must_use]
    pub fn status_json(&self, id: JobId) -> Option<String> {
        lock(&self.shared.state)
            .jobs
            .get(&id)
            .map(|j| j.status_json().to_json_string())
    }

    /// A handle on the job's JSONL event stream (shared buffer: lines
    /// drained by one handle are gone from all). The stream closes when
    /// the job reaches a terminal state.
    #[must_use]
    pub fn events(&self, id: JobId) -> Option<JsonlStream> {
        lock(&self.shared.state)
            .jobs
            .get(&id)
            .map(|j| j.stream.clone())
    }

    /// All job ids known to this runtime, ascending.
    #[must_use]
    pub fn job_ids(&self) -> Vec<JobId> {
        lock(&self.shared.state).jobs.keys().copied().collect()
    }

    /// Completed slices per tenant (fairness measurements).
    #[must_use]
    pub fn tenant_slices(&self) -> BTreeMap<String, u64> {
        lock(&self.shared.state)
            .tenants
            .iter()
            .map(|(name, t)| (name.clone(), t.completed_slices))
            .collect()
    }

    /// Requests cooperative cancellation. Returns `false` for unknown or
    /// already-terminal jobs. A queued job is cancelled immediately; a
    /// job whose engine is out on a slice stops at its next step
    /// boundary.
    pub fn cancel(&self, id: JobId) -> bool {
        let record = {
            let mut st = lock(&self.shared.state);
            let Some(job) = st.jobs.get_mut(&id) else {
                return false;
            };
            if job.state.is_terminal() {
                return false;
            }
            job.request_cancel();
            if job.engine.is_none() && job.state == JobState::Running {
                // Mid-slice: the slice loop will observe the flag.
                return true;
            }
            // Still queued: finalize right here.
            let engine = job.engine.take();
            job.state = JobState::Cancelled;
            job.stream.close();
            st.live -= 1;
            let record = st.jobs.get(&id).map(|job| JobRecord {
                id,
                spec: job.spec.clone(),
                state: JobState::Cancelled,
                slices: job.slices,
                steps: job.steps,
                consumed: job.consumed,
                retries: job.retries,
                progress: job.progress,
                engine_snapshot: engine.map(|e| e.snapshot()),
            });
            lock(&self.shared.registry).inc("serve.cancelled", 1);
            record
        };
        if let Some(record) = record {
            let _ = self.spool.save(&record);
        }
        self.shared.progress.notify_all();
        true
    }

    /// Blocks until the job reaches a terminal state or `timeout`
    /// passes; `true` on terminal.
    pub fn wait(&self, id: JobId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared.state);
        loop {
            match st.jobs.get(&id) {
                None => return false,
                Some(job) if job.state.is_terminal() => return true,
                Some(_) => {}
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .shared
                .progress
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Blocks until every admitted job is terminal or `timeout` passes;
    /// `true` when all are terminal.
    pub fn wait_all(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared.state);
        loop {
            if st.live == 0 {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .shared
                .progress
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// A point-in-time copy of the runtime's metrics registry.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        {
            let st = lock(&self.shared.state);
            let mut reg = lock(&self.shared.registry);
            reg.set_gauge("serve.jobs_live", st.live as f64);
            reg.set_gauge("serve.jobs_total", st.jobs.len() as f64);
            let queued: usize = st.tenants.values().map(|t| t.queue.len()).sum();
            reg.set_gauge("serve.jobs_queued", queued as f64);
            reg.set_gauge("serve.tenants", st.tenants.len() as f64);
            let poisoned = st
                .jobs
                .values()
                .filter(|j| matches!(j.state, JobState::Poisoned(_)))
                .count();
            reg.set_gauge("serve.jobs_poisoned", poisoned as f64);
            reg.set_gauge(
                "serve.spool_degraded",
                f64::from(u8::from(self.shared.degraded.load(Ordering::Acquire))),
            );
        }
        lock(&self.shared.registry).snapshot()
    }

    /// Liveness/readiness summary for the health endpoints.
    #[must_use]
    pub fn health(&self) -> HealthReport {
        let st = lock(&self.shared.state);
        HealthReport {
            degraded: self.shared.degraded.load(Ordering::Acquire),
            draining: self.shared.draining.load(Ordering::Acquire) || st.stopping,
            live: st.live,
            queued: st.tenants.values().map(|t| t.queue.len()).sum(),
            poisoned: st
                .jobs
                .values()
                .filter(|j| matches!(j.state, JobState::Poisoned(_)))
                .count(),
        }
    }

    /// `true` while the runtime accepts new jobs (readiness probe).
    #[must_use]
    pub fn ready(&self) -> bool {
        !self.shared.draining.load(Ordering::Acquire) && !lock(&self.shared.state).stopping
    }

    /// Graceful drain: closes admission, waits for the in-flight slice
    /// batch to reintegrate, persists every runnable job's current
    /// checkpoint, and reports counts. The scheduler thread stays alive
    /// but idle; jobs remain resumable by a runtime restarted over the
    /// same spool. Idempotent — a second drain re-persists and
    /// re-counts.
    pub fn drain(&self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        // Wait until no engine is out on the slice pool.
        {
            let mut st = lock(&self.shared.state);
            while self.shared.in_flight.load(Ordering::Acquire) > 0 {
                let (guard, _) = self
                    .shared
                    .progress
                    .wait_timeout(st, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
        let mut report = DrainReport::default();
        let records: Vec<JobRecord> = {
            let st = lock(&self.shared.state);
            st.jobs
                .values()
                .filter(|job| !job.state.is_terminal())
                .map(|job| JobRecord {
                    id: job.id,
                    spec: job.spec.clone(),
                    state: job.state.clone(),
                    slices: job.slices,
                    steps: job.steps,
                    consumed: job.consumed,
                    retries: job.retries,
                    progress: job.progress,
                    engine_snapshot: job.engine.as_ref().map(|e| e.snapshot()),
                })
                .collect()
        };
        report.terminal = {
            let st = lock(&self.shared.state);
            st.jobs.values().filter(|j| j.state.is_terminal()).count()
        };
        for record in &records {
            if persist_with_retry(self.shared.as_ref(), &self.spool, record) {
                report.persisted += 1;
            } else {
                report.failed += 1;
            }
        }
        lock(&self.shared.registry).inc("serve.drains", 1);
        report
    }

    /// Plain-text metrics document, as served by `GET /metrics`.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(&self.metrics_snapshot())
    }

    fn stop(&self, hard: bool) {
        self.shared.hard_drop.store(hard, Ordering::Release);
        {
            let mut st = lock(&self.shared.state);
            st.stopping = true;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = lock(&self.worker).take() {
            let _ = worker.join();
        }
    }

    /// Graceful shutdown: stops admitting, finishes the in-flight slice
    /// batch (persisting it), and joins the scheduler thread. All
    /// non-terminal jobs remain in the spool for the next start.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.stop(false);
    }

    /// Crash simulation: stops like a `kill -9` at a slice boundary —
    /// the in-flight batch is **discarded without persisting**, so the
    /// spool holds each job's previous slice. A runtime restarted over
    /// the same spool replays the lost work bit-identically.
    pub fn abandon(&self) {
        self.stop(true);
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.stop(false);
    }
}

/// Admits `job` into the shared state: indexes it and queues it on its
/// tenant (registering the tenant in the ring on first sight).
fn enqueue(st: &mut State, job: Job) {
    let tenant_name = job.spec.tenant.clone();
    let id = job.id;
    st.jobs.insert(id, job);
    if !st.tenants.contains_key(&tenant_name) {
        st.tenants.insert(
            tenant_name.clone(),
            Tenant {
                deficit: 0,
                queue: VecDeque::new(),
                completed_slices: 0,
            },
        );
        st.ring.push_back(tenant_name.clone());
    }
    if let Some(t) = st.tenants.get_mut(&tenant_name) {
        t.queue.push_back(id);
    }
}

/// Rebuilds jobs from the spool at startup. Terminal records become
/// status-only tombstones; non-terminal records get a fresh engine
/// (rebuilt deterministically from the spec) restored from their nested
/// snapshot and re-enter the queue. A record whose engine cannot be
/// rebuilt or restored is marked [`JobState::Failed`], never dropped.
fn recover(shared: &Shared, spool: &Spool) -> RecoverReport {
    let mut report = RecoverReport::default();
    let scan = match spool.load_all() {
        Ok(scan) => scan,
        Err(_) => return report,
    };
    report.skipped = scan.skipped.len();
    let mut st = lock(&shared.state);
    for record in scan.records {
        st.next_id = st.next_id.max(record.id.0 + 1);
        let stream = JsonlStream::with_capacity(shared.config.stream_capacity);
        let mut tombstone = |st: &mut State, state: JobState, stream: JsonlStream| {
            stream.close();
            let mut job = Job::tombstone(
                record.id,
                record.spec.clone(),
                Termination::new().max_generations(0),
                state,
                stream,
            );
            job.slices = record.slices;
            job.steps = record.steps;
            job.consumed = record.consumed;
            job.retries = record.retries;
            job.progress = record.progress;
            st.jobs.insert(record.id, job);
            report.terminal += 1;
        };
        if record.state.is_terminal() {
            tombstone(&mut st, record.state.clone(), stream);
            continue;
        }
        let termination = match record.spec.budget.to_termination() {
            Ok(t) => t,
            Err(e) => {
                tombstone(
                    &mut st,
                    JobState::Failed(format!("bad budget: {e}")),
                    stream,
                );
                continue;
            }
        };
        let mut engine = match build_engine(&record.spec, Some(stream.clone())) {
            Ok(engine) => engine,
            Err(e) => {
                tombstone(
                    &mut st,
                    JobState::Failed(format!("rebuild failed: {e}")),
                    stream,
                );
                continue;
            }
        };
        if let Some(snapshot) = &record.engine_snapshot {
            // Dispatch on the header tag before attempting a decode: a
            // snapshot from the wrong family is a corrupt spool pairing.
            // The tag comes from the family registry — the same source
            // the engine was built from, so a registered family is
            // always resolvable here.
            let Some(expected) = crate::factory::Registries::builtin()
                .families
                .snapshot_tag(record.spec.engine.family())
            else {
                tombstone(
                    &mut st,
                    JobState::Failed(format!(
                        "unknown engine family `{}`",
                        record.spec.engine.family()
                    )),
                    stream,
                );
                continue;
            };
            if snapshot.engine_tag() != expected {
                tombstone(
                    &mut st,
                    JobState::Failed(format!(
                        "spool snapshot is `{}`, spec wants `{expected}`",
                        snapshot.engine_tag()
                    )),
                    stream,
                );
                continue;
            }
            if let Err(e) = engine.restore(snapshot) {
                tombstone(
                    &mut st,
                    JobState::Failed(format!("restore failed: {e:?}")),
                    stream,
                );
                continue;
            }
        }
        let mut job = Job::new(record.id, record.spec.clone(), termination, engine, stream);
        job.state = record.state.clone();
        job.slices = record.slices;
        job.steps = record.steps;
        job.consumed = record.consumed;
        job.retries = record.retries;
        job.resume_from = record.engine_snapshot.as_ref().map(Snapshot::to_bytes);
        job.progress = record.progress;
        st.live += 1;
        enqueue(&mut st, job);
        report.resumed += 1;
    }
    drop(st);
    let mut reg = lock(&shared.registry);
    reg.inc("serve.recovered", report.resumed as u64);
    reg.inc("serve.recover_skipped", report.skipped as u64);
    report
}

/// Picks the next batch: visits tenants round-robin, granting each at
/// most one job slice per pass, until `max_batch` jobs are selected or a
/// full silent pass happens.
fn select_batch(st: &mut State, config: &ServeConfig) -> Vec<SliceTask> {
    let mut batch = Vec::new();
    let deficit_cap = config.steps_per_slice.max(config.quantum_steps) * 2;
    let mut remaining = st.ring.len();
    let now = Instant::now();
    while batch.len() < config.max_batch && remaining > 0 {
        remaining -= 1;
        let Some(tenant_name) = st.ring.pop_front() else {
            break;
        };
        st.ring.push_back(tenant_name.clone());
        // Skip terminal ids that were cancelled while queued, and defer
        // (requeue without selecting) jobs inside their resurrection
        // backoff window.
        let mut deferred: Vec<JobId> = Vec::new();
        let id = loop {
            let Some(t) = st.tenants.get_mut(&tenant_name) else {
                break None;
            };
            match t.queue.pop_front() {
                None => {
                    t.deficit = 0;
                    break None;
                }
                Some(id) => match st.jobs.get(&id) {
                    Some(j) if j.state.is_terminal() => {}
                    Some(j) if j.backoff_pending(now) => deferred.push(id),
                    Some(_) => break Some(id),
                    None => {}
                },
            }
        };
        if let Some(t) = st.tenants.get_mut(&tenant_name) {
            t.queue.extend(deferred);
        }
        let Some(id) = id else { continue };
        let allowance = {
            let Some(t) = st.tenants.get_mut(&tenant_name) else {
                continue;
            };
            t.deficit = (t.deficit + config.quantum_steps).min(deficit_cap);
            t.deficit.min(config.steps_per_slice)
        };
        let Some(job) = st.jobs.get_mut(&id) else {
            continue;
        };
        let Some(engine) = job.engine.take() else {
            continue;
        };
        let first_slice = job.steps == 0 && job.slices == 0;
        job.state = JobState::Running;
        job.not_before = None;
        let chaos = match &config.chaos {
            Some(injector) => injector.on_slice(&tenant_name),
            None => SliceChaos::None,
        };
        batch.push(SliceTask {
            id,
            tenant: tenant_name,
            spec: job.spec.clone(),
            engine: Some(engine),
            termination: job.termination.clone(),
            cancel: Arc::clone(&job.cancel),
            allowance,
            consumed: job.consumed,
            prior_slices: job.slices,
            prior_steps: job.steps,
            prior_retries: job.retries,
            first_slice,
            chaos,
            steps_run: 0,
            evals_folded: 0,
            slice_time: Duration::ZERO,
            end: SliceEnd::Yield,
            progress: job.progress,
            snapshot: None,
        });
    }
    batch
}

/// Runs one slice: check-then-poll until the termination rule fires,
/// the cancel flag is seen, or the allowance is spent. Mirrors the core
/// driver's loop exactly, with elapsed time measured as the job's
/// *accumulated active* time (so queueing delay never consumes a
/// wall-clock budget).
///
/// Engines are advanced through [`Engine::poll_step`], not `step`, so
/// asynchronous engines are charged on evaluations actually folded
/// rather than on generation barriers: a poll that folds in-flight work
/// without closing a generation still spends allowance, and a poll that
/// finds nothing ready yields the slice instead of spinning.
fn run_slice(task: &mut SliceTask) {
    let Some(engine) = task.engine.as_mut() else {
        task.end = SliceEnd::Failed("slice dispatched without an engine".into());
        return;
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        let start = Instant::now();
        match task.chaos {
            SliceChaos::None => {}
            // Scripted engine crash: unwinds into the catch below, the
            // same path a genuine engine bug takes.
            SliceChaos::Panic => panic!("chaos: injected slice panic"),
            // Scripted stall: burns wall-clock inside the slice so the
            // watchdog deadline sees an over-budget yield.
            SliceChaos::Stall(pause) => std::thread::sleep(pause),
        }
        if task.first_slice {
            engine.record_run_started();
        }
        let mut steps_run = 0u64;
        let mut evals_folded = 0u64;
        let end = loop {
            let elapsed = match engine.clock() {
                Clock::Wall => task.consumed + start.elapsed(),
                Clock::Virtual(simulated) => simulated,
            };
            let progress = engine.progress(elapsed);
            if let Some(reason) = task.termination.check(&progress) {
                break SliceEnd::Done(reason);
            }
            if engine.halted() {
                break SliceEnd::Done(StopReason::Halted);
            }
            if task.cancel.load(Ordering::Acquire) {
                break SliceEnd::Cancelled;
            }
            if steps_run >= task.allowance {
                break SliceEnd::Yield;
            }
            let poll = engine.poll_step();
            if poll.folded == 0 && poll.report.is_none() {
                // Nothing was ready to fold: yield the slice rather than
                // busy-wait on in-flight evaluations.
                break SliceEnd::Yield;
            }
            evals_folded += poll.folded;
            steps_run += 1;
        };
        if matches!(end, SliceEnd::Done(_) | SliceEnd::Cancelled) {
            engine.record_run_finished();
        }
        let slice_time = start.elapsed();
        let elapsed = match engine.clock() {
            Clock::Wall => task.consumed + slice_time,
            Clock::Virtual(simulated) => simulated,
        };
        let p = engine.progress(elapsed);
        (
            end,
            steps_run,
            evals_folded,
            slice_time,
            JobProgress {
                generations: p.generations,
                evaluations: p.evaluations,
                best_fitness: p.best_fitness,
                best_is_optimal: p.best_is_optimal,
            },
            engine.snapshot(),
        )
    }));
    match result {
        Ok((end, steps_run, evals_folded, slice_time, progress, snapshot)) => {
            task.end = end;
            task.steps_run = steps_run;
            task.evals_folded = evals_folded;
            task.slice_time = slice_time;
            task.progress = progress;
            task.snapshot = Some(snapshot);
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "engine panicked".to_string());
            // The engine is in an unknown (but memory-safe) state; drop
            // it and keep the job's previous spool record as its last
            // good checkpoint.
            task.engine = None;
            task.end = SliceEnd::Failed(message);
        }
    }
}

/// Persists `record`, retrying with a short backoff before giving up.
/// Failure flips the runtime into degraded mode (jobs continue on
/// in-memory checkpoints); the next success clears it. Returns whether
/// the record reached the spool.
fn persist_with_retry(shared: &Shared, spool: &Spool, record: &JobRecord) -> bool {
    const ATTEMPTS: u32 = 3;
    for attempt in 0..ATTEMPTS {
        match spool.save(record) {
            Ok(()) => {
                if shared.degraded.swap(false, Ordering::AcqRel) {
                    // Left degraded mode: persistence is healthy again.
                    let errors = lock(&shared.registry).counter("serve.spool_errors");
                    record_event(
                        shared,
                        record.id,
                        EventKind::SpoolDegraded {
                            errors,
                            degraded: false,
                        },
                    );
                }
                return true;
            }
            Err(_) if attempt + 1 < ATTEMPTS => {
                lock(&shared.registry).inc("serve.spool_errors", 1);
                std::thread::sleep(Duration::from_millis(1 << attempt));
            }
            Err(_) => {
                let errors = {
                    let mut reg = lock(&shared.registry);
                    reg.inc("serve.spool_errors", 1);
                    reg.counter("serve.spool_errors")
                };
                if !shared.degraded.swap(true, Ordering::AcqRel) {
                    record_event(
                        shared,
                        record.id,
                        EventKind::SpoolDegraded {
                            errors,
                            degraded: true,
                        },
                    );
                }
                return false;
            }
        }
    }
    false
}

/// Records a scheduler-level lifecycle event onto the job's stream.
fn record_event(shared: &Shared, id: JobId, kind: EventKind) {
    let stream = lock(&shared.state).jobs.get(&id).map(|j| j.stream.clone());
    if let Some(mut stream) = stream {
        stream.record(&Event::new(kind));
    }
}

/// Rebuilds a crashed job's engine from its spec and restores it from
/// the in-memory last-good snapshot. The check-then-step slice contract
/// makes the replay bit-identical to the lost work.
fn resurrect(job: &mut Job) -> Result<(), String> {
    let mut engine = build_engine(&job.spec, Some(job.stream.clone()))
        .map_err(|e| format!("rebuild failed: {e}"))?;
    if let Some(bytes) = &job.resume_from {
        let snapshot =
            Snapshot::from_bytes(bytes).map_err(|e| format!("bad resume snapshot: {e:?}"))?;
        engine
            .restore(&snapshot)
            .map_err(|e| format!("restore failed: {e:?}"))?;
    }
    job.engine = Some(engine);
    Ok(())
}

/// The scheduler thread: select → slice in parallel → persist →
/// reintegrate, until stopped. While draining it idles without
/// selecting, so `drain()` can persist a quiescent state.
fn scheduler_loop(shared: &Shared, spool: &Spool) {
    use rayon::prelude::ParallelSliceMut;
    loop {
        let mut batch = {
            let mut st = lock(&shared.state);
            loop {
                if st.stopping {
                    return;
                }
                if !shared.draining.load(Ordering::Acquire) {
                    let batch = select_batch(&mut st, &shared.config);
                    if !batch.is_empty() {
                        break batch;
                    }
                }
                // Nothing runnable now. If jobs are only backoff-gated,
                // sleep just past the earliest gate instead of forever.
                let now = Instant::now();
                let earliest = st
                    .jobs
                    .values()
                    .filter(|j| !j.state.is_terminal())
                    .filter_map(|j| j.not_before)
                    .filter(|t| *t > now)
                    .min();
                st = match earliest {
                    Some(gate) => {
                        let wait = gate.saturating_duration_since(now) + Duration::from_millis(1);
                        shared
                            .wake
                            .wait_timeout(st, wait)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0
                    }
                    None => shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner),
                };
            }
        };
        shared.in_flight.store(batch.len(), Ordering::Release);
        // Slices run in parallel on the global work-stealing pool; each
        // engine may itself fan out below this level.
        let _: usize = batch
            .par_iter_mut()
            .with_min_len(1)
            .map(|task| {
                run_slice(task);
                1usize
            })
            .sum();
        if shared.hard_drop.load(Ordering::Acquire) {
            // Simulated crash: the batch is lost, nothing is persisted.
            shared.in_flight.store(0, Ordering::Release);
            return;
        }
        // Watchdog: a yielded slice that blew its deadline is treated
        // exactly like a crash — the engine is discarded (its wall-clock
        // behaviour is no longer trusted) and the job replays from its
        // last good snapshot, which the check-then-step contract makes
        // bit-identical.
        let deadline = Duration::from_millis(shared.config.slice_deadline_ms);
        if !deadline.is_zero() {
            for task in &mut batch {
                if matches!(task.end, SliceEnd::Yield) && task.slice_time > deadline {
                    task.engine = None;
                    task.snapshot = None;
                    task.end = SliceEnd::Failed(format!(
                        "watchdog: slice exceeded {} ms deadline",
                        deadline.as_millis()
                    ));
                    lock(&shared.registry).inc("serve.stalled", 1);
                }
            }
        }
        // Persist every slice before reintegration: once a job is
        // visible as progressed, its checkpoint is already durable.
        // (Crashed slices are skipped: a panicked engine has no
        // trustworthy snapshot; their terminal or retry record is
        // written after reintegration.)
        for task in &batch {
            let state = match &task.end {
                SliceEnd::Yield => JobState::Running,
                SliceEnd::Done(reason) => JobState::Done(*reason),
                SliceEnd::Cancelled => JobState::Cancelled,
                SliceEnd::Failed(_) => continue,
            };
            let record = JobRecord {
                id: task.id,
                spec: task.spec.clone(),
                state,
                slices: task.prior_slices + 1,
                steps: task.prior_steps + task.steps_run,
                consumed: task.consumed + task.slice_time,
                retries: task.prior_retries,
                progress: task.progress,
                engine_snapshot: task.snapshot.clone(),
            };
            persist_with_retry(shared, spool, &record);
        }
        // Reintegrate under the lock. Deferred records (quarantines and
        // retry checkpoints) are written after the lock drops.
        let mut deferred_records = Vec::new();
        {
            let mut st = lock(&shared.state);
            let mut reg = lock(&shared.registry);
            for task in batch {
                reg.inc("serve.slices", 1);
                reg.observe("serve.slice_micros", task.slice_time.as_micros() as f64);
                if let Some(t) = st.tenants.get_mut(&task.tenant) {
                    t.deficit = t.deficit.saturating_sub(task.steps_run);
                    t.completed_slices += 1;
                }
                let Some(job) = st.jobs.get_mut(&task.id) else {
                    continue;
                };
                if !matches!(task.end, SliceEnd::Failed(_)) {
                    // Crashed slices contribute nothing: their deltas
                    // are discarded with the engine, so counters always
                    // match the last good snapshot.
                    reg.inc("serve.steps", task.steps_run);
                    reg.inc("serve.evals_folded", task.evals_folded);
                    job.slices += 1;
                    job.steps += task.steps_run;
                    job.consumed += task.slice_time;
                    job.progress = task.progress;
                    job.resume_from = task.snapshot.as_ref().map(Snapshot::to_bytes);
                }
                match task.end {
                    SliceEnd::Yield => {
                        job.engine = task.engine;
                        if let Some(t) = st.tenants.get_mut(&task.tenant) {
                            t.queue.push_back(task.id);
                        }
                    }
                    SliceEnd::Done(reason) => {
                        job.state = JobState::Done(reason);
                        job.engine = None;
                        job.stream.close();
                        st.live -= 1;
                        reg.inc("serve.completed", 1);
                    }
                    SliceEnd::Cancelled => {
                        job.state = JobState::Cancelled;
                        job.engine = None;
                        job.stream.close();
                        st.live -= 1;
                        reg.inc("serve.cancelled", 1);
                    }
                    SliceEnd::Failed(message) => {
                        reg.inc("serve.slice_crashes", 1);
                        let budget = shared.config.retry_budget;
                        let outcome = if job.retries < budget {
                            resurrect(job)
                                .map_err(|e| format!("{message} (resurrection failed: {e})"))
                        } else {
                            Err(format!(
                                "retry budget exhausted after {budget} retries: {message}"
                            ))
                        };
                        let requeued = match outcome {
                            Ok(()) => {
                                // Bounded-retry resurrection: requeue
                                // behind an exponential backoff gate.
                                job.retries += 1;
                                let shift = (job.retries - 1).min(16) as u32;
                                let backoff = Duration::from_millis(
                                    shared.config.backoff_base_ms.saturating_mul(1u64 << shift),
                                );
                                job.not_before = Some(Instant::now() + backoff);
                                job.state = JobState::Queued;
                                reg.inc("serve.retries", 1);
                                job.stream.record(&Event::new(EventKind::JobRetried {
                                    job: task.id.0,
                                    attempt: job.retries,
                                    backoff_micros: backoff.as_micros() as u64,
                                }));
                                true
                            }
                            Err(reason) => {
                                // Budget exhausted (or resurrection
                                // itself failed): quarantine. The pool
                                // keeps running; the job never does.
                                job.state = JobState::Poisoned(reason.clone());
                                job.engine = None;
                                job.stream.record(&Event::new(EventKind::JobPoisoned {
                                    job: task.id.0,
                                    retries: job.retries,
                                    reason,
                                }));
                                job.stream.close();
                                reg.inc("serve.poisoned", 1);
                                false
                            }
                        };
                        // Either way the outcome must survive a restart:
                        // a retry record keeps the count mid-budget, a
                        // poison record keeps the quarantine.
                        deferred_records.push(JobRecord {
                            id: task.id,
                            spec: job.spec.clone(),
                            state: job.state.clone(),
                            slices: job.slices,
                            steps: job.steps,
                            consumed: job.consumed,
                            retries: job.retries,
                            progress: job.progress,
                            engine_snapshot: job
                                .resume_from
                                .as_deref()
                                .and_then(|b| Snapshot::from_bytes(b).ok()),
                        });
                        if requeued {
                            if let Some(t) = st.tenants.get_mut(&task.tenant) {
                                t.queue.push_back(task.id);
                            }
                        } else {
                            st.live -= 1;
                        }
                    }
                }
            }
        }
        for record in &deferred_records {
            persist_with_retry(shared, spool, record);
        }
        shared.in_flight.store(0, Ordering::Release);
        shared.progress.notify_all();
    }
}
