//! Job identity, lifecycle state, and status reporting.
//!
//! A [`Job`] is one submitted optimization run: the wire spec, the erased
//! engine built from it, its stopping rule, and the counters the
//! scheduler maintains across slices. Jobs move through the
//! [`JobState`] lifecycle `Queued → Running → {Done, Cancelled, Failed,
//! Poisoned}`; terminal states are never left.
//!
//! `Failed` and `Poisoned` split the crash space: a slice failure
//! (panic, watchdog stall) is *not* terminal while the job has retry
//! budget left — the scheduler resurrects the job from its last good
//! snapshot with exponential backoff. Only when the budget is exhausted
//! does the job land in `Poisoned`: quarantined, visible in `GET /jobs`,
//! and never scheduled again. `Failed` remains for jobs that cannot be
//! resurrected at all (e.g. a spool record whose engine can no longer
//! be rebuilt).

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pga_core::erased::BoxedEngine;
use pga_core::termination::{StopReason, Termination};
use pga_observe::JsonlStream;

use crate::protocol::{JobSpec, Json};

/// Opaque job identifier, rendered as `j<n>` on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl FromStr for JobId {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix('j')
            .and_then(|n| n.parse::<u64>().ok())
            .map(JobId)
            .ok_or(())
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for its tenant's next scheduling turn.
    Queued,
    /// Has received at least one slice and is not yet finished.
    Running,
    /// Terminated normally with the recorded stop reason.
    Done(StopReason),
    /// Cancelled by the client before completion.
    Cancelled,
    /// The engine panicked during a slice; the message is retained.
    Failed(String),
    /// The job exhausted its retry budget: every resurrection attempt
    /// crashed again. Quarantined — never scheduled again, never takes
    /// the pool down. The message records the final crash.
    Poisoned(String),
}

impl JobState {
    /// `true` once the job can no longer be scheduled.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Self::Done(_) | Self::Cancelled | Self::Failed(_) | Self::Poisoned(_)
        )
    }

    /// Wire name of the state.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done(_) => "done",
            Self::Cancelled => "cancelled",
            Self::Failed(_) => "failed",
            Self::Poisoned(_) => "poisoned",
        }
    }
}

/// Stable wire name for a [`StopReason`].
#[must_use]
pub fn stop_reason_name(reason: StopReason) -> &'static str {
    match reason {
        StopReason::MaxGenerations => "max_generations",
        StopReason::MaxEvaluations => "max_evaluations",
        StopReason::TargetReached => "target_reached",
        StopReason::Stagnation => "stagnation",
        StopReason::WallClock => "wall_clock",
        StopReason::MaxCost => "max_cost",
        StopReason::Halted => "halted",
        StopReason::IslandLost => "island_lost",
    }
}

/// Parses a wire name back into a [`StopReason`] (spool round-trip).
#[must_use]
pub fn stop_reason_from_name(name: &str) -> Option<StopReason> {
    Some(match name {
        "max_generations" => StopReason::MaxGenerations,
        "max_evaluations" => StopReason::MaxEvaluations,
        "target_reached" => StopReason::TargetReached,
        "stagnation" => StopReason::Stagnation,
        "wall_clock" => StopReason::WallClock,
        "max_cost" => StopReason::MaxCost,
        "halted" => StopReason::Halted,
        "island_lost" => StopReason::IslandLost,
        _ => return None,
    })
}

/// Progress counters mirrored out of the engine after every slice, so
/// status queries never need to touch the engine (which may be out on a
/// worker thread mid-slice).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobProgress {
    /// Completed steps (generations / sweeps / epochs).
    pub generations: u64,
    /// Fitness evaluations consumed.
    pub evaluations: u64,
    /// Best fitness seen so far.
    pub best_fitness: f64,
    /// `true` when the best equals the problem's known optimum.
    pub best_is_optimal: bool,
}

/// One submitted optimization run and everything the scheduler tracks
/// about it.
pub struct Job {
    /// Identity.
    pub id: JobId,
    /// The wire spec it was built from (kept verbatim for the spool).
    pub spec: JobSpec,
    /// Stopping rule derived from the spec's budget.
    pub termination: Termination,
    /// The erased engine; `None` while a slice is executing on the pool,
    /// and dropped once the job reaches a terminal state.
    pub engine: Option<BoxedEngine>,
    /// Lifecycle state.
    pub state: JobState,
    /// Slices granted so far.
    pub slices: u64,
    /// Engine steps executed so far.
    pub steps: u64,
    /// Active scheduler time consumed (sum of slice durations); this is
    /// the job's wall-clock budget base, so multi-tenant queueing does
    /// not eat a job's time budget.
    pub consumed: Duration,
    /// Last observed progress, for lock-free-ish status reads.
    pub progress: JobProgress,
    /// Cooperative cancel flag, checked between steps inside a slice.
    pub cancel: Arc<AtomicBool>,
    /// JSONL event stream served by `GET /jobs/:id/events`.
    pub stream: JsonlStream,
    /// Resurrections consumed so far (0 until the first crash).
    pub retries: u64,
    /// Backoff gate: the job is not schedulable before this instant.
    pub not_before: Option<Instant>,
    /// Last good engine snapshot, taken after every successful slice.
    /// This is the resurrection source — identical bytes to the spool
    /// record when the spool is healthy, and still available when the
    /// spool is degraded.
    pub resume_from: Option<Vec<u8>>,
}

impl Job {
    /// Creates a freshly admitted job.
    #[must_use]
    pub fn new(
        id: JobId,
        spec: JobSpec,
        termination: Termination,
        engine: BoxedEngine,
        stream: JsonlStream,
    ) -> Self {
        Self {
            id,
            spec,
            termination,
            engine: Some(engine),
            state: JobState::Queued,
            slices: 0,
            steps: 0,
            consumed: Duration::ZERO,
            progress: JobProgress::default(),
            cancel: Arc::new(AtomicBool::new(false)),
            stream,
            retries: 0,
            not_before: None,
            resume_from: None,
        }
    }

    /// Creates an engine-less terminal job: a spool record whose run is
    /// already over (or can no longer be resurrected), kept so that
    /// `GET /jobs/:id` stays answerable across restarts. `state` must
    /// be terminal.
    #[must_use]
    pub fn tombstone(
        id: JobId,
        spec: JobSpec,
        termination: Termination,
        state: JobState,
        stream: JsonlStream,
    ) -> Self {
        debug_assert!(state.is_terminal());
        Self {
            id,
            spec,
            termination,
            engine: None,
            state,
            slices: 0,
            steps: 0,
            consumed: Duration::ZERO,
            progress: JobProgress::default(),
            cancel: Arc::new(AtomicBool::new(false)),
            stream,
            retries: 0,
            not_before: None,
            resume_from: None,
        }
    }

    /// `true` when the backoff gate currently blocks scheduling.
    #[must_use]
    pub fn backoff_pending(&self, now: Instant) -> bool {
        self.not_before.is_some_and(|t| t > now)
    }

    /// Requests cooperative cancellation (takes effect at the next
    /// step boundary).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// `true` when cancellation has been requested.
    #[must_use]
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// Status document for `GET /jobs/:id`.
    #[must_use]
    pub fn status_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.to_string())),
            ("tenant".to_string(), Json::Str(self.spec.tenant.clone())),
            ("state".to_string(), Json::Str(self.state.name().into())),
        ];
        match &self.state {
            JobState::Done(reason) => fields.push((
                "stop_reason".into(),
                Json::Str(stop_reason_name(*reason).into()),
            )),
            JobState::Failed(message) | JobState::Poisoned(message) => {
                fields.push(("error".into(), Json::Str(message.clone())));
            }
            _ => {}
        }
        fields.extend([
            (
                "problem".to_string(),
                Json::Str(self.spec.problem.name().into()),
            ),
            (
                "family".to_string(),
                Json::Str(self.spec.engine.family().into()),
            ),
            ("seed".to_string(), Json::Num(self.spec.seed as f64)),
            (
                "generations".to_string(),
                Json::Num(self.progress.generations as f64),
            ),
            (
                "evaluations".to_string(),
                Json::Num(self.progress.evaluations as f64),
            ),
            (
                "best_fitness".to_string(),
                Json::Num(self.progress.best_fitness),
            ),
            (
                "best_is_optimal".to_string(),
                Json::Bool(self.progress.best_is_optimal),
            ),
            ("slices".to_string(), Json::Num(self.slices as f64)),
            ("steps".to_string(), Json::Num(self.steps as f64)),
            ("retries".to_string(), Json::Num(self.retries as f64)),
            (
                "consumed_ms".to_string(),
                Json::Num(self.consumed.as_secs_f64() * 1e3),
            ),
        ]);
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_roundtrip_their_wire_form() {
        for n in [0u64, 1, 7, 12345] {
            let id = JobId(n);
            assert_eq!(id.to_string().parse::<JobId>(), Ok(id));
        }
        assert!("x7".parse::<JobId>().is_err());
        assert!("j".parse::<JobId>().is_err());
        assert!("j-1".parse::<JobId>().is_err());
    }

    #[test]
    fn stop_reasons_roundtrip_their_wire_names() {
        for reason in [
            StopReason::MaxGenerations,
            StopReason::MaxEvaluations,
            StopReason::TargetReached,
            StopReason::Stagnation,
            StopReason::WallClock,
            StopReason::MaxCost,
            StopReason::Halted,
            StopReason::IslandLost,
        ] {
            assert_eq!(
                stop_reason_from_name(stop_reason_name(reason)),
                Some(reason)
            );
        }
        assert_eq!(stop_reason_from_name("nope"), None);
    }

    #[test]
    fn terminal_states_are_terminal() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done(StopReason::MaxGenerations).is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed("boom".into()).is_terminal());
        assert!(JobState::Poisoned("boom x3".into()).is_terminal());
        assert_eq!(JobState::Poisoned("boom".into()).name(), "poisoned");
    }
}
