//! Registry API: names to validated constructors, no match ladders.
//!
//! This is the bridge between the protocol layer and the core runtime:
//! a validated spec goes in, a [`BoxedEngine`] ready for the slice
//! scheduler comes out. Dispatch is *data*, not code — a
//! [`ProblemRegistry`] maps problem kinds to constructors and a
//! [`FamilyRegistry`] maps engine families to `(snapshot tag, param
//! validator, engine constructor)` entries. Adding a family to the wire
//! surface is one [`FamilyRegistry::register`] call: the protocol layer
//! validates against the same registry it will later build from, the
//! spool restore path asks the registry for the family's snapshot tag,
//! and `GET /families` lists whatever is registered. Nothing else in
//! the crate enumerates families.
//!
//! The factory also attaches the job's [`JsonlStream`] recorder
//! *before* erasure — recorders are seed-transparent (see
//! `pga-observe`), so a streamed job follows the exact trajectory of an
//! unstreamed one, which is what makes spool recovery bit-identical
//! even for jobs with event subscribers.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use pga_cellular::CellularGa;
use pga_cluster::{ClusterSpec, EvalCostModel, NetworkProfile};
use pga_compact::{CompactGaBuilder, ShardedCompactGaBuilder};
use pga_core::engine::Scheme;
use pga_core::erased::{erase, BoxedEngine};
use pga_core::ops::{BitFlip, OnePoint, ReplacementPolicy, Tournament};
use pga_core::problem::Problem;
use pga_core::repr::BitString;
use pga_core::rng::Rng64;
use pga_core::{ConfigError, GaBuilder};
use pga_island::{Archipelago, MigrationPolicy};
use pga_master_slave::AsyncSteadyStateGa;
use pga_observe::JsonlStream;
use pga_problems::{DeceptiveTrap, OneMax, PPeaks, RoyalRoad};
use pga_topology::Topology;

use crate::protocol::{JobSpec, Json, ProtocolError};

/// A wire-buildable problem: type-erased and shareable across engines.
pub type SharedProblem = Arc<dyn Problem<Genome = BitString> + Send + Sync>;

/// A constructed problem plus the metadata engine builders need.
pub struct BuiltProblem {
    /// The problem itself, ready to hand to any engine family.
    pub problem: SharedProblem,
    /// Genome length in bits (probed once at construction).
    pub genome_len: usize,
}

impl BuiltProblem {
    /// Erases `problem` and probes its genome length generically, so
    /// problem registrations never restate their own dimensions.
    pub fn new<P>(problem: P) -> Self
    where
        P: Problem<Genome = BitString> + Send + Sync + 'static,
    {
        let problem: SharedProblem = Arc::new(problem);
        let genome_len = problem.random_genome(&mut Rng64::new(0)).len();
        Self {
            problem,
            genome_len,
        }
    }
}

type ProblemCtor = Box<dyn Fn(&Json) -> Result<BuiltProblem, ProtocolError> + Send + Sync>;

/// Name → validated problem constructor.
#[derive(Default)]
pub struct ProblemRegistry {
    entries: BTreeMap<String, ProblemCtor>,
}

impl ProblemRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `kind`, replacing any previous registration. The
    /// constructor both validates the params and builds the problem, so
    /// parse-time validation and job build cannot drift apart.
    pub fn register<F>(&mut self, kind: &str, ctor: F)
    where
        F: Fn(&Json) -> Result<BuiltProblem, ProtocolError> + Send + Sync + 'static,
    {
        self.entries.insert(kind.to_string(), Box::new(ctor));
    }

    /// Registered kind names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// `true` when `kind` is registered.
    #[must_use]
    pub fn contains(&self, kind: &str) -> bool {
        self.entries.contains_key(kind)
    }

    /// Builds the problem `kind` describes from its wire params.
    pub fn build(&self, kind: &str, params: &Json) -> Result<BuiltProblem, ProtocolError> {
        let ctor = self
            .entries
            .get(kind)
            .ok_or_else(|| ProtocolError::Invalid {
                field: "problem.kind",
                message: format!(
                    "unknown problem `{kind}` (known: {})",
                    self.names().join(", ")
                ),
            })?;
        ctor(params)
    }

    /// Parse-time validation: builds and discards.
    pub fn validate(&self, kind: &str, params: &Json) -> Result<(), ProtocolError> {
        self.build(kind, params).map(|_| ())
    }
}

impl fmt::Debug for ProblemRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProblemRegistry")
            .field("kinds", &self.names())
            .finish()
    }
}

/// Everything a family constructor needs to build one engine.
pub struct EngineCtx<'a> {
    /// The engine's wire params (everything but `family`).
    pub params: &'a Json,
    /// The problem the job optimizes.
    pub problem: SharedProblem,
    /// Genome length in bits.
    pub genome_len: usize,
    /// The job seed — the sole source of run randomness.
    pub seed: u64,
    /// Event recorder to attach before erasure, when the job streams.
    pub stream: Option<JsonlStream>,
}

impl fmt::Debug for EngineCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineCtx")
            .field("params", &self.params)
            .field("genome_len", &self.genome_len)
            .field("seed", &self.seed)
            .field("streamed", &self.stream.is_some())
            .finish()
    }
}

type FamilyValidate = Box<dyn Fn(&Json) -> Result<(), ProtocolError> + Send + Sync>;
type FamilyBuild = Box<dyn Fn(EngineCtx<'_>) -> Result<BoxedEngine, ProtocolError> + Send + Sync>;

struct FamilyEntry {
    snapshot_tag: &'static str,
    validate: FamilyValidate,
    build: FamilyBuild,
}

/// Name → engine-family entry (snapshot tag, validator, constructor).
#[derive(Default)]
pub struct FamilyRegistry {
    entries: BTreeMap<String, FamilyEntry>,
}

impl FamilyRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `family`, replacing any previous registration.
    ///
    /// `snapshot_tag` is the tag the family's engine snapshots carry
    /// (see `Snapshot::engine_tag`), used to pair spool snapshots with
    /// specs on restore. `validate` is the cheap parse-time param check;
    /// `build` constructs the engine from a full [`EngineCtx`].
    pub fn register<V, B>(
        &mut self,
        family: &str,
        snapshot_tag: &'static str,
        validate: V,
        build: B,
    ) where
        V: Fn(&Json) -> Result<(), ProtocolError> + Send + Sync + 'static,
        B: Fn(EngineCtx<'_>) -> Result<BoxedEngine, ProtocolError> + Send + Sync + 'static,
    {
        self.entries.insert(
            family.to_string(),
            FamilyEntry {
                snapshot_tag,
                validate: Box::new(validate),
                build: Box::new(build),
            },
        );
    }

    /// Registered family names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// `true` when `family` is registered.
    #[must_use]
    pub fn contains(&self, family: &str) -> bool {
        self.entries.contains_key(family)
    }

    /// The snapshot tag `family`'s engines stamp on their checkpoints.
    #[must_use]
    pub fn snapshot_tag(&self, family: &str) -> Option<&'static str> {
        self.entries.get(family).map(|e| e.snapshot_tag)
    }

    fn entry(&self, family: &str) -> Result<&FamilyEntry, ProtocolError> {
        self.entries
            .get(family)
            .ok_or_else(|| ProtocolError::Invalid {
                field: "engine.family",
                message: format!(
                    "unknown family `{family}` (known: {})",
                    self.names().join(", ")
                ),
            })
    }

    /// Parse-time param validation for `family`.
    pub fn validate(&self, family: &str, params: &Json) -> Result<(), ProtocolError> {
        (self.entry(family)?.validate)(params)
    }

    /// Builds one engine of `family` from `ctx`.
    pub fn build(&self, family: &str, ctx: EngineCtx<'_>) -> Result<BoxedEngine, ProtocolError> {
        (self.entry(family)?.build)(ctx)
    }
}

impl fmt::Debug for FamilyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FamilyRegistry")
            .field("families", &self.names())
            .finish()
    }
}

/// The problem and family registries a server resolves specs against.
#[derive(Debug, Default)]
pub struct Registries {
    /// Problem kinds.
    pub problems: ProblemRegistry,
    /// Engine families.
    pub families: FamilyRegistry,
}

impl Registries {
    /// The process-wide built-in registries (all stock problems and all
    /// seven engine families), initialized once on first use.
    #[must_use]
    pub fn builtin() -> &'static Self {
        static BUILTIN: OnceLock<Registries> = OnceLock::new();
        BUILTIN.get_or_init(default_registries)
    }
}

/// Derives the seed for island `i` from the job seed (splitmix64 step),
/// so islands diverge while the whole archipelago stays a pure function
/// of the job spec.
fn island_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn config_err(err: ConfigError) -> ProtocolError {
    ProtocolError::Invalid {
        field: "engine",
        message: err.to_string(),
    }
}

/// A problem dimension: required, positive, bounded by 2^20.
fn pdim(params: &Json, key: &str, field: &'static str) -> Result<usize, ProtocolError> {
    let v = params
        .get(key)
        .and_then(Json::as_u64)
        .ok_or(ProtocolError::Missing(field))?;
    if v == 0 || v > 1 << 20 {
        return Err(ProtocolError::Invalid {
            field,
            message: format!("must be in 1..=2^20, got {v}"),
        });
    }
    usize::try_from(v).map_err(|_| ProtocolError::Invalid {
        field,
        message: "overflows usize".into(),
    })
}

/// An engine dimension: positive, bounded by 65 536; `default` (when
/// given) fills an absent field, otherwise absence is a typed error.
fn edim(
    params: &Json,
    key: &str,
    field: &'static str,
    default: Option<u64>,
) -> Result<usize, ProtocolError> {
    let v = match params.get(key).map(Json::as_u64) {
        Some(Some(v)) => v,
        Some(None) => {
            return Err(ProtocolError::Invalid {
                field,
                message: "must be a non-negative integer".into(),
            })
        }
        None => default.ok_or(ProtocolError::Missing(field))?,
    };
    if v == 0 || v > 1 << 16 {
        return Err(ProtocolError::Invalid {
            field,
            message: format!("must be in 1..=65536, got {v}"),
        });
    }
    Ok(v as usize)
}

fn ga_params(params: &Json) -> Result<(usize, usize), ProtocolError> {
    let pop = edim(params, "pop", "engine.pop", None)?;
    let elitism = match params.get("elitism").map(Json::as_u64) {
        Some(Some(e)) if e <= 1 << 16 => e as usize,
        None => 1,
        _ => {
            return Err(ProtocolError::Invalid {
                field: "engine.elitism",
                message: "must be a small non-negative integer".into(),
            })
        }
    };
    Ok((pop, elitism))
}

/// The stock registries: every benchmark problem and all seven engine
/// families. Each `register` call below is the *entire* wire surface of
/// its family — validation, construction, and snapshot-tag pairing.
#[must_use]
#[allow(clippy::too_many_lines)] // one linear list of registrations
pub fn default_registries() -> Registries {
    let mut problems = ProblemRegistry::new();
    problems.register("onemax", |p| {
        Ok(BuiltProblem::new(OneMax::new(pdim(
            p,
            "len",
            "problem.len",
        )?)))
    });
    problems.register("trap", |p| {
        Ok(BuiltProblem::new(DeceptiveTrap::new(
            pdim(p, "k", "problem.k")?,
            pdim(p, "blocks", "problem.blocks")?,
        )))
    });
    problems.register("ppeaks", |p| {
        let seed = p
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or(ProtocolError::Missing("problem.seed"))?;
        Ok(BuiltProblem::new(PPeaks::new(
            pdim(p, "p", "problem.p")?,
            pdim(p, "n", "problem.n")?,
            seed,
        )))
    });
    problems.register("royalroad", |p| {
        Ok(BuiltProblem::new(RoyalRoad::new(
            pdim(p, "block", "problem.block")?,
            pdim(p, "blocks", "problem.blocks")?,
        )))
    });

    let mut families = FamilyRegistry::new();
    families.register(
        "ga",
        "ga",
        |p| ga_params(p).map(|_| ()),
        |ctx| {
            let (pop, elitism) = ga_params(ctx.params)?;
            let mut ga = GaBuilder::new(ctx.problem)
                .seed(ctx.seed)
                .pop_size(pop)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(ctx.genome_len))
                .scheme(Scheme::Generational { elitism })
                .build()
                .map_err(config_err)?;
            if let Some(s) = ctx.stream {
                ga.set_recorder(s);
            }
            Ok(erase(ga))
        },
    );
    families.register(
        "steady",
        "ga",
        |p| edim(p, "pop", "engine.pop", None).map(|_| ()),
        |ctx| {
            let pop = edim(ctx.params, "pop", "engine.pop", None)?;
            let mut ga = GaBuilder::new(ctx.problem)
                .seed(ctx.seed)
                .pop_size(pop)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(ctx.genome_len))
                .scheme(Scheme::SteadyState {
                    replacement: ReplacementPolicy::WorstIfBetter,
                })
                .build()
                .map_err(config_err)?;
            if let Some(s) = ctx.stream {
                ga.set_recorder(s);
            }
            Ok(erase(ga))
        },
    );
    families.register(
        "cellular",
        "cellular",
        |p| {
            edim(p, "rows", "engine.rows", None)?;
            edim(p, "cols", "engine.cols", None).map(|_| ())
        },
        |ctx| {
            let rows = edim(ctx.params, "rows", "engine.rows", None)?;
            let cols = edim(ctx.params, "cols", "engine.cols", None)?;
            let mut cga = CellularGa::builder(ctx.problem)
                .grid(rows, cols)
                .seed(ctx.seed)
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(ctx.genome_len))
                .build()
                .map_err(config_err)?;
            if let Some(s) = ctx.stream {
                cga.set_recorder(s);
            }
            Ok(erase(cga))
        },
    );
    families.register(
        "island",
        "archipelago",
        |p| {
            edim(p, "islands", "engine.islands", Some(4))?;
            edim(p, "pop", "engine.pop", None).map(|_| ())
        },
        |ctx| {
            let islands = edim(ctx.params, "islands", "engine.islands", Some(4))?;
            let pop = edim(ctx.params, "pop", "engine.pop", None)?;
            let demes = (0..islands)
                .map(|i| {
                    let mut ga = GaBuilder::new(Arc::clone(&ctx.problem))
                        .seed(island_seed(ctx.seed, i))
                        .pop_size(pop)
                        .selection(Tournament::binary())
                        .crossover(OnePoint)
                        .mutation(BitFlip::one_over_len(ctx.genome_len))
                        .scheme(Scheme::Generational { elitism: 1 })
                        .build()
                        .map_err(config_err)?;
                    if let Some(s) = &ctx.stream {
                        ga.set_recorder(s.clone());
                    }
                    Ok(ga)
                })
                .collect::<Result<Vec<_>, ProtocolError>>()?;
            let arch = Archipelago::new(demes, Topology::RingUni, MigrationPolicy::default())
                .map_err(config_err)?;
            Ok(erase(arch))
        },
    );
    families.register(
        "async-steady",
        "async-steady",
        |p| {
            edim(p, "pop", "engine.pop", None)?;
            edim(p, "workers", "engine.workers", Some(4)).map(|_| ())
        },
        |ctx| {
            let pop = edim(ctx.params, "pop", "engine.pop", None)?;
            let workers = edim(ctx.params, "workers", "engine.workers", Some(4))?;
            // The virtual-cluster backend keeps the job deterministic and
            // snapshotable — both required by the spool — while still
            // exercising barrier-free arrival-order folding. Worker speeds
            // and evaluation costs are heterogeneous (seeded by the job
            // seed) so slices genuinely interleave in-flight work.
            let cluster =
                ClusterSpec::heterogeneous(workers, 3.0, ctx.seed, NetworkProfile::GigabitEthernet)
                    .map_err(config_err)?;
            let cost = EvalCostModel::uniform(5e-4, 5e-3).map_err(config_err)?;
            let mut ga = AsyncSteadyStateGa::builder(ctx.problem)
                .seed(ctx.seed)
                .pop_size(pop)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(ctx.genome_len))
                .virtual_cluster(cluster, cost)
                .build()
                .map_err(config_err)?;
            if let Some(s) = ctx.stream {
                ga.set_recorder(s);
            }
            Ok(erase(ga))
        },
    );
    families.register(
        "cga",
        "cga",
        |p| edim(p, "virtual_pop", "engine.virtual_pop", Some(127)).map(|_| ()),
        |ctx| {
            let virtual_pop = edim(ctx.params, "virtual_pop", "engine.virtual_pop", Some(127))?;
            let mut builder = CompactGaBuilder::new(ctx.problem)
                .seed(ctx.seed)
                .virtual_pop(virtual_pop);
            if let Some(s) = ctx.stream {
                builder = builder.recorder(s);
            }
            Ok(erase(builder.build().map_err(config_err)?))
        },
    );
    families.register(
        "pcga",
        "pcga",
        |p| {
            edim(p, "virtual_pop", "engine.virtual_pop", Some(127))?;
            edim(p, "nodes", "engine.nodes", Some(8)).map(|_| ())
        },
        |ctx| {
            let virtual_pop = edim(ctx.params, "virtual_pop", "engine.virtual_pop", Some(127))?;
            let nodes = edim(ctx.params, "nodes", "engine.nodes", Some(8))?;
            let cluster = ClusterSpec::homogeneous(nodes, NetworkProfile::GigabitEthernet)
                .map_err(config_err)?;
            let mut builder = ShardedCompactGaBuilder::new(ctx.problem)
                .seed(ctx.seed)
                .virtual_pop(virtual_pop)
                .cluster(cluster);
            if let Some(s) = ctx.stream {
                builder = builder.recorder(s);
            }
            Ok(erase(builder.build().map_err(config_err)?))
        },
    );

    Registries { problems, families }
}

/// Instantiates the engine a spec describes via the built-in
/// registries, attaches `stream` as its observability recorder (when
/// given), and erases it for the job runtime. The same spec always
/// yields a bit-identical engine.
pub fn build_engine(
    spec: &JobSpec,
    stream: Option<JsonlStream>,
) -> Result<BoxedEngine, ProtocolError> {
    let reg = Registries::builtin();
    let built = reg
        .problems
        .build(spec.problem.name(), spec.problem.params())?;
    reg.families.build(
        spec.engine.family(),
        EngineCtx {
            params: spec.engine.params(),
            problem: built.problem,
            genome_len: built.genome_len,
            seed: spec.seed,
            stream,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Budget, EngineSpec, ProblemSpec};

    fn spec(engine: EngineSpec) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            problem: ProblemSpec::onemax(32),
            engine,
            seed: 11,
            budget: Budget {
                generations: Some(10),
                ..Budget::default()
            },
        }
    }

    #[test]
    fn every_family_builds_and_tags_match() {
        for engine in [
            EngineSpec::ga(16, 1),
            EngineSpec::steady(16),
            EngineSpec::cellular(4, 4),
            EngineSpec::island(3, 8),
            EngineSpec::async_steady(16, 4),
            EngineSpec::cga(64),
            EngineSpec::pcga(64, 8),
        ] {
            let s = spec(engine.clone());
            let built = build_engine(&s, None).expect("buildable spec");
            assert_eq!(
                Some(built.snapshot().engine_tag()),
                Registries::builtin().families.snapshot_tag(engine.family()),
                "family {}",
                engine.family()
            );
        }
    }

    #[test]
    fn registry_lists_all_seven_families_and_all_problems() {
        let reg = Registries::builtin();
        assert_eq!(
            reg.families.names(),
            vec![
                "async-steady",
                "cellular",
                "cga",
                "ga",
                "island",
                "pcga",
                "steady"
            ]
        );
        assert_eq!(
            reg.problems.names(),
            vec!["onemax", "ppeaks", "royalroad", "trap"]
        );
        assert!(reg.families.contains("cga"));
        assert!(!reg.families.contains("quantum"));
    }

    #[test]
    fn one_registration_call_admits_a_new_family() {
        // The point of the registry API: a family joins the wire surface
        // with one `register` call — no protocol, scheduler, or HTTP
        // edits. Here a "demo" family re-skins the compact GA.
        let mut reg = FamilyRegistry::new();
        reg.register(
            "demo",
            "cga",
            |_| Ok(()),
            |ctx| {
                let ga = CompactGaBuilder::new(ctx.problem)
                    .seed(ctx.seed)
                    .virtual_pop(31)
                    .build()
                    .map_err(config_err)?;
                Ok(erase(ga))
            },
        );
        assert_eq!(reg.snapshot_tag("demo"), Some("cga"));
        let built_problem = Registries::builtin()
            .problems
            .build("onemax", &Json::Obj(vec![("len".into(), Json::Num(16.0))]))
            .expect("problem builds");
        let mut engine = reg
            .build(
                "demo",
                EngineCtx {
                    params: &Json::Obj(vec![]),
                    problem: built_problem.problem,
                    genome_len: built_problem.genome_len,
                    seed: 3,
                    stream: None,
                },
            )
            .expect("registered family builds");
        let report = engine.step();
        assert_eq!(report.generation, 1);
        assert_eq!(engine.snapshot().engine_tag(), "cga");
    }

    #[test]
    fn unknown_names_are_typed_errors_listing_known_names() {
        let reg = Registries::builtin();
        let err = reg
            .families
            .validate("quantum", &Json::Obj(vec![]))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                ProtocolError::Invalid { field, message }
                    if *field == "engine.family"
                        && message.contains("cga")
                        && message.contains("island")
            ),
            "expected Invalid listing known families, got {err:?}"
        );
        assert!(matches!(
            reg.problems.validate("sudoku", &Json::Obj(vec![])),
            Err(ProtocolError::Invalid {
                field: "problem.kind",
                ..
            })
        ));
    }

    #[test]
    fn same_spec_builds_bit_identical_engines() {
        for engine in [EngineSpec::island(3, 8), EngineSpec::pcga(31, 4)] {
            let s = spec(engine);
            let mut a = build_engine(&s, None).expect("buildable");
            let mut b = build_engine(&s, None).expect("buildable");
            for _ in 0..6 {
                assert_eq!(a.step(), b.step());
            }
            assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
        }
    }

    #[test]
    fn attaching_a_stream_does_not_perturb_the_trajectory() {
        for engine in [EngineSpec::ga(16, 1), EngineSpec::cga(64)] {
            let s = spec(engine);
            let stream = JsonlStream::with_capacity(256);
            let mut silent = build_engine(&s, None).expect("buildable");
            let mut streamed = build_engine(&s, Some(stream.clone())).expect("buildable");
            for _ in 0..8 {
                assert_eq!(silent.step(), streamed.step());
            }
            assert_eq!(silent.snapshot().to_bytes(), streamed.snapshot().to_bytes());
            assert!(!stream.is_empty(), "streamed engine should emit events");
        }
    }

    #[test]
    fn invalid_structure_maps_to_protocol_error() {
        let s = spec(EngineSpec::ga(4, 4));
        assert!(matches!(
            build_engine(&s, None),
            Err(ProtocolError::Invalid {
                field: "engine",
                ..
            })
        ));
        // pcga cannot shard 64 loci across 100 nodes.
        let s = spec(EngineSpec::pcga(31, 100));
        assert!(matches!(
            build_engine(&s, None),
            Err(ProtocolError::Invalid {
                field: "engine",
                ..
            })
        ));
    }
}
