//! Builds a concrete engine from a wire [`JobSpec`] and erases it.
//!
//! This is the bridge between the protocol layer and the core runtime:
//! a validated spec goes in, a [`BoxedEngine`] ready for the slice
//! scheduler comes out. The factory also attaches the job's
//! [`JsonlStream`] recorder *before* erasure — recorders are
//! seed-transparent (see `pga-observe`), so a streamed job follows the
//! exact trajectory of an unstreamed one, which is what makes spool
//! recovery bit-identical even for jobs with event subscribers.

use std::sync::Arc;

use pga_cellular::CellularGa;
use pga_cluster::{ClusterSpec, EvalCostModel, NetworkProfile};
use pga_core::engine::Scheme;
use pga_core::erased::{erase, BoxedEngine};
use pga_core::ops::{BitFlip, OnePoint, ReplacementPolicy, Tournament};
use pga_core::problem::Problem;
use pga_core::repr::BitString;
use pga_core::{ConfigError, GaBuilder};
use pga_island::{Archipelago, MigrationPolicy};
use pga_master_slave::AsyncSteadyStateGa;
use pga_observe::JsonlStream;
use pga_problems::{DeceptiveTrap, OneMax, PPeaks, RoyalRoad};
use pga_topology::Topology;

use crate::protocol::{EngineSpec, JobSpec, ProblemSpec, ProtocolError};

/// Derives the seed for island `i` from the job seed (splitmix64 step),
/// so islands diverge while the whole archipelago stays a pure function
/// of the job spec.
fn island_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn config_err(err: ConfigError) -> ProtocolError {
    ProtocolError::Invalid {
        field: "engine",
        message: err.to_string(),
    }
}

/// Instantiates the engine a spec describes, attaches `stream` as its
/// observability recorder (when given), and erases it for the job
/// runtime. The same spec always yields a bit-identical engine.
pub fn build_engine(
    spec: &JobSpec,
    stream: Option<JsonlStream>,
) -> Result<BoxedEngine, ProtocolError> {
    match &spec.problem {
        ProblemSpec::OneMax { len } => build_family(spec, OneMax::new(*len), stream),
        ProblemSpec::Trap { k, blocks } => {
            build_family(spec, DeceptiveTrap::new(*k, *blocks), stream)
        }
        ProblemSpec::PPeaks { p, n, seed } => {
            build_family(spec, PPeaks::new(*p, *n, *seed), stream)
        }
        ProblemSpec::RoyalRoad { block, blocks } => {
            build_family(spec, RoyalRoad::new(*block, *blocks), stream)
        }
    }
}

fn build_family<P>(
    spec: &JobSpec,
    problem: P,
    stream: Option<JsonlStream>,
) -> Result<BoxedEngine, ProtocolError>
where
    P: Problem<Genome = BitString> + Send + Sync + 'static,
{
    let len = spec.problem.genome_len();
    let problem = Arc::new(problem);
    match &spec.engine {
        EngineSpec::Ga { pop, elitism } => {
            let mut ga = GaBuilder::new(problem)
                .seed(spec.seed)
                .pop_size(*pop)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(len))
                .scheme(Scheme::Generational { elitism: *elitism })
                .build()
                .map_err(config_err)?;
            if let Some(s) = stream {
                ga.set_recorder(s);
            }
            Ok(erase(ga))
        }
        EngineSpec::SteadyState { pop } => {
            let mut ga = GaBuilder::new(problem)
                .seed(spec.seed)
                .pop_size(*pop)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(len))
                .scheme(Scheme::SteadyState {
                    replacement: ReplacementPolicy::WorstIfBetter,
                })
                .build()
                .map_err(config_err)?;
            if let Some(s) = stream {
                ga.set_recorder(s);
            }
            Ok(erase(ga))
        }
        EngineSpec::Cellular { rows, cols } => {
            let mut cga = CellularGa::builder(problem)
                .grid(*rows, *cols)
                .seed(spec.seed)
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(len))
                .build()
                .map_err(config_err)?;
            if let Some(s) = stream {
                cga.set_recorder(s);
            }
            Ok(erase(cga))
        }
        EngineSpec::Island { islands, pop } => {
            let demes = (0..*islands)
                .map(|i| {
                    let mut ga = GaBuilder::new(Arc::clone(&problem))
                        .seed(island_seed(spec.seed, i))
                        .pop_size(*pop)
                        .selection(Tournament::binary())
                        .crossover(OnePoint)
                        .mutation(BitFlip::one_over_len(len))
                        .scheme(Scheme::Generational { elitism: 1 })
                        .build()
                        .map_err(config_err)?;
                    if let Some(s) = &stream {
                        ga.set_recorder(s.clone());
                    }
                    Ok(ga)
                })
                .collect::<Result<Vec<_>, ProtocolError>>()?;
            let arch = Archipelago::new(demes, Topology::RingUni, MigrationPolicy::default())
                .map_err(config_err)?;
            Ok(erase(arch))
        }
        EngineSpec::AsyncSteady { pop, workers } => {
            // The virtual-cluster backend keeps the job deterministic and
            // snapshotable — both required by the spool — while still
            // exercising barrier-free arrival-order folding. Worker speeds
            // and evaluation costs are heterogeneous (seeded by the job
            // seed) so slices genuinely interleave in-flight work.
            let cluster = ClusterSpec::heterogeneous(
                *workers,
                3.0,
                spec.seed,
                NetworkProfile::GigabitEthernet,
            )
            .map_err(config_err)?;
            let cost = EvalCostModel::uniform(5e-4, 5e-3).map_err(config_err)?;
            let mut ga = AsyncSteadyStateGa::builder(problem)
                .seed(spec.seed)
                .pop_size(*pop)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(len))
                .virtual_cluster(cluster, cost)
                .build()
                .map_err(config_err)?;
            if let Some(s) = stream {
                ga.set_recorder(s);
            }
            Ok(erase(ga))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Budget;

    fn spec(engine: EngineSpec) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            problem: ProblemSpec::OneMax { len: 32 },
            engine,
            seed: 11,
            budget: Budget {
                generations: Some(10),
                ..Budget::default()
            },
        }
    }

    #[test]
    fn every_family_builds_and_tags_match() {
        for engine in [
            EngineSpec::Ga {
                pop: 16,
                elitism: 1,
            },
            EngineSpec::SteadyState { pop: 16 },
            EngineSpec::Cellular { rows: 4, cols: 4 },
            EngineSpec::Island { islands: 3, pop: 8 },
            EngineSpec::AsyncSteady {
                pop: 16,
                workers: 4,
            },
        ] {
            let s = spec(engine.clone());
            let built = build_engine(&s, None).expect("buildable spec");
            assert_eq!(built.snapshot().engine_tag(), engine.snapshot_tag());
        }
    }

    #[test]
    fn same_spec_builds_bit_identical_engines() {
        let s = spec(EngineSpec::Island { islands: 3, pop: 8 });
        let mut a = build_engine(&s, None).expect("buildable");
        let mut b = build_engine(&s, None).expect("buildable");
        for _ in 0..6 {
            assert_eq!(a.step(), b.step());
        }
        assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
    }

    #[test]
    fn attaching_a_stream_does_not_perturb_the_trajectory() {
        let s = spec(EngineSpec::Ga {
            pop: 16,
            elitism: 1,
        });
        let stream = JsonlStream::with_capacity(256);
        let mut silent = build_engine(&s, None).expect("buildable");
        let mut streamed = build_engine(&s, Some(stream.clone())).expect("buildable");
        for _ in 0..8 {
            assert_eq!(silent.step(), streamed.step());
        }
        assert_eq!(silent.snapshot().to_bytes(), streamed.snapshot().to_bytes());
        assert!(!stream.is_empty(), "streamed engine should emit events");
    }

    #[test]
    fn invalid_structure_maps_to_protocol_error() {
        let s = spec(EngineSpec::Ga { pop: 4, elitism: 4 });
        assert!(matches!(
            build_engine(&s, None),
            Err(ProtocolError::Invalid {
                field: "engine",
                ..
            })
        ));
    }
}
