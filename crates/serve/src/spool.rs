//! Crash-safe job spool: one file per job, rewritten after every slice.
//!
//! Each record reuses the core PGAS container ([`Snapshot`] with the
//! reserved tag `serve-job`), so spool files get the magic, versioning,
//! and FNV-1a checksum of engine checkpoints for free. The payload holds
//! the job's identity, its verbatim wire spec (from which the engine is
//! rebuilt deterministically), scheduler counters, mirrored progress, and
//! the engine's own nested PGAS snapshot.
//!
//! Writes are atomic (`<id>.pgaj.tmp` + rename), so a crash mid-write
//! leaves the previous consistent record in place. Recovery loads every
//! readable record and reports unreadable ones instead of failing the
//! whole restart — one corrupt job must not take the server down.
//!
//! For fault drills a [`ChaosInjector`] can be armed on the spool:
//! scripted write indices then fail with an IO error (exercising the
//! scheduler's persist-retry/degraded path) or tear the record on disk
//! (exercising checksum-guarded recovery). The default is `None` and
//! costs one branch per operation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use pga_cluster::chaos::{ChaosInjector, SpoolWriteChaos};
use pga_core::snapshot::{Snapshot, SnapshotWriter};

use crate::job::{stop_reason_from_name, stop_reason_name, JobId, JobProgress, JobState};
use crate::protocol::JobSpec;

/// Container tag for spool records (distinct from every engine tag).
const SPOOL_TAG: &str = "serve-job";
/// Spool record format version. Version 2 added the retry counter and
/// the `Poisoned` state tag; version-1 records still decode (with
/// `retries = 0`).
const SPOOL_VERSION: u8 = 2;
/// Spool file extension.
const EXTENSION: &str = "pgaj";

/// A job's durable state, as written after every slice.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Job identity.
    pub id: JobId,
    /// The verbatim wire spec (engines are rebuilt from this).
    pub spec: JobSpec,
    /// Lifecycle state at the last checkpoint.
    pub state: JobState,
    /// Slices granted so far.
    pub slices: u64,
    /// Engine steps executed so far.
    pub steps: u64,
    /// Active scheduler time consumed.
    pub consumed: Duration,
    /// Resurrections consumed so far.
    pub retries: u64,
    /// Mirrored progress counters.
    pub progress: JobProgress,
    /// The engine's nested PGAS snapshot; `None` only for jobs that
    /// reached a terminal state before their first slice.
    pub engine_snapshot: Option<Snapshot>,
}

/// Why a spool record could not be loaded.
#[derive(Debug)]
pub struct SpoolCorruption {
    /// Offending file.
    pub path: PathBuf,
    /// Human-readable cause.
    pub message: String,
}

/// Result of scanning a spool directory: every readable record plus a
/// report of everything that was skipped.
#[derive(Debug, Default)]
pub struct SpoolScan {
    /// Records that decoded and checksummed cleanly, ordered by id.
    pub records: Vec<JobRecord>,
    /// Files that did not (corrupt, truncated, foreign).
    pub skipped: Vec<SpoolCorruption>,
}

/// A directory of per-job checkpoint files.
pub struct Spool {
    dir: PathBuf,
    chaos: Option<Arc<ChaosInjector>>,
}

impl Spool {
    /// Opens (creating if needed) the spool directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, chaos: None })
    }

    /// Arms a chaos injector: scripted writes/reads fail or tear.
    pub fn set_chaos(&mut self, chaos: Option<Arc<ChaosInjector>>) {
        self.chaos = chaos;
    }

    /// The directory this spool persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_for(&self, id: JobId) -> PathBuf {
        self.dir.join(format!("{id}.{EXTENSION}"))
    }

    /// Atomically persists one record (tmp file + rename).
    pub fn save(&self, record: &JobRecord) -> io::Result<()> {
        let mut bytes = encode(record);
        if let Some(chaos) = &self.chaos {
            match chaos.on_spool_write() {
                SpoolWriteChaos::None => {}
                SpoolWriteChaos::Error => {
                    return Err(io::Error::other("chaos: injected spool write error"));
                }
                SpoolWriteChaos::Truncate(keep) => {
                    // Silent tear: the record lands corrupt (as if the
                    // device dropped the tail after the rename). The
                    // write "succeeds"; the checksum catches the damage
                    // at the next recovery scan.
                    bytes.truncate(keep.min(bytes.len()));
                }
            }
        }
        let target = self.file_for(record.id);
        let tmp = target.with_extension(format!("{EXTENSION}.tmp"));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &target)
    }

    /// Removes a job's record (idempotent).
    pub fn remove(&self, id: JobId) -> io::Result<()> {
        match fs::remove_file(self.file_for(id)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    /// Loads every record in the directory. Unreadable files are
    /// reported in [`SpoolScan::skipped`], never fatal.
    pub fn load_all(&self) -> io::Result<SpoolScan> {
        let mut scan = SpoolScan::default();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
                continue;
            }
            if self.chaos.as_ref().is_some_and(|c| c.on_spool_read()) {
                scan.skipped.push(SpoolCorruption {
                    path,
                    message: "chaos: injected spool read error".into(),
                });
                continue;
            }
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    scan.skipped.push(SpoolCorruption {
                        path,
                        message: e.to_string(),
                    });
                    continue;
                }
            };
            match decode(&bytes) {
                Ok(record) => scan.records.push(record),
                Err(message) => scan.skipped.push(SpoolCorruption { path, message }),
            }
        }
        scan.records.sort_by_key(|r| r.id);
        Ok(scan)
    }
}

fn encode(record: &JobRecord) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.put_u8(SPOOL_VERSION);
    w.put_u64(record.id.0);
    w.put_str(&record.spec.to_json_string());
    match &record.state {
        JobState::Queued => w.put_u8(0),
        JobState::Running => w.put_u8(1),
        JobState::Done(reason) => {
            w.put_u8(2);
            w.put_str(stop_reason_name(*reason));
        }
        JobState::Cancelled => w.put_u8(3),
        JobState::Failed(message) => {
            w.put_u8(4);
            w.put_str(message);
        }
        JobState::Poisoned(message) => {
            w.put_u8(5);
            w.put_str(message);
        }
    }
    w.put_u64(record.slices);
    w.put_u64(record.steps);
    w.put_u64(record.consumed.as_micros() as u64);
    w.put_u64(record.retries);
    w.put_u64(record.progress.generations);
    w.put_u64(record.progress.evaluations);
    w.put_f64(record.progress.best_fitness);
    w.put_bool(record.progress.best_is_optimal);
    match &record.engine_snapshot {
        Some(snapshot) => {
            w.put_bool(true);
            w.put_bytes(&snapshot.to_bytes());
        }
        None => w.put_bool(false),
    }
    Snapshot::new(SPOOL_TAG, w.into_bytes()).to_bytes()
}

fn decode(bytes: &[u8]) -> Result<JobRecord, String> {
    let container = Snapshot::from_bytes(bytes).map_err(|e| format!("bad container: {e:?}"))?;
    let mut r = container
        .reader_for(SPOOL_TAG)
        .map_err(|e| format!("not a spool record: {e:?}"))?;
    let fail = |what: &'static str| move |e| format!("bad {what}: {e:?}");
    let version = r.take_u8().map_err(fail("version"))?;
    if version == 0 || version > SPOOL_VERSION {
        return Err(format!("unsupported spool version {version}"));
    }
    let id = JobId(r.take_u64().map_err(fail("id"))?);
    let spec_text = r.take_str().map_err(fail("spec"))?;
    let spec = JobSpec::from_json_str(&spec_text).map_err(|e| format!("bad spec: {e}"))?;
    let state = match r.take_u8().map_err(fail("state"))? {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => {
            let name = r.take_str().map_err(fail("stop reason"))?;
            JobState::Done(
                stop_reason_from_name(&name)
                    .ok_or_else(|| format!("unknown stop reason `{name}`"))?,
            )
        }
        3 => JobState::Cancelled,
        4 => JobState::Failed(r.take_str().map_err(fail("error message"))?),
        5 if version >= 2 => JobState::Poisoned(r.take_str().map_err(fail("error message"))?),
        other => return Err(format!("unknown state tag {other}")),
    };
    let slices = r.take_u64().map_err(fail("slices"))?;
    let steps = r.take_u64().map_err(fail("steps"))?;
    let consumed = Duration::from_micros(r.take_u64().map_err(fail("consumed"))?);
    let retries = if version >= 2 {
        r.take_u64().map_err(fail("retries"))?
    } else {
        0
    };
    let progress = JobProgress {
        generations: r.take_u64().map_err(fail("generations"))?,
        evaluations: r.take_u64().map_err(fail("evaluations"))?,
        best_fitness: r.take_f64().map_err(fail("best fitness"))?,
        best_is_optimal: r.take_bool().map_err(fail("optimal flag"))?,
    };
    let engine_snapshot = if r.take_bool().map_err(fail("snapshot flag"))? {
        let nested = r.take_bytes().map_err(fail("engine snapshot"))?;
        Some(Snapshot::from_bytes(nested).map_err(|e| format!("bad engine snapshot: {e:?}"))?)
    } else {
        None
    };
    r.finish().map_err(|e| format!("trailing bytes: {e:?}"))?;
    Ok(JobRecord {
        id,
        spec,
        state,
        slices,
        steps,
        consumed,
        retries,
        progress,
        engine_snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Budget, EngineSpec, ProblemSpec};
    use pga_core::termination::StopReason;

    fn record(id: u64, state: JobState) -> JobRecord {
        JobRecord {
            id: JobId(id),
            spec: JobSpec {
                tenant: "acme".into(),
                problem: ProblemSpec::onemax(24),
                engine: EngineSpec::ga(12, 1),
                seed: 3,
                budget: Budget {
                    generations: Some(20),
                    ..Budget::default()
                },
            },
            state,
            slices: 4,
            steps: 32,
            consumed: Duration::from_micros(1234),
            retries: 1,
            progress: JobProgress {
                generations: 32,
                evaluations: 384,
                best_fitness: 21.0,
                best_is_optimal: false,
            },
            engine_snapshot: Some(Snapshot::new("ga", vec![1, 2, 3, 4])),
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pga-serve-spool-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_roundtrip_through_disk() {
        let dir = tmp_dir("roundtrip");
        let spool = Spool::open(&dir).unwrap();
        let states = [
            JobState::Queued,
            JobState::Running,
            JobState::Done(StopReason::TargetReached),
            JobState::Cancelled,
            JobState::Failed("island 2 panicked".into()),
            JobState::Poisoned("panicked 3 times".into()),
        ];
        for (i, state) in states.iter().enumerate() {
            spool.save(&record(i as u64, state.clone())).unwrap();
        }
        let scan = spool.load_all().unwrap();
        assert!(scan.skipped.is_empty(), "{:?}", scan.skipped);
        assert_eq!(scan.records.len(), states.len());
        for (i, state) in states.iter().enumerate() {
            assert_eq!(scan.records[i], record(i as u64, state.clone()));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_overwrites_and_remove_is_idempotent() {
        let dir = tmp_dir("overwrite");
        let spool = Spool::open(&dir).unwrap();
        let mut r = record(7, JobState::Running);
        spool.save(&r).unwrap();
        r.steps = 99;
        spool.save(&r).unwrap();
        let scan = spool.load_all().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].steps, 99);
        spool.remove(JobId(7)).unwrap();
        spool.remove(JobId(7)).unwrap();
        assert!(spool.load_all().unwrap().records.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_skipped_not_fatal() {
        let dir = tmp_dir("corrupt");
        let spool = Spool::open(&dir).unwrap();
        spool.save(&record(1, JobState::Queued)).unwrap();
        // Flip a payload byte in a valid record: checksum must catch it.
        let victim = dir.join("j2.pgaj");
        let mut bytes = encode(&record(2, JobState::Running));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();
        // And one file that is not a PGAS container at all.
        fs::write(dir.join("j3.pgaj"), b"garbage").unwrap();
        let scan = spool.load_all().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].id, JobId(1));
        assert_eq!(scan.skipped.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_write_error_fails_save_and_leaves_previous_record() {
        let dir = tmp_dir("chaos-write");
        let mut spool = Spool::open(&dir).unwrap();
        spool.set_chaos(Some(Arc::new(ChaosInjector::new(
            pga_cluster::ChaosPlan::none().spool_write_error(1),
        ))));
        let mut r = record(1, JobState::Running);
        spool.save(&r).unwrap();
        r.steps = 777;
        let err = spool.save(&r).unwrap_err();
        assert!(err.to_string().contains("chaos"), "{err}");
        // The previous consistent record is untouched.
        let scan = spool.load_all().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].steps, 32);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_write_is_caught_by_recovery_checksum() {
        let dir = tmp_dir("chaos-tear");
        let mut spool = Spool::open(&dir).unwrap();
        spool.set_chaos(Some(Arc::new(ChaosInjector::new(
            pga_cluster::ChaosPlan::none().spool_write_truncated(0, 24),
        ))));
        // The tear is silent at write time...
        spool.save(&record(9, JobState::Running)).unwrap();
        // ...and caught at the recovery scan: skipped, never fatal.
        let scan = spool.load_all().unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.skipped.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_read_error_skips_the_scripted_file_only() {
        let dir = tmp_dir("chaos-read");
        let mut spool = Spool::open(&dir).unwrap();
        spool.save(&record(1, JobState::Running)).unwrap();
        spool.save(&record(2, JobState::Running)).unwrap();
        spool.set_chaos(Some(Arc::new(ChaosInjector::new(
            pga_cluster::ChaosPlan::none().spool_read_error(0),
        ))));
        let scan = spool.load_all().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.skipped.len(), 1);
        assert!(scan.skipped[0].message.contains("chaos"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_one_records_decode_with_zero_retries() {
        // Hand-roll a version-1 record: same layout, no retries field.
        let r1 = record(3, JobState::Running);
        let mut w = SnapshotWriter::new();
        w.put_u8(1);
        w.put_u64(r1.id.0);
        w.put_str(&r1.spec.to_json_string());
        w.put_u8(1);
        w.put_u64(r1.slices);
        w.put_u64(r1.steps);
        w.put_u64(r1.consumed.as_micros() as u64);
        w.put_u64(r1.progress.generations);
        w.put_u64(r1.progress.evaluations);
        w.put_f64(r1.progress.best_fitness);
        w.put_bool(r1.progress.best_is_optimal);
        w.put_bool(false);
        let bytes = Snapshot::new(SPOOL_TAG, w.into_bytes()).to_bytes();
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.retries, 0);
        assert_eq!(decoded.id, JobId(3));
        assert_eq!(decoded.state, JobState::Running);
    }
}
