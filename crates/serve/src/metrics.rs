//! Plain-text rendering of server metrics for `GET /metrics`.
//!
//! The document is a flat `name value` listing (exposition-style, easy
//! to scrape and to diff): the runtime's counters and gauges, each
//! histogram's count/sum/mean/extremes plus conservative p50/p90/p99
//! bucket bounds, and the live counters of the shared work-stealing
//! pool every engine runs on.

use pga_observe::MetricsSnapshot;
use rayon::global_pool_stats;

fn push_line(out: &mut String, name: &str, value: impl std::fmt::Display) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders a metrics snapshot (plus the global pool's live counters)
/// as a plain-text document.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        push_line(&mut out, name, value);
    }
    for (name, value) in &snapshot.gauges {
        push_line(&mut out, name, value);
    }
    for (name, h) in &snapshot.histograms {
        push_line(&mut out, &format!("{name}.count"), h.count());
        push_line(&mut out, &format!("{name}.sum"), h.sum());
        if let Some(mean) = h.mean() {
            push_line(&mut out, &format!("{name}.mean"), mean);
        }
        if let Some(min) = h.min() {
            push_line(&mut out, &format!("{name}.min"), min);
        }
        if let Some(max) = h.max() {
            push_line(&mut out, &format!("{name}.max"), max);
        }
        for (q, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
            if let Some(bound) = h.quantile_bound(q) {
                push_line(&mut out, &format!("{name}.{label}"), bound);
            }
        }
    }
    let pool = global_pool_stats();
    push_line(&mut out, "pool.workers", pool.workers);
    push_line(&mut out, "pool.calls", pool.calls);
    push_line(&mut out, "pool.tasks_executed", pool.tasks_executed);
    push_line(&mut out, "pool.splits", pool.splits);
    push_line(&mut out, "pool.steals", pool.steals);
    push_line(&mut out, "pool.parks", pool.parks);
    push_line(&mut out, "pool.queue_wait_micros", pool.queue_wait_micros);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_observe::{exponential_bounds, Registry};

    #[test]
    fn render_lists_counters_gauges_histograms_and_pool() {
        let mut reg = Registry::default();
        reg.inc("serve.submitted", 3);
        reg.set_gauge("serve.jobs_live", 2.0);
        reg.histogram_with_bounds("serve.slice_micros", exponential_bounds(10.0, 2.0, 8));
        reg.observe("serve.slice_micros", 35.0);
        reg.observe("serve.slice_micros", 170.0);
        let text = render(&reg.snapshot());
        assert!(text.contains("serve.submitted 3\n"));
        assert!(text.contains("serve.jobs_live 2\n"));
        assert!(text.contains("serve.slice_micros.count 2\n"));
        assert!(text.contains("serve.slice_micros.p50 "));
        assert!(text.contains("pool.workers "));
        // Every line is strictly `name value`.
        for line in text.lines() {
            assert_eq!(line.split(' ').count(), 2, "bad line: {line}");
        }
    }
}
