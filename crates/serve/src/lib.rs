//! # pga-serve
//!
//! Multi-tenant **GA-as-a-service**: a zero-dependency HTTP/1.1 + JSONL
//! job server over the workspace's type-erased [`Engine`] runtime.
//!
//! Clients `POST` an optimization job — benchmark problem, engine
//! family, RNG seed, and a bounded budget — and the server multiplexes
//! *many heterogeneous jobs concurrently* on the one persistent
//! work-stealing pool the engines themselves evaluate fitness on. This
//! is the survey's "computing trends" endpoint taken literally: the
//! same PGA engine families, consumed as a service instead of a binary.
//!
//! Problems and families resolve through *registries*
//! ([`ProblemRegistry`]/[`FamilyRegistry`], see [`Registries`]): each
//! wire name maps to a validated constructor, the protocol layer
//! validates specs against the same table engines are later built from,
//! and `GET /families` lists whatever is registered. All seven stock
//! families — `ga`, `steady`, `cellular`, `island`, `async-steady`,
//! `cga`, `pcga` — are one registration call each; so is yours.
//!
//! The subsystem stacks six layers, each its own module:
//!
//! | Module | Responsibility |
//! |---|---|
//! | [`protocol`] | wire DTOs ([`JobSpec`] et al.) + a minimal JSON codec |
//! | [`factory`] | [`ProblemRegistry`]/[`FamilyRegistry`]: spec → [`BoxedEngine`](pga_core::erased::BoxedEngine) |
//! | [`job`] | job identity, lifecycle, status documents |
//! | [`scheduler`] | slice scheduling, DRR fairness, admission, recovery |
//! | [`spool`] | per-slice crash-safe checkpoints (PGAS container) |
//! | [`http`] | the HTTP/1.1 endpoint surface |
//! | [`metrics`] | `GET /metrics` plain-text rendering |
//!
//! ## Guarantees
//!
//! * **Slices never change trajectories.** The slice loop is
//!   check-then-step, mirroring the core driver, so a job sliced 100
//!   ways computes bit-for-bit the run an uninterrupted
//!   [`Driver`](pga_core::driver::Driver) would.
//! * **Crash safety.** Every job's engine snapshot is spooled after
//!   every slice (atomic rename); a restarted server re-admits all
//!   in-flight jobs and their final results are bit-identical to an
//!   uninterrupted run.
//! * **No tenant starvation.** Deficit round-robin over tenants in
//!   units of engine steps: a tenant hogging the queue cannot slow
//!   another tenant's step throughput beyond one slice of lag.
//! * **Bounded admission.** At the live-job cap, submissions are shed
//!   with `429` + `Retry-After` instead of queueing unboundedly.
//!
//! ## Quick example (embedded, no HTTP)
//!
//! ```
//! use pga_serve::{Budget, EngineSpec, JobSpec, ProblemSpec, ServeBuilder};
//! use std::time::Duration;
//!
//! let dir = std::env::temp_dir().join(format!("pga-serve-doc-{}", std::process::id()));
//! let serve = ServeBuilder::new()
//!     .spool_dir(&dir)
//!     .max_jobs(8)
//!     .build()
//!     .unwrap();
//! let id = serve
//!     .submit(JobSpec {
//!         tenant: "docs".into(),
//!         problem: ProblemSpec::onemax(32),
//!         engine: EngineSpec::ga(20, 1),
//!         seed: 7,
//!         budget: Budget { generations: Some(30), ..Budget::default() },
//!     })
//!     .unwrap();
//! assert!(serve.wait(id, Duration::from_secs(30)));
//! serve.shutdown();
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! [`Engine`]: pga_core::driver::Engine

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod factory;
pub mod http;
pub mod job;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod spool;

use std::ops::Deref;
use std::path::PathBuf;
use std::sync::Arc;

use pga_core::ConfigError;

pub use factory::{
    build_engine, default_registries, BuiltProblem, EngineCtx, FamilyRegistry, ProblemRegistry,
    Registries, SharedProblem,
};
pub use http::{serve_http, HttpServer};
pub use job::{JobId, JobProgress, JobState};
pub use pga_cluster::chaos::{ChaosInjector, ChaosPlan, StormSpec};
pub use protocol::{Budget, EngineSpec, JobSpec, ProblemSpec, ProtocolError};
pub use scheduler::{
    DrainReport, HealthReport, RecoverReport, ServeConfig, ServeRuntime, SubmitError,
};
pub use spool::{JobRecord, Spool};

/// Builder for a [`Serve`] instance. Follows the workspace convention:
/// every knob validated, failures reported as typed
/// [`ConfigError`]s, never panics.
#[derive(Clone, Debug)]
pub struct ServeBuilder {
    spool_dir: Option<PathBuf>,
    bind: Option<String>,
    max_jobs: usize,
    steps_per_slice: u64,
    quantum_steps: u64,
    max_batch: usize,
    retry_after_ms: u64,
    stream_capacity: usize,
    retry_budget: u64,
    backoff_base_ms: u64,
    slice_deadline_ms: u64,
    max_body_bytes: usize,
    chaos: Option<Arc<ChaosInjector>>,
}

impl Default for ServeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeBuilder {
    /// A builder with production defaults (64 live jobs, 8-step slices).
    #[must_use]
    pub fn new() -> Self {
        Self {
            spool_dir: None,
            bind: None,
            max_jobs: 64,
            steps_per_slice: 8,
            quantum_steps: 8,
            max_batch: 16,
            retry_after_ms: 1000,
            stream_capacity: 1 << 16,
            retry_budget: 3,
            backoff_base_ms: 20,
            slice_deadline_ms: 10_000,
            max_body_bytes: 1 << 20,
            chaos: None,
        }
    }

    /// Directory for crash-safe job checkpoints (required).
    #[must_use]
    pub fn spool_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spool_dir = Some(dir.into());
        self
    }

    /// Also bind an HTTP listener on `addr` (e.g. `"127.0.0.1:0"`).
    /// Without this, the instance is embedded-only.
    #[must_use]
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.bind = Some(addr.into());
        self
    }

    /// Admission bound: maximum concurrent live (non-terminal) jobs.
    #[must_use]
    pub fn max_jobs(mut self, n: usize) -> Self {
        self.max_jobs = n;
        self
    }

    /// Hard cap on engine steps per scheduling slice.
    #[must_use]
    pub fn steps_per_slice(mut self, n: u64) -> Self {
        self.steps_per_slice = n;
        self
    }

    /// Steps a tenant earns per deficit-round-robin visit.
    #[must_use]
    pub fn quantum_steps(mut self, n: u64) -> Self {
        self.quantum_steps = n;
        self
    }

    /// Maximum jobs sliced concurrently per scheduler turn.
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// `Retry-After` hint (milliseconds) attached to shed responses.
    #[must_use]
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// Per-job event stream capacity in lines (drop-oldest past it).
    #[must_use]
    pub fn stream_capacity(mut self, lines: usize) -> Self {
        self.stream_capacity = lines;
        self
    }

    /// Resurrections granted to a crashing job before it is quarantined
    /// as `poisoned`. `0` quarantines on the first crash.
    #[must_use]
    pub fn retry_budget(mut self, retries: u64) -> Self {
        self.retry_budget = retries;
        self
    }

    /// Base of the exponential resurrection backoff, in milliseconds
    /// (`base × 2^(n-1)` before retry *n*).
    #[must_use]
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }

    /// Watchdog deadline per slice, in milliseconds: a yielded slice
    /// that took longer is treated as stalled and replayed from its
    /// last good snapshot. `0` disables the watchdog.
    #[must_use]
    pub fn slice_deadline_ms(mut self, ms: u64) -> Self {
        self.slice_deadline_ms = ms;
        self
    }

    /// Largest request body `POST /jobs` accepts; larger
    /// `Content-Length`s are rejected `413` before the body is read.
    #[must_use]
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Arms a deterministic chaos plan (fault drills only — see
    /// [`ChaosPlan`]). Production leaves this unset: the default is a
    /// no-op branch per guarded operation.
    #[must_use]
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(Arc::new(ChaosInjector::new(plan)));
        self
    }

    /// Validates the configuration, opens the spool (recovering any
    /// jobs found in it), starts the scheduler, and — when
    /// [`bind`](Self::bind) was set — the HTTP listener.
    pub fn build(self) -> Result<Serve, ConfigError> {
        let spool_dir = self
            .spool_dir
            .ok_or(ConfigError::MissingComponent("spool_dir"))?;
        fn positive<T: PartialOrd + Default + std::fmt::Display>(
            name: &'static str,
            v: T,
        ) -> Result<T, ConfigError> {
            if v <= T::default() {
                return Err(ConfigError::InvalidParameter {
                    name,
                    message: format!("must be positive, got {v}"),
                });
            }
            Ok(v)
        }
        let config = ServeConfig {
            spool_dir,
            max_jobs: positive("max_jobs", self.max_jobs)?,
            steps_per_slice: positive("steps_per_slice", self.steps_per_slice)?,
            quantum_steps: positive("quantum_steps", self.quantum_steps)?,
            max_batch: positive("max_batch", self.max_batch)?,
            retry_after_ms: positive("retry_after_ms", self.retry_after_ms)?,
            stream_capacity: positive("stream_capacity", self.stream_capacity)?,
            // Zero is meaningful for all three: quarantine on first
            // crash, no backoff, watchdog disabled.
            retry_budget: self.retry_budget,
            backoff_base_ms: self.backoff_base_ms,
            slice_deadline_ms: self.slice_deadline_ms,
            max_body_bytes: positive("max_body_bytes", self.max_body_bytes)?,
            chaos: self.chaos,
        };
        let runtime =
            Arc::new(
                ServeRuntime::start(config).map_err(|e| ConfigError::InvalidParameter {
                    name: "spool_dir",
                    message: format!("cannot open spool: {e}"),
                })?,
            );
        let http = match &self.bind {
            None => None,
            Some(addr) => Some(serve_http(Arc::clone(&runtime), addr).map_err(|e| {
                ConfigError::InvalidParameter {
                    name: "bind",
                    message: format!("cannot bind `{addr}`: {e}"),
                }
            })?),
        };
        Ok(Serve { runtime, http })
    }
}

/// A running server instance: the job runtime plus (optionally) its
/// HTTP listener. Dereferences to [`ServeRuntime`], so the whole
/// embedded API (`submit`, `wait`, `cancel`, `metrics_text`, …) is
/// available directly on it.
pub struct Serve {
    runtime: Arc<ServeRuntime>,
    http: Option<HttpServer>,
}

impl Serve {
    /// The HTTP listener's bound address, when one was requested.
    #[must_use]
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().map(HttpServer::addr)
    }

    /// A shareable handle to the underlying runtime.
    #[must_use]
    pub fn runtime(&self) -> Arc<ServeRuntime> {
        Arc::clone(&self.runtime)
    }

    /// Graceful shutdown: stop the HTTP listener, finish and persist
    /// the in-flight slice batch, and join the scheduler.
    pub fn shutdown(mut self) {
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
        self.runtime.shutdown();
    }

    /// Crash simulation (see [`ServeRuntime::abandon`]): the in-flight
    /// slice batch is lost, the spool keeps each job's previous slice.
    pub fn abandon(mut self) {
        if let Some(mut http) = self.http.take() {
            http.shutdown();
        }
        self.runtime.abandon();
    }
}

impl Deref for Serve {
    type Target = ServeRuntime;

    fn deref(&self) -> &ServeRuntime {
        &self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_a_spool_dir() {
        assert_eq!(
            ServeBuilder::new().build().err(),
            Some(ConfigError::MissingComponent("spool_dir"))
        );
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        let err = ServeBuilder::new()
            .spool_dir(std::env::temp_dir().join("pga-serve-zero"))
            .max_jobs(0)
            .build()
            .err();
        assert!(matches!(
            err,
            Some(ConfigError::InvalidParameter {
                name: "max_jobs",
                ..
            })
        ));
    }
}
