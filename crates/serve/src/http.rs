//! Zero-dependency HTTP/1.1 front end over the job runtime.
//!
//! One request per connection (`Connection: close` throughout), a
//! thread per connection, bounded request sizes. The endpoint surface:
//!
//! | Method & path          | Meaning                             | Responses |
//! |------------------------|-------------------------------------|-----------|
//! | `POST /jobs`           | Submit a [`JobSpec`] JSON body      | `201` `{"id":"j0"}`, `400`, `413`, `429` + `Retry-After`, `503` |
//! | `GET /jobs/:id`        | Job status document                 | `200`, `404` |
//! | `GET /jobs/:id/events` | JSONL event stream (close-delimited)| `200`, `404` |
//! | `DELETE /jobs/:id`     | Cooperative cancel                  | `200`, `404`, `409` |
//! | `GET /metrics`         | Plain-text runtime + pool metrics   | `200` |
//! | `GET /families`        | Registered engine families/problems | `200` |
//! | `GET /healthz`         | Liveness + degraded/quarantine info | `200` |
//! | `GET /readyz`          | Readiness (admission open?)         | `200`, `503` |
//! | `POST /drain`          | Graceful drain: close admission, persist all | `200` |
//!
//! Hardening: both a read and a write timeout bound every connection,
//! and oversized `Content-Length`s are rejected `413` *before* the body
//! is read (cap configurable via `ServeBuilder::max_body_bytes`).
//!
//! The events endpoint streams each line the engine's recorder emits,
//! polling the job's shared buffer until the job reaches a terminal
//! state and the buffer drains; the end of the body is signalled by the
//! connection closing.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::job::JobId;
use crate::protocol::{JobSpec, Json};
use crate::scheduler::{ServeRuntime, SubmitError};

/// Largest accepted header block.
const MAX_HEAD: usize = 16 << 10;
/// Poll interval for the events stream.
const EVENT_POLL: Duration = Duration::from_millis(5);
/// Read and write timeout per connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running HTTP listener bound to a local address. Dropping (or
/// calling [`shutdown`](Self::shutdown)) stops accepting; in-flight
/// event streams end when their jobs finish.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound local address (useful with `:0` ephemeral binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `runtime` until the
/// returned handle is dropped.
pub fn serve_http(runtime: Arc<ServeRuntime>, addr: &str) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("pga-serve-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    if runtime.chaos().is_some_and(|c| c.on_accept()) {
                        // Scripted connection drop: close unanswered,
                        // as if the process vanished mid-accept.
                        drop(conn);
                        continue;
                    }
                    let runtime = Arc::clone(&runtime);
                    let _ = std::thread::Builder::new()
                        .name("pga-serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(&runtime, conn);
                        });
                }
            })?
    };
    Ok(HttpServer {
        addr,
        stop,
        acceptor: Some(acceptor),
    })
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Why a request could not be read: the HTTP status to answer with plus
/// a human-readable message. IO failures map to `400`.
struct RequestError {
    code: u16,
    message: String,
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        Self {
            code: 400,
            message: e.to_string(),
        }
    }
}

fn bad_request(message: &str) -> RequestError {
    RequestError {
        code: 400,
        message: message.into(),
    }
}

fn read_request(conn: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    conn.set_read_timeout(Some(IO_TIMEOUT))?;
    conn.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(bad_request("bad request line"));
    }
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(bad_request("headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad_request("bad length"))?;
            }
        }
    }
    // Reject oversized bodies *before* reading a byte of them: a
    // misbehaving client cannot make the server buffer its payload.
    if content_length > max_body {
        return Err(RequestError {
            code: 413,
            message: format!("body of {content_length} bytes exceeds the {max_body}-byte cap"),
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(
    conn: &mut TcpStream,
    code: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    conn.write_all(head.as_bytes())?;
    conn.write_all(body)?;
    conn.flush()
}

fn error_body(message: &str) -> Vec<u8> {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
        .to_json_string()
        .into_bytes()
}

fn handle_connection(runtime: &ServeRuntime, mut conn: TcpStream) -> io::Result<()> {
    let request = match read_request(&mut conn, runtime.max_body_bytes()) {
        Ok(request) => request,
        Err(e) => {
            return respond(
                &mut conn,
                e.code,
                "application/json",
                &[],
                &error_body(&e.message),
            );
        }
    };
    let segments: Vec<&str> = request
        .path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => handle_submit(runtime, &mut conn, &request.body),
        ("GET", ["jobs", id]) => match id
            .parse::<JobId>()
            .ok()
            .and_then(|id| runtime.status_json(id))
        {
            Some(doc) => respond(&mut conn, 200, "application/json", &[], doc.as_bytes()),
            None => respond(
                &mut conn,
                404,
                "application/json",
                &[],
                &error_body("no such job"),
            ),
        },
        ("GET", ["jobs", id, "events"]) => handle_events(runtime, &mut conn, id),
        ("DELETE", ["jobs", id]) => match id.parse::<JobId>() {
            Ok(id) if runtime.cancel(id) => {
                let doc = Json::Obj(vec![
                    ("id".into(), Json::Str(id.to_string())),
                    ("cancelled".into(), Json::Bool(true)),
                ]);
                respond(
                    &mut conn,
                    200,
                    "application/json",
                    &[],
                    doc.to_json_string().as_bytes(),
                )
            }
            Ok(id) if runtime.state(id).is_some() => respond(
                &mut conn,
                409,
                "application/json",
                &[],
                &error_body("job already terminal"),
            ),
            _ => respond(
                &mut conn,
                404,
                "application/json",
                &[],
                &error_body("no such job"),
            ),
        },
        ("GET", ["metrics"]) => respond(
            &mut conn,
            200,
            "text/plain",
            &[],
            runtime.metrics_text().as_bytes(),
        ),
        ("GET", ["families"]) => {
            let reg = crate::factory::Registries::builtin();
            let names = |items: Vec<&str>| {
                Json::Arr(items.into_iter().map(|n| Json::Str(n.into())).collect())
            };
            let doc = Json::Obj(vec![
                ("families".into(), names(reg.families.names())),
                ("problems".into(), names(reg.problems.names())),
            ]);
            respond(
                &mut conn,
                200,
                "application/json",
                &[],
                doc.to_json_string().as_bytes(),
            )
        }
        ("GET", ["healthz"]) => {
            let health = runtime.health();
            let doc = Json::Obj(vec![
                (
                    "status".into(),
                    Json::Str(if health.degraded { "degraded" } else { "ok" }.into()),
                ),
                ("degraded".into(), Json::Bool(health.degraded)),
                ("draining".into(), Json::Bool(health.draining)),
                ("live".into(), Json::Num(health.live as f64)),
                ("queued".into(), Json::Num(health.queued as f64)),
                ("poisoned".into(), Json::Num(health.poisoned as f64)),
            ]);
            respond(
                &mut conn,
                200,
                "application/json",
                &[],
                doc.to_json_string().as_bytes(),
            )
        }
        ("GET", ["readyz"]) => {
            if runtime.ready() {
                respond(&mut conn, 200, "application/json", &[], b"{\"ready\":true}")
            } else {
                respond(
                    &mut conn,
                    503,
                    "application/json",
                    &[],
                    b"{\"ready\":false}",
                )
            }
        }
        ("POST", ["drain"]) => {
            let report = runtime.drain();
            let doc = Json::Obj(vec![
                ("persisted".into(), Json::Num(report.persisted as f64)),
                ("failed".into(), Json::Num(report.failed as f64)),
                ("terminal".into(), Json::Num(report.terminal as f64)),
            ]);
            respond(
                &mut conn,
                200,
                "application/json",
                &[],
                doc.to_json_string().as_bytes(),
            )
        }
        (_, ["jobs", ..] | ["metrics"] | ["families"] | ["healthz"] | ["readyz"] | ["drain"]) => {
            respond(
                &mut conn,
                405,
                "application/json",
                &[],
                &error_body("method not allowed"),
            )
        }
        _ => respond(
            &mut conn,
            404,
            "application/json",
            &[],
            &error_body("no such route"),
        ),
    }
}

fn handle_submit(runtime: &ServeRuntime, conn: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            return respond(
                conn,
                400,
                "application/json",
                &[],
                &error_body("body is not UTF-8"),
            )
        }
    };
    let spec = match JobSpec::from_json_str(text) {
        Ok(spec) => spec,
        Err(e) => {
            return respond(
                conn,
                400,
                "application/json",
                &[],
                &error_body(&e.to_string()),
            )
        }
    };
    match runtime.submit(spec) {
        Ok(id) => {
            let doc = Json::Obj(vec![("id".into(), Json::Str(id.to_string()))]);
            respond(
                conn,
                201,
                "application/json",
                &[],
                doc.to_json_string().as_bytes(),
            )
        }
        Err(SubmitError::Shed { retry_after_ms }) => {
            let seconds = retry_after_ms.div_ceil(1000).max(1);
            respond(
                conn,
                429,
                "application/json",
                &[("Retry-After", seconds.to_string())],
                &error_body("queue full"),
            )
        }
        Err(SubmitError::ShuttingDown) => respond(
            conn,
            503,
            "application/json",
            &[],
            &error_body("shutting down"),
        ),
        Err(SubmitError::Invalid(e)) => respond(
            conn,
            400,
            "application/json",
            &[],
            &error_body(&e.to_string()),
        ),
    }
}

/// Streams the job's JSONL events until the job is terminal and its
/// buffer has drained; the body is delimited by connection close.
fn handle_events(runtime: &ServeRuntime, conn: &mut TcpStream, id: &str) -> io::Result<()> {
    let Some(stream) = id.parse::<JobId>().ok().and_then(|id| runtime.events(id)) else {
        return respond(
            conn,
            404,
            "application/json",
            &[],
            &error_body("no such job"),
        );
    };
    conn.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )?;
    loop {
        let lines = stream.drain_lines();
        for line in &lines {
            conn.write_all(line.as_bytes())?;
            conn.write_all(b"\n")?;
        }
        if !lines.is_empty() {
            conn.flush()?;
        }
        if stream.is_closed() && stream.is_empty() {
            break;
        }
        if lines.is_empty() {
            std::thread::sleep(EVENT_POLL);
        }
    }
    conn.flush()
}
