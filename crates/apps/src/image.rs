//! Grayscale images, rigid transforms, and 2-phase GA registration
//! (Chalermwat, El-Ghazawi & LeMoigne 2001 analog).
//!
//! The LandSat imagery of the paper is replaced by synthetic scenes with
//! known ground-truth transforms, so registration error is measurable
//! exactly. The 2-phase scheme is preserved: phase 1 searches a
//! down-sampled pyramid level (cheap, coarse), phase 2 refines around the
//! phase-1 candidates at full resolution.

use pga_core::{Bounds, Objective, Problem, RealVector, Rng64};
use std::sync::Arc;

/// A row-major grayscale image with `f32` pixels in `[0, 1]`.
#[derive(Clone, Debug)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

/// A rigid 2-D transform: rotation (radians) about the image center, then
/// translation in pixels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RigidTransform {
    /// Horizontal shift in pixels.
    pub tx: f64,
    /// Vertical shift in pixels.
    pub ty: f64,
    /// Rotation in radians.
    pub theta: f64,
}

impl Image {
    /// A black image.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Self {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// A synthetic scene: smooth gradient background plus `blobs` random
    /// Gaussian blobs (deterministic from `seed`). Rich in structure so
    /// correlation has a sharp optimum.
    #[must_use]
    pub fn synthetic(width: usize, height: usize, blobs: usize, seed: u64) -> Self {
        let mut img = Self::new(width, height);
        let mut rng = Rng64::new(seed);
        let blob_params: Vec<(f64, f64, f64, f64)> = (0..blobs)
            .map(|_| {
                (
                    rng.range_f64(0.0, width as f64),
                    rng.range_f64(0.0, height as f64),
                    rng.range_f64(2.0, width as f64 / 6.0), // radius
                    rng.range_f64(0.3, 1.0),                // amplitude
                )
            })
            .collect();
        for y in 0..height {
            for x in 0..width {
                let mut v = 0.2 * (x as f64 / width as f64) + 0.1 * (y as f64 / height as f64);
                for &(bx, by, r, a) in &blob_params {
                    let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
                    v += a * (-d2 / (2.0 * r * r)).exp();
                }
                img.pixels[y * width + x] = v.clamp(0.0, 1.0) as f32;
            }
        }
        img
    }

    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)` (must be in range).
    #[inline]
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.pixels[y * self.width + x]
    }

    /// Bilinear sample at fractional coordinates; returns `None` outside.
    #[must_use]
    pub fn sample(&self, x: f64, y: f64) -> Option<f32> {
        if x < 0.0 || y < 0.0 || x > (self.width - 1) as f64 || y > (self.height - 1) as f64 {
            return None;
        }
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let fx = (x - x0 as f64) as f32;
        let fy = (y - y0 as f64) as f32;
        let top = self.get(x0, y0) * (1.0 - fx) + self.get(x1, y0) * fx;
        let bot = self.get(x0, y1) * (1.0 - fx) + self.get(x1, y1) * fx;
        Some(top * (1.0 - fy) + bot * fy)
    }

    /// Renders this image under `t`: output pixel `(x, y)` samples the
    /// source at the inverse-transformed location (pixels mapping outside
    /// are black).
    #[must_use]
    pub fn warp(&self, t: RigidTransform) -> Image {
        let mut out = Image::new(self.width, self.height);
        let cx = (self.width - 1) as f64 / 2.0;
        let cy = (self.height - 1) as f64 / 2.0;
        let (sin, cos) = (-t.theta).sin_cos(); // inverse rotation
        for y in 0..self.height {
            for x in 0..self.width {
                // Inverse transform: undo translation, then rotation.
                let dx = x as f64 - t.tx - cx;
                let dy = y as f64 - t.ty - cy;
                let sx = cx + dx * cos - dy * sin;
                let sy = cy + dx * sin + dy * cos;
                if let Some(v) = self.sample(sx, sy) {
                    out.pixels[y * self.width + x] = v;
                }
            }
        }
        out
    }

    /// 2× box-filter downsample (dimensions halve, minimum 1).
    #[must_use]
    pub fn downsample(&self) -> Image {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut out = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut sum = 0.0f32;
                let mut n = 0.0f32;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let sx = x * 2 + dx;
                        let sy = y * 2 + dy;
                        if sx < self.width && sy < self.height {
                            sum += self.get(sx, sy);
                            n += 1.0;
                        }
                    }
                }
                out.pixels[y * w + x] = sum / n;
            }
        }
        out
    }

    /// Normalized cross-correlation with an equally-sized image, over the
    /// pixels where both are defined (here: all). Returns a value in
    /// `[-1, 1]`; 1 means identical up to affine intensity change.
    #[must_use]
    pub fn ncc(&self, other: &Image) -> f64 {
        assert_eq!(self.width, other.width, "ncc: size mismatch");
        assert_eq!(self.height, other.height, "ncc: size mismatch");
        let n = self.pixels.len() as f64;
        let mean_a = self.pixels.iter().map(|&p| p as f64).sum::<f64>() / n;
        let mean_b = other.pixels.iter().map(|&p| p as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_a = 0.0;
        let mut var_b = 0.0;
        for (&a, &b) in self.pixels.iter().zip(&other.pixels) {
            let da = a as f64 - mean_a;
            let db = b as f64 - mean_b;
            cov += da * db;
            var_a += da * da;
            var_b += db * db;
        }
        if var_a <= 0.0 || var_b <= 0.0 {
            return 0.0;
        }
        cov / (var_a.sqrt() * var_b.sqrt())
    }
}

/// GA-searchable registration problem: find the transform that aligns a
/// floating image to a reference. Genome is `[tx, ty, theta]`; fitness is
/// `1 − NCC(reference, warp(floating))`, minimized.
#[derive(Clone)]
pub struct Registration {
    reference: Arc<Image>,
    floating: Arc<Image>,
    bounds: Bounds,
}

impl Registration {
    /// Search space: translations within ±`max_shift` pixels, rotation
    /// within ±`max_theta` radians.
    #[must_use]
    pub fn new(reference: Image, floating: Image, max_shift: f64, max_theta: f64) -> Self {
        assert_eq!(reference.width(), floating.width());
        assert_eq!(reference.height(), floating.height());
        Self {
            reference: Arc::new(reference),
            floating: Arc::new(floating),
            bounds: Bounds::per_dim(vec![
                (-max_shift, max_shift),
                (-max_shift, max_shift),
                (-max_theta, max_theta),
            ]),
        }
    }

    /// Builds the half-resolution problem for phase 1; candidate transforms
    /// found there scale back up via [`Registration::upscale_genome`].
    #[must_use]
    pub fn downsampled(&self) -> Registration {
        let (lo0, hi0) = self.bounds.interval(0);
        let (_, _) = (lo0, hi0);
        let (.., max_theta) = {
            let (lo, hi) = self.bounds.interval(2);
            (lo, hi)
        };
        Registration {
            reference: Arc::new(self.reference.downsample()),
            floating: Arc::new(self.floating.downsample()),
            bounds: Bounds::per_dim(vec![
                (lo0 / 2.0, hi0 / 2.0),
                (lo0 / 2.0, hi0 / 2.0),
                (self.bounds.interval(2).0, max_theta),
            ]),
        }
    }

    /// Converts a phase-1 (half-resolution) genome into full-resolution
    /// coordinates: translations double, rotation is unchanged.
    #[must_use]
    pub fn upscale_genome(genome: &RealVector) -> RealVector {
        RealVector::new(vec![genome[0] * 2.0, genome[1] * 2.0, genome[2]])
    }

    /// Search-space bounds.
    #[must_use]
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Decodes a genome into a transform.
    #[must_use]
    pub fn transform_of(genome: &RealVector) -> RigidTransform {
        RigidTransform {
            tx: genome[0],
            ty: genome[1],
            theta: genome[2],
        }
    }

    /// Registration error against a known ground truth (for synthetic
    /// benchmarks): `(translation_error_pixels, rotation_error_radians)`.
    #[must_use]
    pub fn error_vs(genome: &RealVector, truth: RigidTransform) -> (f64, f64) {
        let t = Self::transform_of(genome);
        let dt = ((t.tx - truth.tx).powi(2) + (t.ty - truth.ty).powi(2)).sqrt();
        (dt, (t.theta - truth.theta).abs())
    }
}

impl Problem for Registration {
    type Genome = RealVector;

    fn name(&self) -> String {
        format!(
            "registration-{}x{}",
            self.reference.width(),
            self.reference.height()
        )
    }

    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn evaluate(&self, genome: &RealVector) -> f64 {
        let warped = self.floating.warp(Self::transform_of(genome));
        1.0 - self.reference.ncc(&warped)
    }

    fn random_genome(&self, rng: &mut Rng64) -> RealVector {
        self.bounds.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_in_range() {
        let a = Image::synthetic(32, 32, 5, 1);
        let b = Image::synthetic(32, 32, 5, 1);
        assert_eq!(a.pixels, b.pixels);
        assert!(a.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn identity_warp_is_identity() {
        let img = Image::synthetic(24, 24, 4, 2);
        let warped = img.warp(RigidTransform {
            tx: 0.0,
            ty: 0.0,
            theta: 0.0,
        });
        for (a, b) in img.pixels.iter().zip(&warped.pixels) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn translation_shifts_pixels() {
        let mut img = Image::new(8, 8);
        img.pixels[3 * 8 + 3] = 1.0;
        let shifted = img.warp(RigidTransform {
            tx: 2.0,
            ty: 1.0,
            theta: 0.0,
        });
        assert!((shifted.get(5, 4) - 1.0).abs() < 1e-6);
        assert!(shifted.get(3, 3) < 1e-6);
    }

    #[test]
    fn ncc_self_is_one_and_shift_lowers_it() {
        let img = Image::synthetic(32, 32, 6, 3);
        assert!((img.ncc(&img) - 1.0).abs() < 1e-9);
        let shifted = img.warp(RigidTransform {
            tx: 5.0,
            ty: -3.0,
            theta: 0.1,
        });
        assert!(img.ncc(&shifted) < 0.99);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = Image::synthetic(33, 32, 3, 4);
        let small = img.downsample();
        assert_eq!(small.width(), 16);
        assert_eq!(small.height(), 16);
    }

    #[test]
    fn registration_fitness_minimal_at_truth() {
        let scene = Image::synthetic(40, 40, 8, 5);
        let truth = RigidTransform {
            tx: 3.0,
            ty: -2.0,
            theta: 0.05,
        };
        // The "floating" image is the scene moved by the *inverse* story:
        // we observe `scene` and a moved copy; searching for `truth` should
        // re-align them.
        let floating = scene.clone();
        let reference = scene.warp(truth);
        let reg = Registration::new(reference, floating, 8.0, 0.3);
        let at_truth = reg.evaluate(&RealVector::new(vec![truth.tx, truth.ty, truth.theta]));
        let at_zero = reg.evaluate(&RealVector::new(vec![0.0, 0.0, 0.0]));
        let at_wrong = reg.evaluate(&RealVector::new(vec![-5.0, 5.0, -0.2]));
        assert!(at_truth < 0.05, "residual at truth: {at_truth}");
        assert!(at_truth < at_zero && at_truth < at_wrong);
    }

    #[test]
    fn upscale_doubles_translation_only() {
        let g = RealVector::new(vec![1.5, -2.0, 0.1]);
        let up = Registration::upscale_genome(&g);
        assert_eq!(up.values(), &[3.0, -4.0, 0.1]);
    }

    #[test]
    fn downsampled_problem_halves_shift_bounds() {
        let scene = Image::synthetic(32, 32, 4, 6);
        let reg = Registration::new(scene.clone(), scene, 8.0, 0.3);
        let coarse = reg.downsampled();
        assert_eq!(coarse.bounds().interval(0), (-4.0, 4.0));
        assert_eq!(coarse.bounds().interval(2), (-0.3, 0.3));
    }

    #[test]
    fn error_vs_ground_truth() {
        let truth = RigidTransform {
            tx: 1.0,
            ty: 2.0,
            theta: 0.1,
        };
        let (dt, dr) = Registration::error_vs(&RealVector::new(vec![4.0, 6.0, 0.3]), truth);
        assert!((dt - 5.0).abs() < 1e-12);
        assert!((dr - 0.2).abs() < 1e-12);
    }
}
