//! Transonic-wing design with a real-coded Adaptive Range GA
//! (Oyama, Obayashi & Nakamura, PPSN 2000 analog).
//!
//! The paper's CFD evaluation is replaced by an analytic aerodynamic
//! surrogate (see DESIGN.md §1): a smooth drag bowl plus a narrow
//! "transonic shock" penalty valley and a lift-constraint penalty, giving
//! the ill-scaled, narrow-optimum landscape that motivated ARGA. The ARGA
//! loop re-centers the decoding range on the population statistics of the
//! elite every few generations, so the search zooms into promising regions
//! — the paper's claim is that this beats a fixed-range real-coded GA on
//! exactly this kind of landscape.

use pga_core::ops::{BlxAlpha, GaussianMutation, Tournament};
use pga_core::{Bounds, Ga, GaBuilder, Objective, Problem, RealVector, Rng64, Scheme, Termination};
use std::sync::Arc;

/// Analytic stand-in for a transonic wing drag evaluation over `dim`
/// normalized design variables (twist/camber/thickness stand-ins).
///
/// `f(x) = Σ (x_i − x*_i)² · w_i + shock(x) + lift_penalty(x)`, where the
/// optimum `x*` sits off-center, weights are badly scaled (×1 … ×100), the
/// shock term carves a narrow curved valley, and the lift penalty grows
/// when the mean design variable drops below a threshold. Minimized;
/// optimum value 0 at `x*`.
#[derive(Clone, Debug)]
pub struct WingDesign {
    optimum: Vec<f64>,
    weights: Vec<f64>,
    bounds: Bounds,
}

impl WingDesign {
    /// Instance with `dim` design variables, generated from `seed`.
    #[must_use]
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim >= 2, "need at least two design variables");
        let mut rng = Rng64::new(seed);
        let mut optimum: Vec<f64> = (0..dim).map(|_| rng.range_f64(0.2, 0.8)).collect();
        // Keep the optimum clear of the lift-constraint boundary so the
        // planted design is penalty-free (f(x*) = 0 exactly).
        let mean = optimum.iter().sum::<f64>() / dim as f64;
        if mean < 0.35 {
            let shift = 0.35 - mean;
            for o in &mut optimum {
                *o = (*o + shift).min(0.8);
            }
        }
        // Log-uniform weights across two orders of magnitude: ill scaling.
        let weights: Vec<f64> = (0..dim)
            .map(|_| 10f64.powf(rng.range_f64(0.0, 2.0)))
            .collect();
        Self {
            optimum,
            weights,
            bounds: Bounds::uniform(0.0, 1.0, dim),
        }
    }

    /// Design-space bounds (the *initial* ARGA decoding range).
    #[must_use]
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The planted optimal design (ground truth for error measurement).
    #[must_use]
    pub fn optimal_design(&self) -> &[f64] {
        &self.optimum
    }

    /// Distance of a design from the planted optimum.
    #[must_use]
    pub fn design_error(&self, x: &RealVector) -> f64 {
        x.values()
            .iter()
            .zip(&self.optimum)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl Problem for WingDesign {
    type Genome = RealVector;

    fn name(&self) -> String {
        format!("wing-design-{}d", self.optimum.len())
    }

    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn evaluate(&self, x: &RealVector) -> f64 {
        debug_assert_eq!(x.len(), self.optimum.len());
        let mut drag = 0.0;
        for ((xi, oi), w) in x.values().iter().zip(&self.optimum).zip(&self.weights) {
            drag += w * (xi - oi) * (xi - oi);
        }
        // Narrow curved "shock" valley coupling consecutive deviations
        // from the optimum (Rosenbrock-style in shifted coordinates, so
        // the planted optimum scores exactly zero).
        let shock: f64 = (1..x.len())
            .map(|i| {
                let u0 = x[i - 1] - self.optimum[i - 1];
                let u1 = x[i] - self.optimum[i];
                30.0 * (u1 - u0 * u0).powi(2)
            })
            .sum();
        // Lift constraint: mean design variable must stay above 0.3.
        let mean = x.values().iter().sum::<f64>() / x.len() as f64;
        let lift_penalty = if mean < 0.3 {
            100.0 * (0.3 - mean)
        } else {
            0.0
        };
        drag + shock + lift_penalty
    }

    fn random_genome(&self, rng: &mut Rng64) -> RealVector {
        self.bounds.sample(rng)
    }

    fn optimum(&self) -> Option<f64> {
        Some(0.0)
    }

    fn optimum_epsilon(&self) -> f64 {
        0.05
    }
}

/// Result of an (A)RGA search.
#[derive(Clone, Debug)]
pub struct ArgaReport {
    /// Best design found.
    pub best: RealVector,
    /// Best fitness.
    pub best_fitness: f64,
    /// Total fitness evaluations.
    pub evaluations: u64,
    /// Number of range adaptations performed (0 for the fixed-range GA).
    pub adaptations: usize,
    /// The final decoding range per dimension.
    pub final_range: Vec<(f64, f64)>,
}

/// Configuration of the adaptive-range loop.
#[derive(Clone, Copy, Debug)]
pub struct ArgaConfig {
    /// Population size per stage.
    pub pop_size: usize,
    /// Generations between range adaptations.
    pub stage_generations: u64,
    /// Number of adaptation stages.
    pub stages: usize,
    /// Range half-width in elite standard deviations (paper uses ~2σ).
    pub sigma_factor: f64,
}

impl Default for ArgaConfig {
    fn default() -> Self {
        Self {
            pop_size: 40,
            stage_generations: 15,
            stages: 6,
            sigma_factor: 2.0,
        }
    }
}

fn stage_ga(
    problem: &Arc<WingDesign>,
    bounds: Bounds,
    pop_size: usize,
    seed: u64,
) -> Ga<Arc<WingDesign>> {
    // Mutation scale follows the current range so zooming keeps relative
    // step sizes constant — the essence of range adaptation.
    let span = {
        let (lo, hi) = bounds.interval(0);
        (hi - lo).max(1e-6)
    };
    GaBuilder::new(Arc::clone(problem))
        .seed(seed)
        .pop_size(pop_size)
        .selection(Tournament::binary())
        .crossover(BlxAlpha::new(bounds.clone()))
        .mutation(GaussianMutation {
            p: 0.25,
            sigma: 0.15 * span,
            bounds,
        })
        .scheme(Scheme::Generational { elitism: 2 })
        .build()
        .expect("valid configuration")
}

/// Runs the Adaptive Range GA: alternating evolution stages and range
/// re-centering on the elite's mean ± `sigma_factor`·σ (clipped to the
/// problem's global bounds).
#[must_use]
pub fn adaptive_range_search(
    problem: &Arc<WingDesign>,
    config: ArgaConfig,
    seed: u64,
) -> ArgaReport {
    let dim = problem.bounds().dim();
    let mut bounds = problem.bounds().clone();
    let mut best: Option<(RealVector, f64)> = None;
    let mut evaluations = 0u64;
    let mut adaptations = 0usize;

    for stage in 0..config.stages {
        let mut ga = stage_ga(
            problem,
            bounds.clone(),
            config.pop_size,
            seed + stage as u64,
        );
        let r = ga
            .run(&Termination::new().max_generations(config.stage_generations))
            .expect("bounded");
        evaluations += r.evaluations;
        let stage_best = (r.best.genome.clone(), r.best_fitness);
        if best.as_ref().is_none_or(|(_, f)| stage_best.1 < *f) {
            best = Some(stage_best);
        }

        // Re-center the range on the elite half of the final population.
        let pop = ga.population();
        let elite = pop.top_k_indices(Objective::Minimize, config.pop_size / 2);
        let mut intervals = Vec::with_capacity(dim);
        for d in 0..dim {
            let vals: Vec<f64> = elite
                .iter()
                .map(|&i| pop.members()[i].genome.values()[d])
                .collect();
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let half = (config.sigma_factor * var.sqrt()).max(1e-3);
            let (glo, ghi) = problem.bounds().interval(d);
            let lo = (mean - half).max(glo);
            let hi = (mean + half).min(ghi);
            intervals.push(if lo < hi { (lo, hi) } else { (glo, ghi) });
        }
        bounds = Bounds::per_dim(intervals);
        adaptations += 1;
    }

    let (genome, best_fitness) = best.expect("at least one stage ran");
    ArgaReport {
        final_range: (0..dim).map(|d| bounds.interval(d)).collect(),
        best: genome,
        best_fitness,
        evaluations,
        adaptations,
    }
}

/// Fixed-range control: one GA over the full range, stopped at the same
/// evaluation budget an ARGA run spent (pass
/// [`ArgaReport::evaluations`] for a like-for-like comparison).
#[must_use]
pub fn fixed_range_search(
    problem: &Arc<WingDesign>,
    config: ArgaConfig,
    budget_evals: u64,
    seed: u64,
) -> ArgaReport {
    let mut ga = stage_ga(problem, problem.bounds().clone(), config.pop_size, seed);
    let r = ga
        .run(&Termination::new().max_evaluations(budget_evals))
        .expect("bounded");
    ArgaReport {
        final_range: (0..problem.bounds().dim())
            .map(|d| problem.bounds().interval(d))
            .collect(),
        best: r.best.genome.clone(),
        best_fitness: r.best_fitness,
        evaluations: r.evaluations,
        adaptations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> Arc<WingDesign> {
        Arc::new(WingDesign::new(8, 3))
    }

    #[test]
    fn optimum_scores_zero() {
        let p = problem();
        let x = RealVector::new(p.optimal_design().to_vec());
        let f = p.evaluate(&x);
        assert!(f.abs() < 1e-9, "f(x*) = {f}");
        assert!(p.is_optimal(f));
    }

    #[test]
    fn random_designs_are_worse() {
        let p = problem();
        let mut rng = Rng64::new(5);
        for _ in 0..50 {
            let x = p.random_genome(&mut rng);
            assert!(p.evaluate(&x) > -1e-9);
        }
    }

    #[test]
    fn lift_penalty_activates_below_threshold() {
        let p = Arc::new(WingDesign::new(4, 1));
        let low = RealVector::new(vec![0.05; 4]);
        let ok = RealVector::new(vec![0.5; 4]);
        // The low-mean design carries the extra linear penalty term.
        let base_low: f64 = {
            // Same design without penalty would score drag+shock only;
            // verify the penalized value exceeds the unpenalized ok design
            // by a visible margin.
            p.evaluate(&low)
        };
        assert!(base_low > p.evaluate(&ok));
    }

    #[test]
    fn arga_adapts_range_and_finds_good_designs() {
        let p = problem();
        let report = adaptive_range_search(&p, ArgaConfig::default(), 42);
        assert_eq!(report.adaptations, 6);
        assert!(report.best_fitness < 1.0, "best {}", report.best_fitness);
        // Final range should have zoomed in (narrower than [0,1]).
        let total_span: f64 = report.final_range.iter().map(|(lo, hi)| hi - lo).sum();
        assert!(
            total_span < 0.9 * report.final_range.len() as f64,
            "range never narrowed: {total_span}"
        );
        // The zoomed range should bracket the planted optimum in most dims.
        let bracketed = report
            .final_range
            .iter()
            .zip(p.optimal_design())
            .filter(|((lo, hi), o)| *lo <= **o && **o <= *hi)
            .count();
        assert!(
            bracketed >= report.final_range.len() / 2,
            "bracketed {bracketed}"
        );
    }

    #[test]
    fn arga_beats_fixed_range_on_average() {
        let p = problem();
        let config = ArgaConfig::default();
        let mut arga_wins = 0;
        let reps = 6;
        for rep in 0..reps {
            let arga = adaptive_range_search(&p, config, 100 + rep);
            let fixed = fixed_range_search(&p, config, arga.evaluations, 100 + rep);
            // Budgets agree within one generation of slack.
            assert!(fixed.evaluations <= arga.evaluations + config.pop_size as u64);
            if arga.best_fitness <= fixed.best_fitness {
                arga_wins += 1;
            }
        }
        assert!(arga_wins * 2 >= reps, "ARGA won only {arga_wins}/{reps}");
    }

    #[test]
    fn deterministic() {
        let p = problem();
        let a = adaptive_range_search(&p, ArgaConfig::default(), 9);
        let b = adaptive_range_search(&p, ArgaConfig::default(), 9);
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
