//! # pga-apps
//!
//! Application substrates for the survey's §4 case studies, built from
//! scratch so the PGA experiments run end-to-end without external data
//! (substitutions documented in DESIGN.md §1):
//!
//! * [`mlp`] + [`market`] + [`stock`] — the neuro-genetic daily stock
//!   predictor of Kwon & Moon (2003): a small MLP whose weights are evolved,
//!   fed by technical indicators over a synthetic regime-switching market,
//!   evaluated against the buy-and-hold baseline.
//! * [`image`] — the 2-phase GA image registration of Chalermwat et al.
//!   (2001): synthetic grayscale scenes, rigid transforms, normalized
//!   cross-correlation, coarse-to-fine search.
//! * [`spectral`] — the parametric Doppler spectral estimation of Solano
//!   et al. (2000): AR-process signal generation and AR-coefficient fitting
//!   by minimizing one-step prediction error.
//! * [`wing`] — the real-coded Adaptive Range GA of Oyama et al. (2000) on
//!   an analytic transonic-wing drag surrogate, vs a fixed-range control.
//! * [`reactor`] — the discrete reactor-core design of Pereira & Lapa
//!   (2003): integer design variables, criticality/flux constraints via
//!   penalties, planted optimal configuration.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod image;
pub mod market;
pub mod mlp;
pub mod reactor;
pub mod spectral;
pub mod stock;
pub mod wing;

pub use image::{Image, Registration, RigidTransform};
pub use market::{MarketSeries, TradingOutcome};
pub use mlp::Mlp;
pub use reactor::ReactorDesign;
pub use spectral::{ArSignal, SpectralFit};
pub use stock::StockPrediction;
pub use wing::{adaptive_range_search, fixed_range_search, ArgaConfig, ArgaReport, WingDesign};
