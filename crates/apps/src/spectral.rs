//! Parametric (autoregressive) spectral estimation of Doppler-like signals
//! (Solano González et al. 2000 analog).
//!
//! Real Doppler ultrasound returns are replaced by synthetic AR processes
//! with known coefficients: resonant poles placed at chosen "Doppler"
//! frequencies drive white noise, exactly the signal class a parametric
//! spectral estimator assumes. The GA fits AR coefficients by minimizing
//! one-step prediction error — the paper's objective.

use pga_core::{Bounds, Objective, Problem, RealVector, Rng64};
use std::sync::Arc;

/// A synthetic AR(p) signal with known generating coefficients.
#[derive(Clone, Debug)]
pub struct ArSignal {
    samples: Vec<f64>,
    true_coeffs: Vec<f64>,
}

impl ArSignal {
    /// Generates `n` samples of an AR process whose poles sit at the given
    /// normalized frequencies (cycles/sample, in `(0, 0.5)`) with the given
    /// pole radius (`0 < r < 1`, sharper peaks near 1).
    #[must_use]
    pub fn doppler(n: usize, freqs: &[f64], radius: f64, noise: f64, seed: u64) -> Self {
        assert!(!freqs.is_empty(), "need at least one resonance");
        assert!(radius > 0.0 && radius < 1.0, "pole radius in (0,1)");
        assert!(
            freqs.iter().all(|f| (0.0..0.5).contains(f)),
            "frequencies must be normalized to (0, 0.5)"
        );
        // Polynomial with conjugate pole pairs: ∏ (1 - 2r cos(2πf) z⁻¹ + r² z⁻²).
        let mut poly = vec![1.0f64];
        for &f in freqs {
            let c = 2.0 * radius * (2.0 * std::f64::consts::PI * f).cos();
            let pair = [1.0, -c, radius * radius];
            let mut next = vec![0.0; poly.len() + 2];
            for (i, &a) in poly.iter().enumerate() {
                for (j, &b) in pair.iter().enumerate() {
                    next[i + j] += a * b;
                }
            }
            poly = next;
        }
        // AR form: x[t] = Σ_k a_k x[t−k] + e[t] with a_k = −poly[k].
        let true_coeffs: Vec<f64> = poly[1..].iter().map(|&c| -c).collect();
        let p = true_coeffs.len();
        let mut rng = Rng64::new(seed);
        let mut samples = vec![0.0f64; n + 10 * p];
        for t in p..samples.len() {
            let mut x = noise * rng.gaussian();
            for (k, &a) in true_coeffs.iter().enumerate() {
                x += a * samples[t - 1 - k];
            }
            samples[t] = x;
        }
        samples.drain(..10 * p); // discard transient
        Self {
            samples,
            true_coeffs,
        }
    }

    /// Signal samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The generating AR coefficients (`a_1 … a_p`).
    #[must_use]
    pub fn true_coeffs(&self) -> &[f64] {
        &self.true_coeffs
    }

    /// AR model order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.true_coeffs.len()
    }

    /// Mean squared one-step prediction error of an AR coefficient vector
    /// on this signal.
    #[must_use]
    pub fn prediction_mse(&self, coeffs: &[f64]) -> f64 {
        let p = coeffs.len();
        assert!(p < self.samples.len(), "model order exceeds signal length");
        let mut err = 0.0;
        let mut count = 0usize;
        for t in p..self.samples.len() {
            let mut pred = 0.0;
            for (k, &a) in coeffs.iter().enumerate() {
                pred += a * self.samples[t - 1 - k];
            }
            let e = self.samples[t] - pred;
            err += e * e;
            count += 1;
        }
        err / count as f64
    }

    /// AR power spectral density of a coefficient vector at normalized
    /// frequency `f ∈ [0, 0.5]` (unit noise variance).
    #[must_use]
    pub fn ar_spectrum(coeffs: &[f64], f: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut re = 1.0;
        let mut im = 0.0;
        for (k, &a) in coeffs.iter().enumerate() {
            let phase = omega * (k + 1) as f64;
            re -= a * phase.cos();
            im += a * phase.sin();
        }
        1.0 / (re * re + im * im)
    }
}

/// The GA-searchable spectral-fit problem: genome = AR coefficients,
/// fitness = one-step prediction MSE (minimized).
#[derive(Clone)]
pub struct SpectralFit {
    signal: Arc<ArSignal>,
    bounds: Bounds,
}

impl SpectralFit {
    /// Fits a model of the signal's own order, coefficients in `[-2, 2]`.
    #[must_use]
    pub fn new(signal: ArSignal) -> Self {
        let dim = signal.order();
        Self {
            signal: Arc::new(signal),
            bounds: Bounds::uniform(-2.0, 2.0, dim),
        }
    }

    /// Coefficient bounds for the real-coded operators.
    #[must_use]
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The fitted signal.
    #[must_use]
    pub fn signal(&self) -> &ArSignal {
        &self.signal
    }

    /// Coefficient-space distance of a genome from the generating truth.
    #[must_use]
    pub fn coeff_error(&self, genome: &RealVector) -> f64 {
        genome
            .values()
            .iter()
            .zip(self.signal.true_coeffs())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl Problem for SpectralFit {
    type Genome = RealVector;

    fn name(&self) -> String {
        format!("spectral-ar{}", self.signal.order())
    }

    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn evaluate(&self, genome: &RealVector) -> f64 {
        self.signal.prediction_mse(genome.values())
    }

    fn random_genome(&self, rng: &mut Rng64) -> RealVector {
        self.bounds.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal() -> ArSignal {
        ArSignal::doppler(2000, &[0.1, 0.25], 0.9, 0.5, 42)
    }

    #[test]
    fn two_resonances_give_order_four() {
        let s = signal();
        assert_eq!(s.order(), 4);
        assert_eq!(s.samples().len(), 2000);
    }

    #[test]
    fn signal_is_stationary_not_exploding() {
        let s = signal();
        let max = s.samples().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max < 100.0, "max sample {max}");
        assert!(max > 0.1, "signal died");
    }

    #[test]
    fn true_coeffs_minimize_prediction_error() {
        let s = signal();
        let mse_true = s.prediction_mse(s.true_coeffs());
        // The generating model's residual is the injected noise (σ = 0.5).
        assert!((mse_true - 0.25).abs() < 0.05, "mse {mse_true}");
        // Any perturbed model does worse.
        let mut worse = s.true_coeffs().to_vec();
        worse[0] += 0.3;
        assert!(s.prediction_mse(&worse) > mse_true);
        let zeros = vec![0.0; 4];
        assert!(s.prediction_mse(&zeros) > 4.0 * mse_true);
    }

    #[test]
    fn spectrum_peaks_at_resonances() {
        let s = signal();
        let at = |f: f64| ArSignal::ar_spectrum(s.true_coeffs(), f);
        assert!(at(0.1) > 5.0 * at(0.18), "no peak at 0.1");
        assert!(at(0.25) > 5.0 * at(0.4), "no peak at 0.25");
    }

    #[test]
    fn coeff_error_zero_at_truth() {
        let s = signal();
        let fit = SpectralFit::new(s);
        let truth = RealVector::new(fit.signal().true_coeffs().to_vec());
        assert_eq!(fit.coeff_error(&truth), 0.0);
        assert!((fit.evaluate(&truth) - 0.25).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ArSignal::doppler(500, &[0.2], 0.8, 1.0, 7);
        let b = ArSignal::doppler(500, &[0.2], 0.8, 1.0, 7);
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.true_coeffs(), b.true_coeffs());
    }
}
