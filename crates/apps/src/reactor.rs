//! Nuclear reactor core design optimization (Pereira & Lapa 2003 analog).
//!
//! The paper tunes reactor-cell parameters (dimensions, enrichment,
//! materials) to minimize the average power peak factor subject to
//! criticality, thermal-flux and sub-moderation constraints, and reports
//! that a coarse-grained island GA on a plain LAN beats the sequential GA
//! both in time and in final design quality. The neutronics code is
//! replaced by an analytic core model (DESIGN.md §1) with a planted optimal
//! configuration, discrete design variables ([`pga_core::IntVector`]), and
//! penalty-handled constraints — the same optimizer-facing structure.

use pga_core::{IntVector, Objective, Problem, Rng64};

/// Discrete reactor-core design problem.
///
/// The genome holds `3 × zones` integer variables in `[0, 9]`: for each
/// radial zone, an *enrichment* level, a *moderator ratio* index and a
/// *cell dimension* index. Fitness is the modeled peak factor (≥ 1.0,
/// minimized) plus penalties for violating the criticality band and the
/// minimum thermal flux.
#[derive(Clone, Debug)]
pub struct ReactorDesign {
    zones: usize,
    /// Planted optimal configuration.
    target: Vec<i64>,
    /// Per-variable sensitivity weights.
    weights: Vec<f64>,
}

impl ReactorDesign {
    /// Levels per design variable (values `0..=9`).
    pub const LEVELS: i64 = 10;

    /// A `zones`-zone core generated from `seed`.
    #[must_use]
    pub fn new(zones: usize, seed: u64) -> Self {
        assert!(zones >= 1, "need at least one zone");
        let mut rng = Rng64::new(seed);
        let n = 3 * zones;
        let target: Vec<i64> = (0..n).map(|_| rng.below(10) as i64).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.range_f64(0.05, 0.15)).collect();
        Self {
            zones,
            target,
            weights,
        }
    }

    /// Zone count.
    #[must_use]
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Genome length (`3 × zones`).
    #[must_use]
    pub fn dim(&self) -> usize {
        3 * self.zones
    }

    /// The planted optimal configuration.
    #[must_use]
    pub fn optimal_config(&self) -> &[i64] {
        &self.target
    }

    /// Modeled effective multiplication factor: 1.0 at the planted design,
    /// drifting with enrichment/moderation deviations.
    #[must_use]
    pub fn k_eff(&self, design: &IntVector) -> f64 {
        let mut drift = 0.0;
        for z in 0..self.zones {
            let e = design.values()[3 * z] - self.target[3 * z];
            let m = design.values()[3 * z + 1] - self.target[3 * z + 1];
            drift += 0.004 * e as f64 - 0.003 * m as f64;
        }
        1.0 + drift
    }

    /// Modeled relative thermal flux: 1.0 at the planted design, reduced by
    /// dimension mismatches.
    #[must_use]
    pub fn thermal_flux(&self, design: &IntVector) -> f64 {
        let mismatch: f64 = (0..self.zones)
            .map(|z| (design.values()[3 * z + 2] - self.target[3 * z + 2]).unsigned_abs() as f64)
            .sum();
        1.0 - 0.02 * mismatch / self.zones as f64
    }

    /// Peak factor without penalties (≥ 1.0; 1.0 at the planted design).
    #[must_use]
    pub fn peak_factor(&self, design: &IntVector) -> f64 {
        let mut pf = 1.0;
        for (i, (&v, &t)) in design.values().iter().zip(&self.target).enumerate() {
            let d = (v - t) as f64 / (Self::LEVELS - 1) as f64;
            pf += self.weights[i] * d * d;
        }
        // Neighbor-zone coupling: steep flux gradients between adjacent
        // zones raise the peak factor (the physics the paper's GA fights).
        for z in 1..self.zones {
            let e0 = design.values()[3 * (z - 1)] - self.target[3 * (z - 1)];
            let e1 = design.values()[3 * z] - self.target[3 * z];
            pf += 0.01 * ((e1 - e0) as f64 / 9.0).powi(2);
        }
        pf
    }
}

impl Problem for ReactorDesign {
    type Genome = IntVector;

    fn name(&self) -> String {
        format!("reactor-{}zones", self.zones)
    }

    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    fn evaluate(&self, design: &IntVector) -> f64 {
        debug_assert_eq!(design.len(), self.dim());
        let mut fitness = self.peak_factor(design);
        // Criticality band [0.99, 1.01].
        let k = self.k_eff(design);
        if k < 0.99 {
            fitness += 50.0 * (0.99 - k);
        } else if k > 1.01 {
            fitness += 50.0 * (k - 1.01);
        }
        // Minimum thermal flux 0.9.
        let flux = self.thermal_flux(design);
        if flux < 0.9 {
            fitness += 20.0 * (0.9 - flux);
        }
        fitness
    }

    fn random_genome(&self, rng: &mut Rng64) -> IntVector {
        IntVector::random(self.dim(), 0, Self::LEVELS - 1, rng)
    }

    fn optimum(&self) -> Option<f64> {
        Some(1.0)
    }

    fn optimum_epsilon(&self) -> f64 {
        // The cheapest single-level deviation adds at least
        // 0.05 / 81 ≈ 6.2e-4 to the peak factor, so this tolerance admits
        // only the planted configuration.
        2e-4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::ops::{IntCreep, Tournament, Uniform};
    use pga_core::{GaBuilder, Scheme, Termination};
    use pga_island::{Archipelago, MigrationPolicy};
    use pga_topology::Topology;
    use std::sync::Arc;

    fn problem() -> ReactorDesign {
        ReactorDesign::new(5, 7)
    }

    #[test]
    fn planted_design_is_optimal_and_feasible() {
        let p = problem();
        let design = IntVector::new(p.optimal_config().to_vec(), 0, 9);
        assert!((p.evaluate(&design) - 1.0).abs() < 1e-12);
        assert!(p.is_optimal(p.evaluate(&design)));
        assert!((p.k_eff(&design) - 1.0).abs() < 1e-12);
        assert!((p.thermal_flux(&design) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constraint_violations_are_penalized() {
        let p = problem();
        // Push all enrichments up: k_eff rises beyond the band.
        let mut values = p.optimal_config().to_vec();
        for z in 0..p.zones() {
            values[3 * z] = 9;
        }
        let hot = IntVector::new(values, 0, 9);
        if p.k_eff(&hot) > 1.01 {
            assert!(p.evaluate(&hot) > p.peak_factor(&hot));
        }
        // Push all dimensions away: flux drops, penalty kicks in.
        let mut values = p.optimal_config().to_vec();
        for z in 0..p.zones() {
            values[3 * z + 2] = if p.optimal_config()[3 * z + 2] < 5 {
                9
            } else {
                0
            };
        }
        let starved = IntVector::new(values, 0, 9);
        assert!(p.thermal_flux(&starved) < 0.9);
        assert!(p.evaluate(&starved) > p.peak_factor(&starved));
    }

    #[test]
    fn random_designs_never_beat_the_optimum() {
        let p = problem();
        let mut rng = Rng64::new(3);
        for _ in 0..200 {
            let g = p.random_genome(&mut rng);
            assert!(p.evaluate(&g) >= 1.0 - 1e-12);
        }
    }

    fn island(
        problem: &Arc<ReactorDesign>,
        pop: usize,
        seed: u64,
    ) -> pga_core::Ga<Arc<ReactorDesign>> {
        GaBuilder::new(Arc::clone(problem))
            .seed(seed)
            .pop_size(pop)
            .selection(Tournament::binary())
            .crossover(Uniform::half())
            .mutation(IntCreep {
                p: 0.1,
                max_step: 2,
            })
            .scheme(Scheme::Generational { elitism: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn island_ga_solves_the_core_design() {
        let p = Arc::new(problem());
        let islands = (0..4).map(|i| island(&p, 40, 10 + i)).collect();
        let mut arch = Archipelago::new(islands, Topology::RingUni, MigrationPolicy::default())
            .expect("valid island configuration");
        let r = arch
            .run(&Termination::new().until_optimum().max_generations(800))
            .expect("bounded");
        assert!(r.hit_optimum, "best = {}", r.best.fitness());
        // The winning genome is the planted configuration.
        assert_eq!(r.best.genome.values(), p.optimal_config());
    }

    #[test]
    fn sequential_ga_also_solves_with_more_effort() {
        let p = Arc::new(problem());
        let mut ga = island(&p, 160, 5);
        let r = ga
            .run(&Termination::new().until_optimum().max_generations(2000))
            .unwrap();
        assert!(r.hit_optimum, "best = {}", r.best_fitness);
    }
}
