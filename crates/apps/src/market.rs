//! Synthetic daily-price market generator and trading evaluation.
//!
//! Replaces the KOSPI data of Kwon & Moon (2003) with a regime-switching
//! geometric random walk: bull and bear regimes with different drifts plus
//! mild momentum, so there *is* learnable structure — a predictor can beat
//! buy-and-hold — while staying fully reproducible from a seed.

use pga_core::Rng64;

/// A generated daily price series plus derived technical indicators.
#[derive(Clone, Debug)]
pub struct MarketSeries {
    prices: Vec<f64>,
}

/// Result of simulating a trading strategy over a window.
#[derive(Clone, Copy, Debug)]
pub struct TradingOutcome {
    /// Final wealth relative to 1.0 starting wealth.
    pub wealth: f64,
    /// Number of days a long position was held.
    pub days_long: usize,
    /// Number of trading days in the window.
    pub days_total: usize,
}

impl MarketSeries {
    /// Generates `days` of prices from `seed`.
    ///
    /// Regimes switch with probability 2%/day between bull (+0.15%/day
    /// drift) and bear (−0.1%/day); daily noise is 1%; a small momentum term
    /// makes recent returns mildly predictive.
    #[must_use]
    pub fn generate(days: usize, seed: u64) -> Self {
        assert!(days >= 2, "need at least two days");
        let mut rng = Rng64::new(seed);
        let mut prices = Vec::with_capacity(days);
        let mut price = 100.0f64;
        let mut bull = true;
        let mut last_ret = 0.0f64;
        for _ in 0..days {
            if rng.chance(0.02) {
                bull = !bull;
            }
            let drift = if bull { 0.0015 } else { -0.0010 };
            let momentum = 0.15 * last_ret;
            let ret = drift + momentum + 0.01 * rng.gaussian();
            price *= (1.0 + ret).max(0.01);
            prices.push(price);
            last_ret = ret;
        }
        Self { prices }
    }

    /// Daily closing prices.
    #[must_use]
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Trading-day count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// `true` when the series is empty (generator prevents this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Daily return `p[t]/p[t-1] − 1` for `t ≥ 1`.
    #[must_use]
    pub fn daily_return(&self, t: usize) -> f64 {
        assert!(t >= 1 && t < self.prices.len());
        self.prices[t] / self.prices[t - 1] - 1.0
    }

    /// Technical-indicator feature vector for day `t` (predicting day
    /// `t+1`): five lagged returns (scaled), price/MA5 − 1, price/MA20 − 1,
    /// and a 10-day momentum — 8 features, all roughly unit scale.
    ///
    /// Needs `t >= 20`.
    #[must_use]
    pub fn features(&self, t: usize) -> Vec<f64> {
        assert!(t >= 20 && t < self.prices.len(), "need t in [20, len)");
        let mut f = Vec::with_capacity(8);
        for lag in 0..5 {
            f.push(self.daily_return(t - lag) * 100.0);
        }
        let ma = |w: usize| -> f64 { self.prices[t + 1 - w..=t].iter().sum::<f64>() / w as f64 };
        f.push((self.prices[t] / ma(5) - 1.0) * 100.0);
        f.push((self.prices[t] / ma(20) - 1.0) * 100.0);
        f.push((self.prices[t] / self.prices[t - 10] - 1.0) * 100.0);
        f
    }

    /// Number of features produced by [`MarketSeries::features`].
    #[must_use]
    pub const fn feature_count() -> usize {
        8
    }

    /// Simulates a daily long/flat strategy over `[from, to)`: on day `t`
    /// the signal decides whether to hold the asset for day `t+1`.
    /// A 0.1% fee is charged on every position change.
    #[must_use]
    pub fn trade<S: FnMut(usize) -> bool>(
        &self,
        from: usize,
        to: usize,
        mut go_long: S,
    ) -> TradingOutcome {
        assert!(from >= 20 && from < to && to < self.prices.len());
        let mut wealth = 1.0f64;
        let mut long = false;
        let mut days_long = 0usize;
        for t in from..to {
            let want_long = go_long(t);
            if want_long != long {
                wealth *= 0.999; // transaction fee
                long = want_long;
            }
            if long {
                wealth *= 1.0 + self.daily_return(t + 1);
                days_long += 1;
            }
        }
        TradingOutcome {
            wealth,
            days_long,
            days_total: to - from,
        }
    }

    /// Buy-and-hold outcome over the same window.
    #[must_use]
    pub fn buy_and_hold(&self, from: usize, to: usize) -> TradingOutcome {
        self.trade(from, to, |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = MarketSeries::generate(300, 5);
        let b = MarketSeries::generate(300, 5);
        assert_eq!(a.prices(), b.prices());
        assert_ne!(a.prices(), MarketSeries::generate(300, 6).prices());
    }

    #[test]
    fn prices_stay_positive() {
        let m = MarketSeries::generate(2000, 9);
        assert!(m.prices().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn features_have_expected_shape_and_scale() {
        let m = MarketSeries::generate(400, 3);
        for t in [20, 100, 398] {
            let f = m.features(t);
            assert_eq!(f.len(), MarketSeries::feature_count());
            assert!(f.iter().all(|x| x.abs() < 100.0), "unscaled feature: {f:?}");
        }
    }

    #[test]
    fn buy_and_hold_matches_price_ratio_minus_fee() {
        let m = MarketSeries::generate(300, 7);
        let out = m.buy_and_hold(20, 299);
        let ratio = m.prices()[299] / m.prices()[20];
        assert!(
            (out.wealth - 0.999 * ratio).abs() < 1e-9,
            "{} vs {}",
            out.wealth,
            ratio
        );
        assert_eq!(out.days_long, out.days_total);
    }

    #[test]
    fn always_flat_keeps_wealth() {
        let m = MarketSeries::generate(100, 1);
        let out = m.trade(20, 90, |_| false);
        assert_eq!(out.wealth, 1.0);
        assert_eq!(out.days_long, 0);
    }

    #[test]
    fn perfect_foresight_beats_buy_and_hold() {
        let m = MarketSeries::generate(500, 11);
        let oracle = m.trade(20, 499, |t| m.daily_return(t + 1) > 0.0);
        let bah = m.buy_and_hold(20, 499);
        assert!(
            oracle.wealth > bah.wealth,
            "oracle {} <= bah {}",
            oracle.wealth,
            bah.wealth
        );
    }

    #[test]
    fn momentum_makes_returns_autocorrelated() {
        // Sanity check that the learnable structure exists: sign agreement
        // between consecutive returns should exceed 50%.
        let m = MarketSeries::generate(5000, 13);
        let mut agree = 0usize;
        let mut total = 0usize;
        for t in 2..5000 {
            let a = m.daily_return(t - 1);
            let b = m.daily_return(t);
            if a != 0.0 && b != 0.0 {
                total += 1;
                if (a > 0.0) == (b > 0.0) {
                    agree += 1;
                }
            }
        }
        let frac = agree as f64 / total as f64;
        assert!(frac > 0.51, "autocorrelation too weak: {frac}");
    }
}
