//! Neuro-genetic daily stock prediction (Kwon & Moon 2003 analog).
//!
//! The genome is the weight vector of a small MLP; the fitness is the
//! wealth achieved by trading the *training* window with the network's
//! long/flat signal. Generalization is measured afterwards on a held-out
//! window against buy-and-hold.

use crate::market::{MarketSeries, TradingOutcome};
use crate::mlp::Mlp;
use pga_core::{Bounds, Objective, Problem, RealVector, Rng64};
use std::sync::Arc;

/// The evolvable stock-prediction problem.
#[derive(Clone)]
pub struct StockPrediction {
    market: Arc<MarketSeries>,
    sizes: Vec<usize>,
    bounds: Bounds,
    train: (usize, usize),
    test: (usize, usize),
}

impl StockPrediction {
    /// Standard setup: an `[8, h, 1]` network over `market`, trained on
    /// `[20, split)` and tested on `[split, len-1)`.
    #[must_use]
    pub fn new(market: MarketSeries, hidden: usize, split: usize) -> Self {
        assert!(hidden >= 1);
        assert!(split > 40 && split < market.len() - 20, "bad split");
        let sizes = vec![MarketSeries::feature_count(), hidden, 1];
        let dim = Mlp::parameter_count(&sizes);
        let len = market.len();
        Self {
            market: Arc::new(market),
            sizes,
            bounds: Bounds::uniform(-3.0, 3.0, dim),
            train: (20, split),
            test: (split, len - 1),
        }
    }

    /// Weight-space bounds (for the real-coded operators).
    #[must_use]
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Genome dimension (MLP parameter count).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// The underlying market series.
    #[must_use]
    pub fn market(&self) -> &MarketSeries {
        &self.market
    }

    fn network(&self, genome: &RealVector) -> Mlp {
        Mlp::from_weights(&self.sizes, genome.values())
    }

    /// Trades a window with the network's signal.
    fn trade_window(&self, genome: &RealVector, window: (usize, usize)) -> TradingOutcome {
        let net = self.network(genome);
        self.market.trade(window.0, window.1, |t| {
            net.forward(&self.market.features(t))[0] > 0.0
        })
    }

    /// Held-out evaluation of a genome: `(strategy, buy_and_hold)`.
    #[must_use]
    pub fn test_outcome(&self, genome: &RealVector) -> (TradingOutcome, TradingOutcome) {
        (
            self.trade_window(genome, self.test),
            self.market.buy_and_hold(self.test.0, self.test.1),
        )
    }

    /// Buy-and-hold wealth over the training window (fitness baseline).
    #[must_use]
    pub fn train_buy_and_hold(&self) -> f64 {
        self.market.buy_and_hold(self.train.0, self.train.1).wealth
    }
}

impl Problem for StockPrediction {
    type Genome = RealVector;

    fn name(&self) -> String {
        format!("stock-mlp-{}", self.dim())
    }

    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    fn evaluate(&self, genome: &RealVector) -> f64 {
        self.trade_window(genome, self.train).wealth
    }

    fn random_genome(&self, rng: &mut Rng64) -> RealVector {
        self.bounds.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::ops::{BlxAlpha, GaussianMutation, Tournament};
    use pga_core::{Ga, Scheme, Termination};

    fn problem(seed: u64) -> StockPrediction {
        StockPrediction::new(MarketSeries::generate(400, seed), 5, 280)
    }

    #[test]
    fn dimensions_follow_topology() {
        let p = problem(1);
        // 8*5 + 5 + 5*1 + 1 = 51.
        assert_eq!(p.dim(), 51);
    }

    #[test]
    fn fitness_is_training_wealth() {
        let p = problem(2);
        let mut rng = Rng64::new(0);
        let g = p.random_genome(&mut rng);
        let f = p.evaluate(&g);
        assert!(f > 0.0);
        // All-flat network (zero weights) keeps wealth at exactly 1.
        let flat = RealVector::new(vec![0.0; p.dim()]);
        assert_eq!(p.evaluate(&flat), 1.0);
    }

    #[test]
    fn evolution_beats_training_buy_and_hold() {
        let p = problem(3);
        let train_bah = p.train_buy_and_hold();
        let bounds = p.bounds().clone();
        let mut ga = Ga::builder(p)
            .seed(7)
            .pop_size(40)
            .selection(Tournament::binary())
            .crossover(BlxAlpha::new(bounds.clone()))
            .mutation(GaussianMutation {
                p: 0.15,
                sigma: 0.4,
                bounds,
            })
            .scheme(Scheme::Generational { elitism: 2 })
            .build()
            .unwrap();
        let r = ga.run(&Termination::new().max_generations(40)).unwrap();
        assert!(
            r.best_fitness > train_bah,
            "evolved {} <= buy-and-hold {}",
            r.best_fitness,
            train_bah
        );
    }

    #[test]
    fn test_outcome_reports_both_strategies() {
        let p = problem(4);
        let mut rng = Rng64::new(1);
        let g = p.random_genome(&mut rng);
        let (strat, bah) = p.test_outcome(&g);
        assert_eq!(strat.days_total, bah.days_total);
        assert!(bah.days_long == bah.days_total);
        assert!(strat.wealth > 0.0);
    }
}
