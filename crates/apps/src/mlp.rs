//! A minimal fixed-topology multilayer perceptron.
//!
//! Just enough neural network for the neuro-genetic hybrid: dense layers,
//! tanh hidden activations, linear output, and a flat weight codec so the
//! whole network is one [`RealVector`](pga_core::RealVector) genome.

/// A feedforward network with tanh hidden layers and a linear output layer.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Layer sizes, input first (e.g. `[8, 6, 1]`).
    sizes: Vec<usize>,
    /// Flat weights: for each layer transition, `out × in` weights then
    /// `out` biases.
    weights: Vec<f64>,
}

impl Mlp {
    /// Number of parameters a topology needs.
    #[must_use]
    pub fn parameter_count(sizes: &[usize]) -> usize {
        sizes.windows(2).map(|w| w[1] * w[0] + w[1]).sum()
    }

    /// Builds a network from a flat parameter vector.
    ///
    /// # Panics
    /// Panics when the vector length does not match the topology or the
    /// topology has fewer than two layers.
    #[must_use]
    pub fn from_weights(sizes: &[usize], weights: &[f64]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0), "zero-width layer");
        assert_eq!(
            weights.len(),
            Self::parameter_count(sizes),
            "weight vector length mismatch"
        );
        Self {
            sizes: sizes.to_vec(),
            weights: weights.to_vec(),
        }
    }

    /// Layer sizes.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Forward pass. Input length must match the first layer.
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.sizes[0], "input width mismatch");
        let mut activations = input.to_vec();
        let mut offset = 0usize;
        let last_transition = self.sizes.len() - 2;
        for (t, w) in self.sizes.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let mut next = Vec::with_capacity(n_out);
            for o in 0..n_out {
                let row = &self.weights[offset + o * n_in..offset + (o + 1) * n_in];
                let mut sum = self.weights[offset + n_out * n_in + o]; // bias
                for (x, wgt) in activations.iter().zip(row) {
                    sum += x * wgt;
                }
                next.push(if t == last_transition {
                    sum
                } else {
                    sum.tanh()
                });
            }
            offset += n_out * n_in + n_out;
            activations = next;
        }
        activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_formula() {
        // 3->2: 6 w + 2 b; 2->1: 2 w + 1 b = 11.
        assert_eq!(Mlp::parameter_count(&[3, 2, 1]), 11);
        assert_eq!(Mlp::parameter_count(&[5, 1]), 6);
    }

    #[test]
    fn identityish_network() {
        // 1->1 linear: y = 2x + 1.
        let net = Mlp::from_weights(&[1, 1], &[2.0, 1.0]);
        assert_eq!(net.forward(&[3.0]), vec![7.0]);
    }

    #[test]
    fn hidden_layer_uses_tanh() {
        // 1->1->1: hidden = tanh(x), output = hidden (w=1, b=0).
        let net = Mlp::from_weights(&[1, 1, 1], &[1.0, 0.0, 1.0, 0.0]);
        let y = net.forward(&[0.5])[0];
        assert!((y - 0.5f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn output_layer_is_linear() {
        // Large inputs should not saturate the output layer.
        let net = Mlp::from_weights(&[1, 1], &[100.0, 0.0]);
        assert_eq!(net.forward(&[10.0]), vec![1000.0]);
    }

    #[test]
    fn zero_weights_zero_output() {
        let n = Mlp::parameter_count(&[4, 3, 2]);
        let net = Mlp::from_weights(&[4, 3, 2], &vec![0.0; n]);
        assert_eq!(net.forward(&[1.0, 2.0, 3.0, 4.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_weight_count_panics() {
        let _ = Mlp::from_weights(&[2, 2], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_panics() {
        let net = Mlp::from_weights(&[2, 1], &[0.0, 0.0, 0.0]);
        let _ = net.forward(&[1.0]);
    }
}
