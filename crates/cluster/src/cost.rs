//! Seeded evaluation-cost distributions.
//!
//! Harada–Alba–Luque's time-fair methodology only separates sync from
//! async execution when evaluation costs are *heterogeneous*: a barrier
//! waits for the slowest task of every batch, while an async master folds
//! cheap results immediately. These distributions give experiments and
//! the async engines one shared, seeded source of per-task cost — the
//! same `(model, seed)` pair always yields the same cost stream, so a
//! sync and an async run can be charged identical work.

use pga_core::{ConfigError, Rng64};

/// A per-evaluation cost distribution (seconds of reference-node compute).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EvalCostModel {
    /// Every evaluation costs the same.
    Fixed(f64),
    /// Costs drawn uniformly from `[lo, hi]`.
    Uniform {
        /// Cheapest evaluation, in seconds.
        lo: f64,
        /// Most expensive evaluation, in seconds.
        hi: f64,
    },
    /// A cheap common case with rare expensive stragglers — the regime
    /// where batch barriers hurt most.
    Bimodal {
        /// Cost of the common case, in seconds.
        cheap: f64,
        /// Cost of a straggler, in seconds.
        expensive: f64,
        /// Probability an evaluation is a straggler.
        p_expensive: f64,
    },
}

/// Finite and strictly positive — the validity test for every cost knob
/// (rejects NaN and infinities along with non-positive values).
fn positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

impl EvalCostModel {
    /// Validated fixed-cost model.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when `cost_s` is not finite and
    /// positive.
    pub fn fixed(cost_s: f64) -> Result<Self, ConfigError> {
        if !positive(cost_s) {
            return Err(ConfigError::InvalidParameter {
                name: "cost_s",
                message: format!("must be positive, got {cost_s}"),
            });
        }
        Ok(Self::Fixed(cost_s))
    }

    /// Validated uniform model over `[lo, hi]`.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when `lo` is not finite and
    /// positive, or `hi` is not finite or `< lo`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, ConfigError> {
        if !positive(lo) {
            return Err(ConfigError::InvalidParameter {
                name: "lo",
                message: format!("must be positive, got {lo}"),
            });
        }
        if !hi.is_finite() || hi < lo {
            return Err(ConfigError::InvalidParameter {
                name: "hi",
                message: format!("must be >= lo ({lo}), got {hi}"),
            });
        }
        Ok(Self::Uniform { lo, hi })
    }

    /// Validated bimodal (cheap/straggler) model.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when either cost is not finite
    /// and positive, or `p_expensive` is outside `[0, 1]` (or NaN).
    pub fn bimodal(cheap: f64, expensive: f64, p_expensive: f64) -> Result<Self, ConfigError> {
        if !positive(cheap) {
            return Err(ConfigError::InvalidParameter {
                name: "cheap",
                message: format!("must be positive, got {cheap}"),
            });
        }
        if !positive(expensive) {
            return Err(ConfigError::InvalidParameter {
                name: "expensive",
                message: format!("must be positive, got {expensive}"),
            });
        }
        if !(0.0..=1.0).contains(&p_expensive) {
            return Err(ConfigError::InvalidParameter {
                name: "p_expensive",
                message: format!("must be in [0,1], got {p_expensive}"),
            });
        }
        Ok(Self::Bimodal {
            cheap,
            expensive,
            p_expensive,
        })
    }

    /// Draws one evaluation cost from `rng`.
    ///
    /// Exactly one RNG draw per call for the non-fixed models, so cost
    /// streams are replayable independently of how results interleave.
    #[must_use]
    pub fn sample(&self, rng: &mut Rng64) -> f64 {
        match *self {
            Self::Fixed(c) => c,
            Self::Uniform { lo, hi } => rng.range_f64(lo, hi),
            Self::Bimodal {
                cheap,
                expensive,
                p_expensive,
            } => {
                if rng.next_f64() < p_expensive {
                    expensive
                } else {
                    cheap
                }
            }
        }
    }

    /// Expected cost of one evaluation.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Fixed(c) => c,
            Self::Uniform { lo, hi } => (lo + hi) / 2.0,
            Self::Bimodal {
                cheap,
                expensive,
                p_expensive,
            } => cheap * (1.0 - p_expensive) + expensive * p_expensive,
        }
    }

    /// Short name for harness tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Fixed(_) => "fixed",
            Self::Uniform { .. } => "uniform",
            Self::Bimodal { .. } => "bimodal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert!(EvalCostModel::fixed(0.0).is_err());
        assert!(EvalCostModel::uniform(0.5, 0.1).is_err());
        assert!(EvalCostModel::uniform(f64::NAN, 1.0).is_err());
        assert!(EvalCostModel::bimodal(0.1, 1.0, 1.5).is_err());
        assert!(EvalCostModel::bimodal(0.1, 1.0, 0.1).is_ok());
    }

    #[test]
    fn sampling_is_seeded_and_in_range() {
        let m = EvalCostModel::uniform(0.1, 0.9).unwrap();
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..200 {
            let x = m.sample(&mut a);
            assert_eq!(x, m.sample(&mut b));
            assert!((0.1..=0.9).contains(&x));
        }
    }

    #[test]
    fn bimodal_mean_matches_empirical_rate() {
        let m = EvalCostModel::bimodal(0.01, 1.0, 0.25).unwrap();
        let mut rng = Rng64::new(3);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let err = (total / n as f64 - m.mean()).abs();
        assert!(err < 0.02, "empirical mean off by {err}");
    }

    #[test]
    fn fixed_never_draws() {
        let m = EvalCostModel::fixed(0.5).unwrap();
        let mut rng = Rng64::new(1);
        let before = rng.next_u64();
        let mut rng = Rng64::new(1);
        assert_eq!(m.sample(&mut rng), 0.5);
        assert_eq!(rng.next_u64(), before, "Fixed must not consume the RNG");
    }
}
