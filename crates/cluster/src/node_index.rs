//! Indexed node-lookup structures for O(log n)-ish event dispatch.
//!
//! Both simulators originally found their next dispatch target with a
//! linear scan over all nodes (`(0..n).find(|i| alive && free)` in the
//! batch simulator, a full `free_at` min-scan in the streaming one).
//! Each scan is O(n), and one scan runs per *task*, so a batch of `k·n`
//! tasks costs O(k·n²) — invisible at the 8–64 nodes the simulators were
//! born at, and the whole wall clock at 4 096–10 000 nodes. These two
//! structures replace the scans:
//!
//! * [`NodeIndex`] — a hierarchical 64-ary bitset answering "lowest
//!   ready node id" in O(levels) (2 levels up to 4 096 nodes, 3 up to
//!   262 144), with O(levels) insert/remove.
//! * [`MinTimeIndex`] — an ordered `(time, node)` set answering "node
//!   that frees up earliest, lowest id on ties" in O(log n).
//!
//! Both preserve the scans' tie-breaking exactly, so simulator traces
//! are bit-identical to the pre-index implementation.

use std::collections::BTreeSet;

/// Hierarchical bitset over node ids `0..capacity`.
///
/// Level 0 stores one bit per node; every higher level stores one summary
/// bit per 64-bit word below it, up to a single root word. `first` walks
/// down from the root with `trailing_zeros`, so "lowest set id" costs one
/// word inspection per level instead of a scan.
#[derive(Clone, Debug)]
pub struct NodeIndex {
    /// `levels[0]` is the leaf bitmap; `levels[k][w]` has bit `b` set iff
    /// word `levels[k-1][64·w + b]` is non-zero. The top level is always
    /// a single word.
    levels: Vec<Vec<u64>>,
    capacity: usize,
}

impl NodeIndex {
    /// An index over ids `0..n` with no members.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        let mut levels = Vec::new();
        let mut words = n.div_ceil(64).max(1);
        levels.push(vec![0u64; words]);
        while words > 1 {
            words = words.div_ceil(64);
            levels.push(vec![0u64; words]);
        }
        Self {
            levels,
            capacity: n,
        }
    }

    /// An index over ids `0..n` with every id present.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut idx = Self::empty(n);
        for i in 0..n {
            idx.insert(i);
        }
        idx
    }

    /// Highest id this index can hold plus one.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when no id is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // The top level is a single word by construction.
        self.levels[self.levels.len() - 1][0] == 0
    }

    /// `true` when `i` is present.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity, "id {i} out of range {}", self.capacity);
        self.levels[0][i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Adds `i` (no-op when already present).
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.capacity, "id {i} out of range {}", self.capacity);
        let mut idx = i;
        for level in &mut self.levels {
            let word = idx / 64;
            let had = level[word];
            level[word] = had | (1u64 << (idx % 64));
            if had != 0 {
                // The word was already non-empty, so every summary bit
                // above it is already set.
                break;
            }
            idx = word;
        }
    }

    /// Removes `i` (no-op when absent).
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.capacity, "id {i} out of range {}", self.capacity);
        let mut idx = i;
        for level in &mut self.levels {
            let word = idx / 64;
            level[word] &= !(1u64 << (idx % 64));
            if level[word] != 0 {
                // Siblings keep the summary bit alive.
                break;
            }
            idx = word;
        }
    }

    /// Lowest id present, if any — the indexed replacement for
    /// `(0..n).find(|i| ready[i])`.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        let mut level = self.levels.len() - 1;
        if self.levels[level][0] == 0 {
            return None;
        }
        let mut word_idx = 0usize;
        loop {
            let word = self.levels[level][word_idx];
            let child = word_idx * 64 + word.trailing_zeros() as usize;
            if level == 0 {
                return Some(child);
            }
            level -= 1;
            word_idx = child;
        }
    }
}

/// Ordered index over per-node "free at" instants.
///
/// Backed by a `BTreeSet<(total-order time bits, node)>`, so the minimum
/// — earliest time, lowest node id on ties — is an O(log n) lookup, and
/// each node's time can be rewritten in O(log n). The time mapping uses
/// the IEEE-754 total order, so any finite `f64` (negative included)
/// sorts correctly.
#[derive(Clone, Debug, Default)]
pub struct MinTimeIndex {
    set: BTreeSet<(u64, usize)>,
}

impl MinTimeIndex {
    /// Monotone map from `f64` to `u64`: `a < b` ⇔ `key(a) < key(b)`
    /// (IEEE-754 total order; same trick as `f64::total_cmp`).
    fn key(t: f64) -> u64 {
        let bits = t.to_bits();
        if bits >> 63 == 0 {
            bits ^ (1u64 << 63)
        } else {
            !bits
        }
    }

    /// Builds the index from one time per node.
    #[must_use]
    pub fn from_times(times: &[f64]) -> Self {
        Self {
            set: times
                .iter()
                .enumerate()
                .map(|(node, &t)| (Self::key(t), node))
                .collect(),
        }
    }

    /// Number of indexed nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when no node is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Moves `node` from time `old` to time `new`. `old` must be the
    /// exact value previously recorded for the node.
    pub fn update(&mut self, node: usize, old: f64, new: f64) {
        let removed = self.set.remove(&(Self::key(old), node));
        debug_assert!(removed, "stale old time for node {node}");
        self.set.insert((Self::key(new), node));
    }

    /// The node with the earliest time (lowest id on ties), if any.
    #[must_use]
    pub fn min_node(&self) -> Option<usize> {
        self.set.first().map(|&(_, node)| node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index_has_no_first() {
        for n in [1, 64, 65, 4096, 10_000] {
            assert_eq!(NodeIndex::empty(n).first(), None, "n={n}");
            assert!(NodeIndex::empty(n).is_empty());
        }
    }

    #[test]
    fn first_is_always_the_lowest_id() {
        let mut idx = NodeIndex::empty(10_000);
        for i in [9_999, 4_097, 63, 64, 8_191] {
            idx.insert(i);
        }
        assert_eq!(idx.first(), Some(63));
        idx.remove(63);
        assert_eq!(idx.first(), Some(64));
        idx.remove(64);
        assert_eq!(idx.first(), Some(4_097));
    }

    #[test]
    fn matches_a_reference_scan_under_random_churn() {
        // xorshift-ish deterministic churn; compare against a Vec<bool>.
        let n = 300;
        let mut idx = NodeIndex::empty(n);
        let mut flags = vec![false; n];
        let mut state = 0x9e37_79b9_u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % n as u64) as usize;
            if flags[i] {
                flags[i] = false;
                idx.remove(i);
            } else {
                flags[i] = true;
                idx.insert(i);
            }
            assert_eq!(idx.first(), flags.iter().position(|&f| f));
            assert_eq!(idx.contains(i), flags[i]);
        }
    }

    #[test]
    fn full_contains_everything() {
        let idx = NodeIndex::full(4_096);
        assert_eq!(idx.first(), Some(0));
        assert!(idx.contains(4_095));
        assert_eq!(idx.capacity(), 4_096);
    }

    #[test]
    fn insert_and_remove_are_idempotent() {
        let mut idx = NodeIndex::empty(128);
        idx.insert(100);
        idx.insert(100);
        assert_eq!(idx.first(), Some(100));
        idx.remove(100);
        idx.remove(100);
        assert_eq!(idx.first(), None);
    }

    #[test]
    fn min_time_index_breaks_ties_low() {
        let idx = MinTimeIndex::from_times(&[5.0, 0.0, 0.0, 3.0]);
        assert_eq!(idx.min_node(), Some(1));
    }

    #[test]
    fn min_time_index_tracks_updates() {
        let mut idx = MinTimeIndex::from_times(&[1.0, 2.0, 3.0]);
        assert_eq!(idx.min_node(), Some(0));
        idx.update(0, 1.0, 10.0);
        assert_eq!(idx.min_node(), Some(1));
        idx.update(2, 3.0, 0.5);
        assert_eq!(idx.min_node(), Some(2));
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn min_time_index_orders_negatives_and_zero() {
        let idx = MinTimeIndex::from_times(&[0.0, -1.5, 2.0]);
        assert_eq!(idx.min_node(), Some(1));
    }
}
