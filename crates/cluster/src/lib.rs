//! # pga-cluster
//!
//! A deterministic discrete-event simulator of the parallel machines the
//! survey's §3 catalogues — Beowulf clusters of heterogeneous workstations,
//! SMP boxes, fast LANs — so that cluster-scale experiments (64 nodes,
//! node failures, slow networks) can be reproduced exactly on one laptop.
//!
//! This is the substitution substrate documented in DESIGN.md §1: the paper's
//! testbeds (Origin2000, transputer networks, Myrinet clusters) are replaced
//! by a simulator that models the three quantities that actually shape
//! master–slave and island PGA behaviour:
//!
//! 1. **compute heterogeneity** — per-node speed factors;
//! 2. **communication cost** — latency + bandwidth network profiles;
//! 3. **hard failures** — exponential node death times (Gagné et al. 2003).
//!
//! The simulation clock is `f64` seconds. Everything is seeded and pure, so
//! a `(ClusterSpec, FailurePlan, workload)` triple always yields the same
//! trace.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod async_sim;
pub mod chaos;
pub mod cost;
pub mod event;
pub mod fault;
pub mod island_sim;
pub mod master_slave_sim;
pub mod migration_fault;
pub mod network;
pub mod node_index;
pub mod observe_bridge;
pub mod spec;

pub use async_sim::AsyncDispatchSim;
pub use chaos::{ChaosCounts, ChaosInjector, ChaosPlan, SliceChaos, SpoolWriteChaos, StormSpec};
pub use cost::EvalCostModel;
pub use event::EventQueue;
pub use fault::{FaultPlan, WorkerFault};
pub use island_sim::{simulate_async_islands, simulate_sync_islands, IslandSimConfig};
pub use master_slave_sim::{BatchReport, MasterSlaveSim, TraceEvent};
pub use migration_fault::{IslandFault, LinkEffect, LinkFault, MigrationFaultPlan};
pub use network::NetworkProfile;
pub use node_index::{MinTimeIndex, NodeIndex};
pub use observe_bridge::observe_events;
pub use spec::{ClusterSpec, FailurePlan};
