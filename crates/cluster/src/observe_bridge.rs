//! Bridge from the simulator's [`TraceEvent`] log to `pga-observe` events.
//!
//! The simulator keeps its own micro-trace (every assignment and result),
//! which is more granular than the cross-engine vocabulary needs. This
//! module lifts the *observability-relevant* subset — node failures and
//! task reassignments — into [`pga_observe::Event`]s stamped with
//! simulated time, so cluster runs land in the same unified trace as the
//! real engines.

use crate::master_slave_sim::TraceEvent;
use pga_observe::{Event, EventKind, Time};

/// Converts a batch trace into simulated-time-stamped observe events.
///
/// `NodeFailed` and `Requeued` map to their [`EventKind`] counterparts;
/// per-task `Assigned`/`Completed` lines are deliberately dropped (batch
/// totals are reported by the engine driving the simulator).
#[must_use]
pub fn observe_events(trace: &[TraceEvent]) -> Vec<Event> {
    trace
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::NodeFailed { time, node } => Some(Event::at(
                Time::Sim(time),
                EventKind::NodeFailed { node: node as u32 },
            )),
            TraceEvent::Requeued { time, task } => Some(Event::at(
                Time::Sim(time),
                EventKind::TaskReassigned { task: task as u64 },
            )),
            TraceEvent::Assigned { .. } | TraceEvent::Completed { .. } => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkProfile;
    use crate::spec::{ClusterSpec, FailurePlan};
    use crate::MasterSlaveSim;

    #[test]
    fn failures_and_requeues_are_lifted_with_sim_time() {
        let spec = ClusterSpec::homogeneous(2, NetworkProfile::SharedMemory).unwrap();
        let failures = FailurePlan::at(vec![Some(0.5), None]);
        let sim = MasterSlaveSim::new(spec, failures);
        let report = sim.run_batch(&[1.0, 1.0, 1.0]);
        let events = observe_events(&report.trace);
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::NodeFailed { node: 0 })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::TaskReassigned { .. })));
        assert!(events.iter().all(|e| matches!(e.time, Time::Sim(_))));
        // Assignment-level detail stays in the raw trace.
        assert!(events.len() < report.trace.len());
    }
}
