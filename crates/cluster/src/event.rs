//! A minimal deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by time, with FIFO tie-breaking on equal
/// timestamps (insertion sequence), which keeps simulations deterministic
/// even when many events share a timestamp.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on a max-heap.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`. NaN times are rejected.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "NaN event time");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event as `(time, event)`.
    #[allow(clippy::should_implement_trait)] // fallible pop, not an Iterator
    pub fn next(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Earliest scheduled time without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.next(), Some((1.0, "a")));
        assert_eq!(q.next(), Some((2.0, "b")));
        assert_eq!(q.next(), Some((3.0, "c")));
        assert_eq!(q.next(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.next().unwrap().1, 1);
        assert_eq!(q.next().unwrap().1, 2);
        assert_eq!(q.next().unwrap().1, 3);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(5.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        EventQueue::new().schedule(f64::NAN, ());
    }
}
