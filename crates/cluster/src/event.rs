//! A minimal deterministic discrete-event queue.
//!
//! Events are indexed in a flat 8-ary min-heap keyed by
//! `(time, insertion sequence)`. An 8-ary layout keeps all children of a
//! node in one or two cache lines and cuts the tree depth to a quarter of
//! a binary heap's, which is what keeps per-event dispatch cost
//! near-flat when a simulation holds thousands of in-flight events
//! (4 096 events: depth 4 instead of 12).

/// Heap arity: children of node `i` are `8i + 1 ..= 8i + 8`.
const D: usize = 8;

/// An event queue ordered by time, with FIFO tie-breaking on equal
/// timestamps (insertion sequence), which keeps simulations deterministic
/// even when many events share a timestamp.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Flat d-ary min-heap of `(total-order time bits, sequence, event)`.
    heap: Vec<(u64, u64, E)>,
    seq: u64,
}

/// Monotone map from `f64` to `u64` (IEEE-754 total order): `a < b` ⇔
/// `time_key(a) < time_key(b)` for every non-NaN time, negatives included.
fn time_key(t: f64) -> u64 {
    let bits = t.to_bits();
    if bits >> 63 == 0 {
        bits ^ (1u64 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`time_key`].
fn key_time(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k ^ (1u64 << 63))
    } else {
        f64::from_bits(!k)
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`. NaN times are rejected.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "NaN event time");
        self.heap.push((time_key(time), self.seq, event));
        self.seq += 1;
        self.sift_up(self.heap.len() - 1);
    }

    /// Pops the earliest event as `(time, event)`.
    #[allow(clippy::should_implement_trait)] // fallible pop, not an Iterator
    pub fn next(&mut self) -> Option<(f64, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let (key, _, event) = self.heap.pop().expect("checked non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((key_time(key), event))
    }

    /// Earliest scheduled time without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.first().map(|&(k, _, _)| key_time(k))
    }

    /// Pending event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn rank(&self, i: usize) -> (u64, u64) {
        let (k, s, _) = self.heap[i];
        (k, s)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.rank(i) >= self.rank(parent) {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = D * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let mut min_rank = self.rank(first);
            let end = (first + D).min(len);
            for c in first + 1..end {
                let r = self.rank(c);
                if r < min_rank {
                    min = c;
                    min_rank = r;
                }
            }
            if min_rank >= self.rank(i) {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }

    /// Pops the minimum and immediately schedules `event` at `time` in one
    /// root-replacement sift instead of a pop + push pair. Equivalent to
    /// `next()` followed by `schedule(time, event)`; the fused form halves
    /// the heap traffic on the hot completion→assignment path.
    pub fn replace_root(&mut self, time: f64, event: E) -> Option<(f64, E)> {
        assert!(!time.is_nan(), "NaN event time");
        if self.heap.is_empty() {
            self.schedule(time, event);
            return None;
        }
        let entry = (time_key(time), self.seq, event);
        self.seq += 1;
        let popped = std::mem::replace(&mut self.heap[0], entry);
        self.sift_down(0);
        Some((key_time(popped.0), popped.2))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.next(), Some((1.0, "a")));
        assert_eq!(q.next(), Some((2.0, "b")));
        assert_eq!(q.next(), Some((3.0, "c")));
        assert_eq!(q.next(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        assert_eq!(q.next().unwrap().1, 1);
        assert_eq!(q.next().unwrap().1, 2);
        assert_eq!(q.next().unwrap().1, 3);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(5.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        EventQueue::new().schedule(f64::NAN, ());
    }
}
