//! Cluster composition and failure plans.

use crate::network::NetworkProfile;
use pga_core::{ConfigError, Rng64};

/// Static description of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Per-node relative speed factors (1.0 = reference workstation; a task
    /// of cost `c` seconds takes `c / speed` on the node).
    pub speeds: Vec<f64>,
    /// Interconnect between the master/islands and the nodes.
    pub network: NetworkProfile,
}

impl ClusterSpec {
    /// `n` identical nodes of speed 1.0.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when `n` is zero.
    pub fn homogeneous(n: usize, network: NetworkProfile) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "nodes",
                message: "a cluster needs at least one node".into(),
            });
        }
        Ok(Self {
            speeds: vec![1.0; n],
            network,
        })
    }

    /// `n` nodes with speeds drawn uniformly from `[1, max_ratio]` — the
    /// "network of heterogeneous workstations" of Gagné et al. (2003).
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when `n` is zero or `max_ratio`
    /// is below 1 (or NaN).
    pub fn heterogeneous(
        n: usize,
        max_ratio: f64,
        seed: u64,
        network: NetworkProfile,
    ) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "nodes",
                message: "a cluster needs at least one node".into(),
            });
        }
        if max_ratio.is_nan() || max_ratio < 1.0 {
            return Err(ConfigError::InvalidParameter {
                name: "max_ratio",
                message: format!("must be >= 1, got {max_ratio}"),
            });
        }
        let mut rng = Rng64::new(seed);
        let speeds = (0..n).map(|_| rng.range_f64(1.0, max_ratio)).collect();
        Ok(Self { speeds, network })
    }

    /// Node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// `true` when the cluster has no nodes (constructors prevent this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// Sum of speed factors — the cluster's ideal aggregate throughput
    /// relative to one reference node.
    #[must_use]
    pub fn total_speed(&self) -> f64 {
        self.speeds.iter().sum()
    }
}

/// Per-node hard-failure times.
///
/// `None` means the node never fails. Plans are drawn once (exponential
/// inter-failure model, seeded) and then fixed, so the same plan can be
/// replayed against master–slave and island engines for a fair comparison.
#[derive(Clone, Debug)]
pub struct FailurePlan {
    fail_at: Vec<Option<f64>>,
}

impl FailurePlan {
    /// No failures on `n` nodes.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            fail_at: vec![None; n],
        }
    }

    /// Exponential failure times with the given mean time between failures;
    /// nodes whose drawn time exceeds `horizon` never fail.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when `mtbf_s` is not positive
    /// (or NaN).
    pub fn exponential(
        n: usize,
        mtbf_s: f64,
        horizon_s: f64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if mtbf_s.is_nan() || mtbf_s <= 0.0 {
            return Err(ConfigError::InvalidParameter {
                name: "mtbf_s",
                message: format!("MTBF must be positive, got {mtbf_s}"),
            });
        }
        let mut rng = Rng64::new(seed);
        let fail_at = (0..n)
            .map(|_| {
                // Inverse-CDF sample of Exp(1/mtbf).
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                let t = -mtbf_s * u.ln();
                (t <= horizon_s).then_some(t)
            })
            .collect();
        Ok(Self { fail_at })
    }

    /// Explicit fail times (testing hook).
    #[must_use]
    pub fn at(fail_at: Vec<Option<f64>>) -> Self {
        Self { fail_at }
    }

    /// Failure time of node `i`, if any.
    #[must_use]
    pub fn fail_time(&self, node: usize) -> Option<f64> {
        self.fail_at[node]
    }

    /// Node count covered by the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fail_at.len()
    }

    /// `true` when the plan covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fail_at.is_empty()
    }

    /// Number of nodes that fail within the plan.
    #[must_use]
    pub fn failing_nodes(&self) -> usize {
        self.fail_at.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_speeds() {
        let c = ClusterSpec::homogeneous(8, NetworkProfile::Myrinet).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.total_speed(), 8.0);
    }

    #[test]
    fn heterogeneous_speeds_in_range() {
        let c = ClusterSpec::heterogeneous(100, 4.0, 7, NetworkProfile::FastEthernet).unwrap();
        assert!(c.speeds.iter().all(|&s| (1.0..=4.0).contains(&s)));
        assert!(c.total_speed() > 100.0 && c.total_speed() < 400.0);
    }

    #[test]
    fn heterogeneous_is_deterministic() {
        let a = ClusterSpec::heterogeneous(10, 3.0, 1, NetworkProfile::Internet).unwrap();
        let b = ClusterSpec::heterogeneous(10, 3.0, 1, NetworkProfile::Internet).unwrap();
        assert_eq!(a.speeds, b.speeds);
    }

    #[test]
    fn exponential_failures_respect_horizon() {
        let plan = FailurePlan::exponential(1000, 100.0, 50.0, 3).unwrap();
        for i in 0..1000 {
            if let Some(t) = plan.fail_time(i) {
                assert!(t > 0.0 && t <= 50.0);
            }
        }
        // With MTBF 100 and horizon 50, P(fail) = 1-e^-0.5 ≈ 0.39.
        let frac = plan.failing_nodes() as f64 / 1000.0;
        assert!((0.3..0.5).contains(&frac), "failing fraction {frac}");
    }

    #[test]
    fn none_plan_never_fails() {
        let plan = FailurePlan::none(5);
        assert_eq!(plan.failing_nodes(), 0);
        assert_eq!(plan.len(), 5);
    }
}
