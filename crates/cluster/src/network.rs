//! Interconnect models: latency + bandwidth profiles.

/// A network profile characterized by one-way latency and bandwidth.
///
/// The presets follow the interconnects the survey names in §3.1 (Fast and
/// Gigabit Ethernet, Myrinet, the Internet for DREAM-style setups), with
/// round figures from the early-2000s literature. Message time is the usual
/// first-order model `latency + bytes / bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkProfile {
    /// 100 Mb/s switched Ethernet, ~100 µs latency.
    FastEthernet,
    /// 1 Gb/s Ethernet, ~50 µs latency.
    GigabitEthernet,
    /// Myrinet: ~10 µs latency, ~2 Gb/s.
    Myrinet,
    /// Wide-area Internet: ~50 ms latency, ~10 Mb/s.
    Internet,
    /// Shared memory within one SMP: effectively free transfers.
    SharedMemory,
    /// Explicit parameters.
    Custom {
        /// One-way latency in seconds.
        latency_s: f64,
        /// Bandwidth in bytes per second.
        bytes_per_s: f64,
    },
}

impl NetworkProfile {
    /// One-way latency in seconds.
    #[must_use]
    pub fn latency(self) -> f64 {
        match self {
            Self::FastEthernet => 100e-6,
            Self::GigabitEthernet => 50e-6,
            Self::Myrinet => 10e-6,
            Self::Internet => 50e-3,
            Self::SharedMemory => 0.0,
            Self::Custom { latency_s, .. } => latency_s,
        }
    }

    /// Bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth(self) -> f64 {
        match self {
            Self::FastEthernet => 100e6 / 8.0,
            Self::GigabitEthernet => 1e9 / 8.0,
            Self::Myrinet => 2e9 / 8.0,
            Self::Internet => 10e6 / 8.0,
            Self::SharedMemory => f64::INFINITY,
            Self::Custom { bytes_per_s, .. } => bytes_per_s,
        }
    }

    /// Time to move one message of `bytes` across the link.
    #[must_use]
    pub fn transfer_time(self, bytes: u64) -> f64 {
        let bw = self.bandwidth();
        let payload = if bw.is_infinite() {
            0.0
        } else {
            bytes as f64 / bw
        };
        self.latency() + payload
    }

    /// Profile name for harness tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::FastEthernet => "fast-ethernet",
            Self::GigabitEthernet => "gigabit-ethernet",
            Self::Myrinet => "myrinet",
            Self::Internet => "internet",
            Self::SharedMemory => "shared-memory",
            Self::Custom { .. } => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_networks_move_data_faster() {
        let bytes = 1_000_000;
        let fe = NetworkProfile::FastEthernet.transfer_time(bytes);
        let ge = NetworkProfile::GigabitEthernet.transfer_time(bytes);
        let my = NetworkProfile::Myrinet.transfer_time(bytes);
        let inet = NetworkProfile::Internet.transfer_time(bytes);
        assert!(my < ge && ge < fe && fe < inet);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let t = NetworkProfile::Internet.transfer_time(1);
        assert!((t - 0.05).abs() < 1e-3);
    }

    #[test]
    fn shared_memory_is_free() {
        assert_eq!(NetworkProfile::SharedMemory.transfer_time(u64::MAX), 0.0);
    }

    #[test]
    fn custom_profile() {
        let p = NetworkProfile::Custom {
            latency_s: 1.0,
            bytes_per_s: 100.0,
        };
        assert_eq!(p.transfer_time(200), 3.0);
    }
}
