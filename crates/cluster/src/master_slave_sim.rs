//! Event-driven simulation of a (fault-tolerant) master–slave dispatch.
//!
//! The master holds a bag of independent tasks (fitness evaluations, in PGA
//! use). Each free worker gets one task at a time; results return over the
//! network. Hard node failures lose the in-flight task, which the master
//! detects (one latency after the crash) and reassigns — the adjustment
//! Gagné et al. (2003) made to the classic master–slave model.
//!
//! The master's outgoing link is a *serial* resource: task messages leave
//! one after another, each occupying the link for its transfer time. This
//! is what creates the classic master–slave bottleneck (Bethke 1976;
//! Cantú-Paz 2000): when one evaluation is cheap relative to one message,
//! adding workers stops helping because the master cannot feed them.

use crate::event::EventQueue;
use crate::network::NetworkProfile;
use crate::node_index::NodeIndex;
use crate::spec::{ClusterSpec, FailurePlan};
use std::collections::VecDeque;

/// One line of the simulation trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// Task sent to a node at the given time.
    Assigned {
        /// Simulation time.
        time: f64,
        /// Task index.
        task: usize,
        /// Node index.
        node: usize,
    },
    /// Result received by the master.
    Completed {
        /// Simulation time.
        time: f64,
        /// Task index.
        task: usize,
        /// Node index.
        node: usize,
    },
    /// Node suffered a hard failure.
    NodeFailed {
        /// Simulation time.
        time: f64,
        /// Node index.
        node: usize,
    },
    /// Master detected a lost task and requeued it.
    Requeued {
        /// Simulation time.
        time: f64,
        /// Task index.
        task: usize,
    },
}

/// Result of simulating one batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Time at which the last result reached the master.
    pub makespan: f64,
    /// Tasks completed (== task count unless the whole cluster died).
    pub completed: usize,
    /// Number of task reassignments caused by failures.
    pub reassignments: usize,
    /// Nodes that failed during the batch.
    pub failed_nodes: Vec<usize>,
    /// Per-node cumulative compute time.
    pub busy: Vec<f64>,
    /// Full event trace in time order.
    pub trace: Vec<TraceEvent>,
}

impl BatchReport {
    /// Fraction of ideal aggregate throughput achieved:
    /// `Σ busy / (makespan · Σ speed)`. Meaningful for batches started at
    /// time 0 (`run_batch`); for `run_batch_at` the makespan includes the
    /// start offset.
    #[must_use]
    pub fn utilization(&self, spec: &ClusterSpec) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().sum();
        busy / (self.makespan * spec.total_speed())
    }
}

/// Event payload packed into one word so heap entries stay 24 bytes —
/// at 4 096+ in-flight events the queue's cache footprint, not its
/// asymptotics, is what shows up on the wall clock.
/// Layout: bits 62–63 tag, bits 42–61 node (< 2^20), bits 0–41 task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Ev(u64);

impl Ev {
    const TAG_RESULT: u64 = 0;
    const TAG_NODE_FAILED: u64 = 1;
    const TAG_LOSS: u64 = 2;
    const NODE_BITS: u32 = 20;
    const TASK_BITS: u32 = 42;

    fn result_arrived(task: usize, node: usize) -> Self {
        Self::pack(Self::TAG_RESULT, node, task)
    }

    fn node_failed(node: usize) -> Self {
        Self::pack(Self::TAG_NODE_FAILED, node, 0)
    }

    fn loss_detected(task: usize) -> Self {
        Self::pack(Self::TAG_LOSS, 0, task)
    }

    fn pack(tag: u64, node: usize, task: usize) -> Self {
        debug_assert!(node < (1 << Self::NODE_BITS), "node id {node} too large");
        debug_assert!(
            (task as u64) < (1 << Self::TASK_BITS),
            "task id {task} too large"
        );
        Self(tag << 62 | (node as u64) << Self::TASK_BITS | task as u64)
    }

    fn tag(self) -> u64 {
        self.0 >> 62
    }

    fn node(self) -> usize {
        (self.0 >> Self::TASK_BITS & ((1 << Self::NODE_BITS) - 1)) as usize
    }

    fn task(self) -> usize {
        (self.0 & ((1 << Self::TASK_BITS) - 1)) as usize
    }
}

/// Simulator for master–slave batches over a cluster + failure plan.
#[derive(Clone, Debug)]
pub struct MasterSlaveSim {
    spec: ClusterSpec,
    failures: FailurePlan,
    /// Bytes sent per task (genome) and per result (fitness).
    pub task_bytes: u64,
    /// Bytes of each returned result.
    pub result_bytes: u64,
    /// Whether [`BatchReport::trace`] is recorded (on by default).
    record_trace: bool,
}

impl MasterSlaveSim {
    /// New simulator; the failure plan must cover every node.
    #[must_use]
    pub fn new(spec: ClusterSpec, failures: FailurePlan) -> Self {
        assert_eq!(spec.len(), failures.len(), "failure plan must cover nodes");
        Self {
            spec,
            failures,
            task_bytes: 256,
            result_bytes: 16,
            record_trace: true,
        }
    }

    /// Overrides message sizes.
    #[must_use]
    pub fn with_message_sizes(mut self, task_bytes: u64, result_bytes: u64) -> Self {
        self.task_bytes = task_bytes;
        self.result_bytes = result_bytes;
        self
    }

    /// Enables or disables trace recording. Dispatch decisions are
    /// unaffected; with tracing off, [`BatchReport::trace`] comes back
    /// empty and 10 000-node sweeps stop paying for per-event pushes.
    #[must_use]
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    fn net(&self) -> NetworkProfile {
        self.spec.network
    }

    /// The cluster being simulated.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Failure time of `node` under the active plan, if any.
    #[must_use]
    pub fn failure_time(&self, node: usize) -> Option<f64> {
        self.failures.fail_time(node)
    }

    /// Simulates one batch of independent tasks; `tasks[i]` is the cost in
    /// seconds on a speed-1.0 node.
    #[must_use]
    pub fn run_batch(&self, tasks: &[f64]) -> BatchReport {
        self.run_batch_at(0.0, tasks)
    }

    /// Like [`MasterSlaveSim::run_batch`] but starting at absolute time
    /// `start`: failure times are absolute, so back-to-back generations can
    /// share one failure plan. Nodes whose failure time precedes `start`
    /// are already dead when the batch begins.
    #[must_use]
    pub fn run_batch_at(&self, start: f64, tasks: &[f64]) -> BatchReport {
        let n_nodes = self.spec.len();
        let mut queue = EventQueue::new();
        let mut pending: VecDeque<usize> = (0..tasks.len()).collect();
        let mut alive = vec![true; n_nodes];
        // Lowest free live node in O(levels) — the indexed replacement
        // for the per-assignment `(0..n).find(|i| alive && free)` scan
        // that made big batches O(tasks · nodes).
        let mut ready = NodeIndex::full(n_nodes);
        let mut busy = vec![0.0; n_nodes];
        let mut trace = Vec::new();
        let mut failed_nodes = Vec::new();
        let mut completed = 0usize;
        let mut reassignments = 0usize;
        let mut makespan = start;
        // The master's outgoing link frees up after each task send.
        let mut link_free = start;

        for (node, live) in alive.iter_mut().enumerate() {
            if let Some(t) = self.failures.fail_time(node) {
                if t <= start {
                    *live = false;
                    ready.remove(node);
                    failed_nodes.push(node);
                } else {
                    queue.schedule(t, Ev::node_failed(node));
                }
            }
        }

        // Closure-free helper: assign as many pending tasks as there are
        // free live nodes, at time `now`.
        macro_rules! assign_all {
            ($now:expr) => {{
                let now: f64 = $now;
                loop {
                    if pending.is_empty() {
                        break;
                    }
                    let Some(node) = ready.first() else {
                        break;
                    };
                    let task = pending.pop_front().expect("checked non-empty");
                    ready.remove(node);
                    if self.record_trace {
                        trace.push(TraceEvent::Assigned {
                            time: now,
                            task,
                            node,
                        });
                    }
                    // Serialize on the master's outgoing link.
                    let depart = now.max(link_free);
                    let send_time = self.net().transfer_time(self.task_bytes);
                    link_free = depart + send_time;
                    let arrive = depart + send_time;
                    let compute_end = arrive + tasks[task] / self.spec.speeds[node];
                    match self.failures.fail_time(node) {
                        Some(ft) if ft < compute_end => {
                            // Task dies with the node; master notices one
                            // latency after the crash.
                            queue.schedule(ft + self.net().latency(), Ev::loss_detected(task));
                            busy[node] += (ft - arrive).max(0.0);
                        }
                        _ => {
                            busy[node] += tasks[task] / self.spec.speeds[node];
                            let result_at =
                                compute_end + self.net().transfer_time(self.result_bytes);
                            queue.schedule(result_at, Ev::result_arrived(task, node));
                        }
                    }
                }
            }};
        }

        assign_all!(start);

        while let Some((now, ev)) = queue.next() {
            match ev.tag() {
                Ev::TAG_RESULT => {
                    let (task, node) = (ev.task(), ev.node());
                    completed += 1;
                    makespan = makespan.max(now);
                    if self.record_trace {
                        trace.push(TraceEvent::Completed {
                            time: now,
                            task,
                            node,
                        });
                    }
                    if alive[node] {
                        ready.insert(node);
                    }
                    assign_all!(now);
                }
                Ev::TAG_NODE_FAILED => {
                    let node = ev.node();
                    alive[node] = false;
                    ready.remove(node);
                    failed_nodes.push(node);
                    if self.record_trace {
                        trace.push(TraceEvent::NodeFailed { time: now, node });
                    }
                }
                _ => {
                    debug_assert_eq!(ev.tag(), Ev::TAG_LOSS);
                    let task = ev.task();
                    reassignments += 1;
                    makespan = makespan.max(now);
                    if self.record_trace {
                        trace.push(TraceEvent::Requeued { time: now, task });
                    }
                    pending.push_back(task);
                    assign_all!(now);
                }
            }
        }

        BatchReport {
            makespan,
            completed,
            reassignments,
            failed_nodes,
            busy,
            trace,
        }
    }

    /// Simulates `generations` back-to-back batches (a generational
    /// master–slave PGA) and returns the total makespan.
    #[must_use]
    pub fn run_generations(&self, generations: usize, tasks_per_gen: &[f64]) -> f64 {
        // Batches are dependent (selection needs all results), so makespans
        // add; failures only make sense within the first batch horizon here,
        // so this entry point is for failure-free speedup sweeps.
        (0..generations)
            .map(|_| self.run_batch(tasks_per_gen).makespan)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize, net: NetworkProfile) -> MasterSlaveSim {
        MasterSlaveSim::new(
            ClusterSpec::homogeneous(n, net).unwrap(),
            FailurePlan::none(n),
        )
    }

    #[test]
    fn single_node_serializes_tasks() {
        let s = sim(1, NetworkProfile::SharedMemory);
        let r = s.run_batch(&[1.0, 2.0, 3.0]);
        assert_eq!(r.completed, 3);
        assert!((r.makespan - 6.0).abs() < 1e-9);
        assert!((r.busy[0] - 6.0).abs() < 1e-9);
        assert!(r.failed_nodes.is_empty());
    }

    #[test]
    fn parallel_nodes_split_work() {
        let s = sim(4, NetworkProfile::SharedMemory);
        let r = s.run_batch(&[1.0; 8]);
        // 8 unit tasks on 4 nodes: two waves = 2.0 seconds.
        assert_eq!(r.completed, 8);
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.utilization(&s.spec) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn network_cost_reduces_speedup() {
        let cheap_tasks = vec![1e-4; 64];
        let free = sim(8, NetworkProfile::SharedMemory).run_batch(&cheap_tasks);
        let slow = sim(8, NetworkProfile::Internet).run_batch(&cheap_tasks);
        assert!(slow.makespan > 10.0 * free.makespan);
    }

    #[test]
    fn fast_nodes_finish_sooner() {
        let spec = ClusterSpec {
            speeds: vec![1.0, 4.0],
            network: NetworkProfile::SharedMemory,
        };
        let s = MasterSlaveSim::new(spec, FailurePlan::none(2));
        let r = s.run_batch(&[4.0, 4.0]);
        // Node 1 (speed 4) does its task in 1s, node 0 in 4s.
        assert!((r.makespan - 4.0).abs() < 1e-9);
        assert!((r.busy[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn failed_node_task_is_reassigned() {
        let spec = ClusterSpec::homogeneous(2, NetworkProfile::SharedMemory).unwrap();
        // Node 0 dies at t=0.5, mid-task.
        let failures = FailurePlan::at(vec![Some(0.5), None]);
        let s = MasterSlaveSim::new(spec, failures);
        let r = s.run_batch(&[1.0, 1.0, 1.0]);
        assert_eq!(r.completed, 3, "all tasks finish despite the failure");
        assert_eq!(r.reassignments, 1);
        assert_eq!(r.failed_nodes, vec![0]);
        // Node 1 ends up doing all three tasks (the third re-queued).
        assert!(r.makespan >= 3.0);
    }

    #[test]
    fn whole_cluster_death_terminates_with_partial_results() {
        let spec = ClusterSpec::homogeneous(2, NetworkProfile::SharedMemory).unwrap();
        let failures = FailurePlan::at(vec![Some(0.1), Some(0.2)]);
        let s = MasterSlaveSim::new(spec, failures);
        let r = s.run_batch(&[1.0; 4]);
        assert_eq!(r.completed, 0);
        assert_eq!(r.failed_nodes.len(), 2);
        // No deadlock: the simulation ends even though tasks remain.
    }

    #[test]
    fn trace_is_time_ordered_per_event_kind() {
        let s = sim(3, NetworkProfile::FastEthernet);
        let r = s.run_batch(&[0.5, 0.1, 0.9, 0.2, 0.4]);
        let times: Vec<f64> = r
            .trace
            .iter()
            .map(|e| match e {
                TraceEvent::Assigned { time, .. }
                | TraceEvent::Completed { time, .. }
                | TraceEvent::NodeFailed { time, .. }
                | TraceEvent::Requeued { time, .. } => *time,
            })
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn deterministic_replay() {
        let spec = ClusterSpec::heterogeneous(6, 3.0, 9, NetworkProfile::GigabitEthernet).unwrap();
        let failures = FailurePlan::exponential(6, 10.0, 5.0, 4).unwrap();
        let s = MasterSlaveSim::new(spec, failures);
        let tasks: Vec<f64> = (0..40).map(|i| 0.1 + 0.01 * i as f64).collect();
        let a = s.run_batch(&tasks);
        let b = s.run_batch(&tasks);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn run_batch_at_respects_absolute_failures() {
        let spec = ClusterSpec::homogeneous(2, NetworkProfile::SharedMemory).unwrap();
        // Node 0 fails at t=5.0 absolute.
        let s = MasterSlaveSim::new(spec, FailurePlan::at(vec![Some(5.0), None]));
        // Batch starting at t=10: node 0 is already dead.
        let r = s.run_batch_at(10.0, &[1.0, 1.0]);
        assert_eq!(r.completed, 2);
        assert_eq!(r.failed_nodes, vec![0]);
        assert_eq!(r.reassignments, 0);
        // Both tasks run serially on node 1: done at 12.
        assert!((r.makespan - 12.0).abs() < 1e-9);
        // Batch starting at t=0 sees the failure mid-run only if tasks reach it.
        let r0 = s.run_batch_at(0.0, &[1.0, 1.0]);
        assert_eq!(r0.completed, 2);
        assert!(r0.failed_nodes.is_empty() || r0.reassignments == 0);
    }

    #[test]
    fn generations_accumulate() {
        let s = sim(2, NetworkProfile::SharedMemory);
        let total = s.run_generations(10, &[1.0, 1.0]);
        assert!((total - 10.0).abs() < 1e-9);
    }
}
