//! Analytic time models for island PGAs on a simulated cluster.
//!
//! An island PGA's wall-clock behaviour on a cluster is governed by epoch
//! structure: each island computes `gens_per_epoch` generations, then
//! exchanges migrants. With *synchronous* migration every epoch ends at a
//! barrier (the slowest node paces the cluster); with *asynchronous*
//! migration islands never wait (messages are consumed whenever they
//! arrive), so each island's timeline is independent — exactly the
//! distinction analyzed by Alba & Troya (2001).

use crate::spec::ClusterSpec;

/// Parameters of an island-PGA time simulation (one island per node).
#[derive(Clone, Copy, Debug)]
pub struct IslandSimConfig {
    /// Migration epochs to simulate.
    pub epochs: usize,
    /// Generations computed between migrations.
    pub gens_per_epoch: usize,
    /// Fitness evaluations per generation (≈ island population size).
    pub evals_per_gen: usize,
    /// Cost of one evaluation in seconds on a speed-1.0 node.
    pub eval_cost_s: f64,
    /// Bytes per migrant message.
    pub migrant_bytes: u64,
    /// Out-degree of the migration topology (messages sent per epoch).
    pub out_degree: usize,
}

impl IslandSimConfig {
    fn epoch_compute(&self, speed: f64) -> f64 {
        (self.gens_per_epoch * self.evals_per_gen) as f64 * self.eval_cost_s / speed
    }
}

/// Total makespan with synchronous migration: every epoch, all islands wait
/// for the slowest island plus the migration exchange.
#[must_use]
pub fn simulate_sync_islands(spec: &ClusterSpec, cfg: &IslandSimConfig) -> f64 {
    assert!(!spec.is_empty());
    let slowest = spec.speeds.iter().fold(f64::INFINITY, |acc, &s| acc.min(s));
    let migration = cfg.out_degree as f64 * spec.network.transfer_time(cfg.migrant_bytes);
    cfg.epochs as f64 * (cfg.epoch_compute(slowest) + migration)
}

/// Total makespan with asynchronous migration: islands never block, so the
/// cluster finishes when its slowest island does; migrant sends overlap
/// with computation (only the send overhead is charged).
#[must_use]
pub fn simulate_async_islands(spec: &ClusterSpec, cfg: &IslandSimConfig) -> f64 {
    assert!(!spec.is_empty());
    let send_overhead = cfg.out_degree as f64 * spec.network.latency();
    spec.speeds
        .iter()
        .map(|&s| cfg.epochs as f64 * (cfg.epoch_compute(s) + send_overhead))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkProfile;

    fn cfg() -> IslandSimConfig {
        IslandSimConfig {
            epochs: 10,
            gens_per_epoch: 16,
            evals_per_gen: 50,
            eval_cost_s: 1e-4,
            migrant_bytes: 512,
            out_degree: 1,
        }
    }

    #[test]
    fn homogeneous_sync_equals_async_modulo_comm() {
        let spec = ClusterSpec::homogeneous(8, NetworkProfile::SharedMemory).unwrap();
        let sync = simulate_sync_islands(&spec, &cfg());
        let async_ = simulate_async_islands(&spec, &cfg());
        // With free communication and equal speeds the two coincide.
        assert!((sync - async_).abs() < 1e-9);
    }

    #[test]
    fn heterogeneity_hurts_sync_more_than_async() {
        // One slow node (speed 1) among fast nodes (speed 4).
        let spec = ClusterSpec {
            speeds: vec![4.0, 4.0, 4.0, 1.0],
            network: NetworkProfile::SharedMemory,
        };
        let sync = simulate_sync_islands(&spec, &cfg());
        let async_ = simulate_async_islands(&spec, &cfg());
        // Sync is paced by the slow node every epoch; async lets the fast
        // islands run ahead, but the slow island still defines the end.
        // For this simple model both end with the slow island: equal.
        assert!((sync - async_).abs() < 1e-9);
        // Against an all-fast cluster the slowdown factor is 4.
        let fast = ClusterSpec::homogeneous(4, NetworkProfile::SharedMemory).unwrap();
        // speeds are 1.0; scale epochs' compute by 1/4 via speed 4 cluster:
        let fast4 = ClusterSpec {
            speeds: vec![4.0; 4],
            network: NetworkProfile::SharedMemory,
        };
        let t_fast = simulate_sync_islands(&fast4, &cfg());
        assert!((sync / t_fast - 4.0).abs() < 1e-9);
        let _ = fast;
    }

    #[test]
    fn slow_network_penalizes_sync_epochs() {
        let spec_fast_net = ClusterSpec::homogeneous(8, NetworkProfile::Myrinet).unwrap();
        let spec_slow_net = ClusterSpec::homogeneous(8, NetworkProfile::Internet).unwrap();
        let sync_fast = simulate_sync_islands(&spec_fast_net, &cfg());
        let sync_slow = simulate_sync_islands(&spec_slow_net, &cfg());
        assert!(sync_slow > sync_fast);
        // Async only pays latency overhead, so the Internet penalty shrinks.
        let async_slow = simulate_async_islands(&spec_slow_net, &cfg());
        assert!(async_slow < sync_slow);
    }

    #[test]
    fn makespan_scales_with_epochs_and_work() {
        let spec = ClusterSpec::homogeneous(4, NetworkProfile::SharedMemory).unwrap();
        let base = simulate_sync_islands(&spec, &cfg());
        let mut double = cfg();
        double.epochs *= 2;
        assert!((simulate_sync_islands(&spec, &double) - 2.0 * base).abs() < 1e-9);
    }
}
