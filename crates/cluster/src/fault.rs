//! Shared fault scripts for *real-thread* worker pools.
//!
//! [`FailurePlan`] describes node deaths in **virtual
//! seconds** for the discrete-event simulator. Real worker threads have no
//! virtual clock, so the threaded resilient runtime (`pga-master-slave`)
//! scripts faults in **task counts** instead: "worker 3 dies when handed its
//! 6th task", "worker 1 panics evaluating its 2nd task", "worker 0 sleeps
//! 2 ms before every task". Both descriptions live here so the simulator and
//! the threaded runtime consume one seeded fault description — the
//! [`FaultPlan::to_failure_plan`] bridge converts task counts back into
//! virtual time for cross-validation experiments (E17 vs E07).
//!
//! Plans are drawn once (seeded) and then fixed, mirroring `FailurePlan`:
//! the same plan replayed against the same batch yields the same lifecycle
//! trace up to thread scheduling, and — because fitness is pure — always
//! the same fitness values.

use crate::spec::FailurePlan;
use pga_core::{ConfigError, Rng64};
use std::time::Duration;

/// Fault script for a single worker thread.
///
/// All task indices are 0-based and count the tasks *received* by this
/// worker. `Default` is a healthy worker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerFault {
    /// Worker dies silently (thread exits, no message) upon *receiving* its
    /// `n`-th task (0-based): `Some(0)` dies on the first task it is handed.
    pub die_on_task: Option<u64>,
    /// Worker panics while *evaluating* its `n`-th task (0-based). The
    /// panic is caught by the worker loop and reported to the master, which
    /// quarantines the worker.
    pub panic_on_task: Option<u64>,
    /// Added latency before evaluating each task — a permanent straggler
    /// (the heterogeneous-workstation effect of Gagné et al. 2003).
    pub delay_per_task: Duration,
}

impl WorkerFault {
    /// A healthy worker: never dies, never panics, no added latency.
    #[must_use]
    pub fn healthy() -> Self {
        Self::default()
    }

    /// `true` when this worker has no scripted fault of any kind.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.die_on_task.is_none() && self.panic_on_task.is_none() && self.delay_per_task.is_zero()
    }

    /// `true` when the script removes the worker from service at some point
    /// (death or panic — slowdowns keep the worker alive).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.die_on_task.is_some() || self.panic_on_task.is_some()
    }

    /// Task index at which the worker leaves service, if any (earliest of
    /// death and panic).
    #[must_use]
    pub fn terminal_task(&self) -> Option<u64> {
        match (self.die_on_task, self.panic_on_task) {
            (Some(d), Some(p)) => Some(d.min(p)),
            (d, p) => d.or(p),
        }
    }
}

/// Deterministic per-worker fault script for a threaded worker pool.
///
/// The real-thread counterpart of [`FailurePlan`]: one [`WorkerFault`] per
/// worker, drawn once (seeded constructors) and then fixed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// No faults on `n` workers.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            faults: vec![WorkerFault::healthy(); n],
        }
    }

    /// Explicit per-worker scripts (testing hook).
    #[must_use]
    pub fn at(faults: Vec<WorkerFault>) -> Self {
        Self { faults }
    }

    /// Exponential task-count death times, the task-domain analogue of
    /// [`FailurePlan::exponential`]: each worker draws a death task from
    /// Exp(1/`mean_tasks`); draws beyond `horizon_tasks` never die.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when `mean_tasks` is not positive
    /// (or NaN).
    pub fn exponential_deaths(
        n: usize,
        mean_tasks: f64,
        horizon_tasks: u64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if mean_tasks.is_nan() || mean_tasks <= 0.0 {
            return Err(ConfigError::InvalidParameter {
                name: "mean_tasks",
                message: format!("must be positive, got {mean_tasks}"),
            });
        }
        let mut rng = Rng64::new(seed);
        let faults = (0..n)
            .map(|_| {
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                let t = (-mean_tasks * u.ln()).floor() as u64;
                WorkerFault {
                    die_on_task: (t <= horizon_tasks).then_some(t),
                    ..WorkerFault::healthy()
                }
            })
            .collect();
        Ok(Self { faults })
    }

    /// Mixed-mode stress plan: each worker independently draws a silent
    /// death (~1/3), a panic (~1/6), a slowdown (~1/4), or stays healthy.
    /// Used by the fault-injection stress suite; always leaves worker 0
    /// free of terminal faults so the pool keeps at least one survivor
    /// (the master degrades gracefully even without one, but the survivor
    /// keeps stress runs fast).
    #[must_use]
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = Rng64::new(seed);
        let faults = (0..n)
            .map(|w| {
                let roll = rng.next_f64();
                let task = rng.next_u64() % 8;
                let mut fault = WorkerFault::healthy();
                if w > 0 && roll < 1.0 / 3.0 {
                    fault.die_on_task = Some(task);
                } else if w > 0 && roll < 0.5 {
                    fault.panic_on_task = Some(task);
                } else if roll < 0.75 {
                    fault.delay_per_task = Duration::from_micros(200 + task * 150);
                }
                fault
            })
            .collect();
        Self { faults }
    }

    /// Fault script of worker `i`.
    #[must_use]
    pub fn fault(&self, worker: usize) -> &WorkerFault {
        &self.faults[worker]
    }

    /// Worker count covered by the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the plan covers zero workers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `true` when no worker has any scripted fault — the disabled-equivalent
    /// plan under which the resilient runtime must be bit-identical to
    /// serial evaluation.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.faults.iter().all(WorkerFault::is_healthy)
    }

    /// Number of workers that leave service within the plan (death or panic).
    #[must_use]
    pub fn terminal_workers(&self) -> usize {
        self.faults.iter().filter(|f| f.is_terminal()).count()
    }

    /// Projects this task-count script into the simulator's virtual-time
    /// failure model: a worker that leaves service on its `k`-th task is
    /// mapped to a node failing at virtual time `(k + 0.5) * eval_cost_s`
    /// (mid-task, so the simulator also loses the in-flight task), assuming
    /// each worker evaluates back-to-back tasks of uniform cost
    /// `eval_cost_s`. This is the bridge the E17 cross-validation uses to
    /// replay one fault description against both runtimes.
    #[must_use]
    pub fn to_failure_plan(&self, eval_cost_s: f64) -> FailurePlan {
        assert!(eval_cost_s > 0.0, "eval_cost_s must be positive");
        FailurePlan::at(
            self.faults
                .iter()
                .map(|f| f.terminal_task().map(|k| (k as f64 + 0.5) * eval_cost_s))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_benign() {
        let plan = FaultPlan::none(8);
        assert_eq!(plan.len(), 8);
        assert!(plan.is_benign());
        assert_eq!(plan.terminal_workers(), 0);
    }

    #[test]
    fn exponential_deaths_deterministic_and_bounded() {
        let a = FaultPlan::exponential_deaths(100, 10.0, 40, 7).unwrap();
        let b = FaultPlan::exponential_deaths(100, 10.0, 40, 7).unwrap();
        assert_eq!(a, b);
        for w in 0..100 {
            if let Some(t) = a.fault(w).die_on_task {
                assert!(t <= 40);
            }
        }
        assert!(a.terminal_workers() > 0);
    }

    #[test]
    fn random_plan_spares_worker_zero() {
        for seed in 0..50 {
            let plan = FaultPlan::random(6, seed);
            assert!(!plan.fault(0).is_terminal(), "seed {seed}");
        }
    }

    #[test]
    fn random_plans_differ_by_seed() {
        assert_ne!(FaultPlan::random(8, 1), FaultPlan::random(8, 2));
    }

    #[test]
    fn terminal_task_takes_earliest() {
        let f = WorkerFault {
            die_on_task: Some(5),
            panic_on_task: Some(2),
            delay_per_task: Duration::ZERO,
        };
        assert_eq!(f.terminal_task(), Some(2));
        assert!(f.is_terminal());
        assert!(!f.is_healthy());
    }

    #[test]
    fn bridge_to_failure_plan_places_mid_task_failures() {
        let plan = FaultPlan::at(vec![
            WorkerFault::healthy(),
            WorkerFault {
                die_on_task: Some(3),
                ..WorkerFault::healthy()
            },
        ]);
        let virt = plan.to_failure_plan(2.0);
        assert_eq!(virt.fail_time(0), None);
        assert_eq!(virt.fail_time(1), Some(7.0));
        assert_eq!(virt.failing_nodes(), 1);
    }
}
