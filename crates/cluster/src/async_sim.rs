//! Streaming dispatch simulator for asynchronous master–slave engines.
//!
//! [`MasterSlaveSim`](crate::MasterSlaveSim) models one *batch* at a time
//! — submit a vector of tasks, get the batch makespan back — which is
//! exactly the barrier an asynchronous master does not have. This module
//! is the same cluster model (per-node speeds, serialized master link,
//! latency + bandwidth transfer times) exposed as a *streaming* API: the
//! caller dispatches one task at a time, each dispatch returns the
//! virtual instant its result reaches the master, and the caller folds
//! results in arrival order. Sync and async engines therefore share one
//! [`ClusterSpec`]/[`NetworkProfile`](crate::NetworkProfile) vocabulary
//! and one link-cost model, so an E20-style time-fair comparison differs
//! only in the thing under test: the barrier.
//!
//! The simulator is pure state (`free_at` per node plus one `link_free`
//! scalar) with no event queue, so an engine can serialize it into a
//! checkpoint and restore it bit-identically. A [`MinTimeIndex`] mirrors
//! `free_at`, so [`AsyncDispatchSim::earliest_free_node`] is an O(log n)
//! lookup rather than a per-call scan — the difference between ~64 and
//! ~10 000 simulated nodes.

use crate::node_index::MinTimeIndex;
use crate::spec::ClusterSpec;

/// Message-size defaults matching [`MasterSlaveSim`](crate::MasterSlaveSim).
const TASK_BYTES: u64 = 256;
const RESULT_BYTES: u64 = 16;

/// Streaming virtual-time dispatcher over a [`ClusterSpec`].
#[derive(Clone, Debug)]
pub struct AsyncDispatchSim {
    spec: ClusterSpec,
    task_bytes: u64,
    result_bytes: u64,
    /// Virtual instant each node finishes its current task.
    free_at: Vec<f64>,
    /// Ordered mirror of `free_at` for O(log n) earliest-node queries.
    by_time: MinTimeIndex,
    /// Virtual instant the master's outbound link is free (sends are
    /// serialized through the master, as in the batch simulator).
    link_free: f64,
}

impl AsyncDispatchSim {
    /// Fresh simulator over `spec` with the default message sizes.
    #[must_use]
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.len();
        let free_at = vec![0.0; n];
        Self {
            spec,
            task_bytes: TASK_BYTES,
            result_bytes: RESULT_BYTES,
            by_time: MinTimeIndex::from_times(&free_at),
            free_at,
            link_free: 0.0,
        }
    }

    /// Overrides the task/result message sizes (bytes).
    #[must_use]
    pub fn with_message_sizes(mut self, task_bytes: u64, result_bytes: u64) -> Self {
        self.task_bytes = task_bytes;
        self.result_bytes = result_bytes;
        self
    }

    /// The cluster description this simulator runs over.
    #[must_use]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Node count.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.free_at.len()
    }

    /// Virtual instant node `node` finishes its current work.
    #[must_use]
    pub fn node_free_at(&self, node: usize) -> f64 {
        self.free_at[node]
    }

    /// Virtual instant the master's outbound link frees up.
    #[must_use]
    pub fn link_free_at(&self) -> f64 {
        self.link_free
    }

    /// The node that frees up earliest (lowest index on ties) and when.
    /// This is the natural greedy dispatch target for an async master.
    /// O(log n) via the ordered index — never a scan.
    #[must_use]
    pub fn earliest_free_node(&self) -> (usize, f64) {
        let node = self.by_time.min_node().unwrap_or(0);
        (node, self.free_at[node])
    }

    /// Dispatches one task of `cost_s` reference-seconds to `node` at
    /// virtual time `now`, and returns the instant its result reaches the
    /// master.
    ///
    /// Mirrors the batch simulator's cost model exactly: the send waits
    /// for the master link and for the node's current task, transfer time
    /// is `latency + bytes/bandwidth` each way, and compute is scaled by
    /// the node's speed factor.
    pub fn dispatch(&mut self, node: usize, cost_s: f64, now: f64) -> f64 {
        let net = self.spec.network;
        let depart = now.max(self.link_free);
        let send_time = net.transfer_time(self.task_bytes);
        self.link_free = depart + send_time;
        let arrive = depart + send_time;
        let start = arrive.max(self.free_at[node]);
        let compute_end = start + cost_s / self.spec.speeds[node];
        self.by_time.update(node, self.free_at[node], compute_end);
        self.free_at[node] = compute_end;
        compute_end + net.transfer_time(self.result_bytes)
    }

    /// Exports the dynamic state for checkpointing.
    #[must_use]
    pub fn export_state(&self) -> (Vec<f64>, f64) {
        (self.free_at.clone(), self.link_free)
    }

    /// Restores dynamic state captured by [`export_state`].
    ///
    /// Silently ignores a vector of the wrong length (callers validate
    /// against their own config first).
    ///
    /// [`export_state`]: Self::export_state
    pub fn import_state(&mut self, free_at: Vec<f64>, link_free: f64) {
        if free_at.len() == self.free_at.len() {
            self.by_time = MinTimeIndex::from_times(&free_at);
            self.free_at = free_at;
            self.link_free = link_free;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkProfile;
    use crate::spec::{ClusterSpec, FailurePlan};
    use crate::MasterSlaveSim;

    fn spec(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, NetworkProfile::FastEthernet).unwrap()
    }

    #[test]
    fn dispatch_matches_batch_simulator_for_one_round() {
        // One task per node dispatched at t=0 must produce the same
        // arrival times the batch simulator computes for the same batch.
        let n = 4;
        let tasks = vec![0.5, 0.5, 0.5, 0.5];
        let batch = MasterSlaveSim::new(spec(n), FailurePlan::none(n)).run_batch_at(0.0, &tasks);
        let mut sim = AsyncDispatchSim::new(spec(n));
        let mut arrivals: Vec<f64> = (0..n).map(|node| sim.dispatch(node, 0.5, 0.0)).collect();
        arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let makespan = arrivals.last().copied().unwrap();
        assert!(
            (makespan - batch.makespan).abs() < 1e-12,
            "streaming {makespan} vs batch {}",
            batch.makespan
        );
    }

    #[test]
    fn link_serialization_orders_sends() {
        let mut sim = AsyncDispatchSim::new(spec(2));
        let a = sim.dispatch(0, 0.1, 0.0);
        let b = sim.dispatch(1, 0.1, 0.0);
        // The second send departs after the first clears the link, so its
        // result arrives strictly later.
        assert!(b > a);
    }

    #[test]
    fn heterogeneous_speed_scales_compute() {
        let spec = ClusterSpec {
            speeds: vec![1.0, 4.0],
            network: NetworkProfile::SharedMemory,
        };
        let mut sim = AsyncDispatchSim::new(spec);
        let slow = sim.dispatch(0, 1.0, 0.0);
        let mut sim2 = AsyncDispatchSim::new(ClusterSpec {
            speeds: vec![1.0, 4.0],
            network: NetworkProfile::SharedMemory,
        });
        let fast = sim2.dispatch(1, 1.0, 0.0);
        assert!((slow - 1.0).abs() < 1e-12);
        assert!((fast - 0.25).abs() < 1e-12);
    }

    #[test]
    fn busy_node_queues_work() {
        let mut sim = AsyncDispatchSim::new(spec(1));
        let first = sim.dispatch(0, 0.5, 0.0);
        let second = sim.dispatch(0, 0.5, 0.0);
        assert!(second > first + 0.49, "second task waits for the first");
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut sim = AsyncDispatchSim::new(spec(3));
        sim.dispatch(0, 0.3, 0.0);
        sim.dispatch(2, 0.7, 0.1);
        let (free_at, link_free) = sim.export_state();
        let mut fresh = AsyncDispatchSim::new(spec(3));
        fresh.import_state(free_at, link_free);
        let a = sim.dispatch(1, 0.2, 0.5);
        let b = fresh.dispatch(1, 0.2, 0.5);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn earliest_free_node_breaks_ties_low() {
        let sim = AsyncDispatchSim::new(spec(4));
        assert_eq!(sim.earliest_free_node(), (0, 0.0));
    }
}
