//! Deterministic chaos scripts for the serving layer (`pga-serve`).
//!
//! A [`ChaosPlan`] scripts faults *by operation index*, the serve-layer
//! analogue of [`FaultPlan`](crate::FaultPlan)'s task-count scripts: the
//! plan is drawn once (either explicitly or seeded via
//! [`ChaosPlan::storm`]) and then fixed, so the fault *schedule* is a
//! pure function of its seed. Five injection points are scripted:
//!
//! | Point | Index counts… | Fault |
//! |---|---|---|
//! | spool write | `Spool::save` calls | IO error, or a torn (truncated) file |
//! | spool read  | spool files read at recovery | IO error |
//! | slice       | job slices, in selection order | engine panic, stalled `poll_step` |
//! | accept      | accepted HTTP connections | dropped before reading the request |
//! | tenant      | — (keyed by name, not index) | every slice of a *poison tenant* panics |
//!
//! Tenant-keyed panics are the interleaving-independent subset: however
//! the scheduler orders its batches, a poison tenant's jobs panic on
//! every attempt, so retry-budget exhaustion counts are exact. The
//! index-keyed faults hit "whichever operation is n-th" — deterministic
//! for a serialized point (spool writes happen on the one scheduler
//! thread), scheduling-dependent across threads — and the serving
//! stack's invariants (availability, quarantine, bit-identical
//! recovery) must hold for *every* realizable interleaving.
//!
//! The runtime side is [`ChaosInjector`]: the plan plus one atomic
//! cursor per injection point, consulted by `pga-serve` behind an
//! `Option` that defaults to `None` — the production path pays one
//! branch per operation and allocates nothing.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pga_core::Rng64;

/// What to inject into one job slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SliceChaos {
    /// Run the slice normally.
    #[default]
    None,
    /// Panic inside the slice (caught by the scheduler's `catch_unwind`).
    Panic,
    /// Sleep this long before stepping — a stalled `poll_step` slice the
    /// watchdog deadline must catch.
    Stall(Duration),
}

/// What to inject into one spool write.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpoolWriteChaos {
    /// Write normally.
    #[default]
    None,
    /// Fail the write with an IO error (persist-retry/degraded path).
    Error,
    /// Tear the write: only the first `n` bytes reach the file, as if
    /// the process died mid-write. The record on disk is corrupt; the
    /// checksum catches it at the next recovery scan.
    Truncate(usize),
}

/// How many faults a seeded [`ChaosPlan::storm`] draws, and over which
/// index horizons. All counts may exceed what the run actually reaches;
/// unreached indices simply never fire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StormSpec {
    /// Spool write errors to script (drawn over `spool_write_horizon`).
    pub spool_write_errors: usize,
    /// Torn spool writes to script (drawn over `spool_write_horizon`).
    pub spool_truncations: usize,
    /// Bytes kept by each torn write.
    pub truncate_keep_bytes: usize,
    /// Index horizon for spool-write faults.
    pub spool_write_horizon: u64,
    /// Spool read errors to script (drawn over `spool_read_horizon`).
    pub spool_read_errors: usize,
    /// Index horizon for spool-read faults.
    pub spool_read_horizon: u64,
    /// Stalled slices to script (drawn over `slice_horizon`).
    pub slice_stalls: usize,
    /// How long each stalled slice sleeps.
    pub stall: Duration,
    /// Panicking slices to script by index (drawn over `slice_horizon`),
    /// *in addition to* any poison tenants.
    pub slice_panics: usize,
    /// Index horizon for slice faults.
    pub slice_horizon: u64,
    /// Accepted-connection drops to script (drawn over `conn_horizon`).
    pub conn_drops: usize,
    /// Index horizon for connection drops.
    pub conn_horizon: u64,
}

impl Default for StormSpec {
    fn default() -> Self {
        Self {
            spool_write_errors: 4,
            spool_truncations: 2,
            truncate_keep_bytes: 24,
            spool_write_horizon: 200,
            spool_read_errors: 1,
            spool_read_horizon: 16,
            slice_stalls: 3,
            stall: Duration::from_millis(40),
            slice_panics: 2,
            slice_horizon: 300,
            conn_drops: 2,
            conn_horizon: 400,
        }
    }
}

/// A fixed, deterministic fault script for the serving stack. `Default`
/// (and [`ChaosPlan::none`]) is the empty plan: nothing ever fires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    spool_write_errors: BTreeSet<u64>,
    spool_write_truncations: BTreeMap<u64, usize>,
    spool_read_errors: BTreeSet<u64>,
    slice_panics: BTreeSet<u64>,
    slice_stalls: BTreeMap<u64, Duration>,
    poison_tenants: BTreeSet<String>,
    conn_drops: BTreeSet<u64>,
}

impl ChaosPlan {
    /// The empty plan: every injection point is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Draws a mixed fault storm from `seed`: the schedule is a pure
    /// function of `(seed, spec)` — equal seeds give equal storms.
    #[must_use]
    pub fn storm(seed: u64, spec: &StormSpec) -> Self {
        let mut rng = Rng64::new(seed);
        let mut draw = |count: usize, horizon: u64| -> BTreeSet<u64> {
            let mut set = BTreeSet::new();
            if horizon == 0 {
                return set;
            }
            // Rejection-free enough at storm densities; cap the loop so
            // a spec asking for more faults than the horizon holds still
            // terminates with a saturated set.
            for _ in 0..count.saturating_mul(8) {
                if set.len() >= count.min(horizon as usize) {
                    break;
                }
                set.insert(rng.next_u64() % horizon);
            }
            set
        };
        let spool_write_errors = draw(spec.spool_write_errors, spec.spool_write_horizon);
        let truncations = draw(spec.spool_truncations, spec.spool_write_horizon);
        Self {
            // A torn write and an error at the same index would shadow
            // each other; errors win, truncations move aside.
            spool_write_truncations: truncations
                .into_iter()
                .filter(|i| !spool_write_errors.contains(i))
                .map(|i| (i, spec.truncate_keep_bytes))
                .collect(),
            spool_write_errors,
            spool_read_errors: draw(spec.spool_read_errors, spec.spool_read_horizon),
            slice_panics: draw(spec.slice_panics, spec.slice_horizon),
            slice_stalls: draw(spec.slice_stalls, spec.slice_horizon)
                .into_iter()
                .map(|i| (i, spec.stall))
                .collect(),
            poison_tenants: BTreeSet::new(),
            conn_drops: draw(spec.conn_drops, spec.conn_horizon),
        }
    }

    /// Scripts an IO error on the `index`-th spool write (0-based).
    #[must_use]
    pub fn spool_write_error(mut self, index: u64) -> Self {
        self.spool_write_errors.insert(index);
        self
    }

    /// Scripts a torn `index`-th spool write: only `keep_bytes` bytes
    /// reach the file.
    #[must_use]
    pub fn spool_write_truncated(mut self, index: u64, keep_bytes: usize) -> Self {
        self.spool_write_truncations.insert(index, keep_bytes);
        self
    }

    /// Scripts an IO error on the `index`-th spool file read (0-based,
    /// counted across recovery scans).
    #[must_use]
    pub fn spool_read_error(mut self, index: u64) -> Self {
        self.spool_read_errors.insert(index);
        self
    }

    /// Scripts a panic inside the `index`-th scheduled slice (0-based,
    /// in batch selection order).
    #[must_use]
    pub fn slice_panic(mut self, index: u64) -> Self {
        self.slice_panics.insert(index);
        self
    }

    /// Scripts a stall of `stall` before the `index`-th scheduled slice
    /// steps.
    #[must_use]
    pub fn slice_stall(mut self, index: u64, stall: Duration) -> Self {
        self.slice_stalls.insert(index, stall);
        self
    }

    /// Marks `tenant` as poison: **every** slice of its jobs panics, on
    /// the first attempt and on every resurrection, independent of
    /// scheduling order. This is the lever for exact quarantine counts.
    #[must_use]
    pub fn poison_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.poison_tenants.insert(tenant.into());
        self
    }

    /// Scripts dropping the `index`-th accepted HTTP connection before
    /// its request is read.
    #[must_use]
    pub fn drop_connection(mut self, index: u64) -> Self {
        self.conn_drops.insert(index);
        self
    }

    /// `true` when nothing is scripted (the disabled-equivalent plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spool_write_errors.is_empty()
            && self.spool_write_truncations.is_empty()
            && self.spool_read_errors.is_empty()
            && self.slice_panics.is_empty()
            && self.slice_stalls.is_empty()
            && self.poison_tenants.is_empty()
            && self.conn_drops.is_empty()
    }

    /// Tenants whose every slice is scripted to panic.
    pub fn poison_tenants(&self) -> impl Iterator<Item = &str> {
        self.poison_tenants.iter().map(String::as_str)
    }

    /// `true` when `tenant` is scripted as poison.
    #[must_use]
    pub fn is_poison(&self, tenant: &str) -> bool {
        self.poison_tenants.contains(tenant)
    }

    /// The fault scripted for spool write `index`, if any.
    #[must_use]
    pub fn spool_write_fault(&self, index: u64) -> SpoolWriteChaos {
        if self.spool_write_errors.contains(&index) {
            SpoolWriteChaos::Error
        } else if let Some(&keep) = self.spool_write_truncations.get(&index) {
            SpoolWriteChaos::Truncate(keep)
        } else {
            SpoolWriteChaos::None
        }
    }

    /// `true` when spool read `index` is scripted to fail.
    #[must_use]
    pub fn spool_read_fault(&self, index: u64) -> bool {
        self.spool_read_errors.contains(&index)
    }

    /// The fault scripted for slice `index` of `tenant`, if any. Poison
    /// tenants panic regardless of index.
    #[must_use]
    pub fn slice_fault(&self, index: u64, tenant: &str) -> SliceChaos {
        if self.poison_tenants.contains(tenant) || self.slice_panics.contains(&index) {
            SliceChaos::Panic
        } else if let Some(&stall) = self.slice_stalls.get(&index) {
            SliceChaos::Stall(stall)
        } else {
            SliceChaos::None
        }
    }

    /// `true` when accepted connection `index` is scripted to drop.
    #[must_use]
    pub fn conn_drop_fault(&self, index: u64) -> bool {
        self.conn_drops.contains(&index)
    }
}

/// Faults actually fired so far, per injection point (monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Spool writes failed with an injected IO error.
    pub spool_write_errors: u64,
    /// Spool writes torn (truncated on disk).
    pub spool_truncations: u64,
    /// Spool reads failed with an injected IO error.
    pub spool_read_errors: u64,
    /// Slices that panicked by script (index- or tenant-keyed).
    pub slice_panics: u64,
    /// Slices stalled by script.
    pub slice_stalls: u64,
    /// Accepted connections dropped by script.
    pub connection_drops: u64,
}

/// A [`ChaosPlan`] armed with per-point atomic cursors: each call to an
/// `on_*` method consumes the next index for that point and returns the
/// scripted fault, so the consuming layer never tracks indices itself.
/// Thread-safe; shared behind an `Arc` between the scheduler, the
/// spool, and the HTTP acceptor.
#[derive(Debug)]
pub struct ChaosInjector {
    plan: ChaosPlan,
    spool_writes: AtomicU64,
    spool_reads: AtomicU64,
    slices: AtomicU64,
    accepts: AtomicU64,
    fired_write_errors: AtomicU64,
    fired_truncations: AtomicU64,
    fired_read_errors: AtomicU64,
    fired_panics: AtomicU64,
    fired_stalls: AtomicU64,
    fired_drops: AtomicU64,
}

impl ChaosInjector {
    /// Arms `plan` with zeroed cursors.
    #[must_use]
    pub fn new(plan: ChaosPlan) -> Self {
        Self {
            plan,
            spool_writes: AtomicU64::new(0),
            spool_reads: AtomicU64::new(0),
            slices: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            fired_write_errors: AtomicU64::new(0),
            fired_truncations: AtomicU64::new(0),
            fired_read_errors: AtomicU64::new(0),
            fired_panics: AtomicU64::new(0),
            fired_stalls: AtomicU64::new(0),
            fired_drops: AtomicU64::new(0),
        }
    }

    /// The armed plan.
    #[must_use]
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Consumes the next spool-write index and returns its fault.
    pub fn on_spool_write(&self) -> SpoolWriteChaos {
        let index = self.spool_writes.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.spool_write_fault(index);
        match fault {
            SpoolWriteChaos::Error => {
                self.fired_write_errors.fetch_add(1, Ordering::Relaxed);
            }
            SpoolWriteChaos::Truncate(_) => {
                self.fired_truncations.fetch_add(1, Ordering::Relaxed);
            }
            SpoolWriteChaos::None => {}
        }
        fault
    }

    /// Consumes the next spool-read index; `true` means fail the read.
    pub fn on_spool_read(&self) -> bool {
        let index = self.spool_reads.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.spool_read_fault(index);
        if fault {
            self.fired_read_errors.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Consumes the next slice index and returns the fault for a slice
    /// of `tenant`.
    pub fn on_slice(&self, tenant: &str) -> SliceChaos {
        let index = self.slices.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.slice_fault(index, tenant);
        match fault {
            SliceChaos::Panic => {
                self.fired_panics.fetch_add(1, Ordering::Relaxed);
            }
            SliceChaos::Stall(_) => {
                self.fired_stalls.fetch_add(1, Ordering::Relaxed);
            }
            SliceChaos::None => {}
        }
        fault
    }

    /// Consumes the next accepted-connection index; `true` means drop
    /// the connection unanswered.
    pub fn on_accept(&self) -> bool {
        let index = self.accepts.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.conn_drop_fault(index);
        if fault {
            self.fired_drops.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Faults fired so far.
    #[must_use]
    pub fn counts(&self) -> ChaosCounts {
        ChaosCounts {
            spool_write_errors: self.fired_write_errors.load(Ordering::Relaxed),
            spool_truncations: self.fired_truncations.load(Ordering::Relaxed),
            spool_read_errors: self.fired_read_errors.load(Ordering::Relaxed),
            slice_panics: self.fired_panics.load(Ordering::Relaxed),
            slice_stalls: self.fired_stalls.load(Ordering::Relaxed),
            connection_drops: self.fired_drops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let injector = ChaosInjector::new(ChaosPlan::none());
        for _ in 0..100 {
            assert_eq!(injector.on_spool_write(), SpoolWriteChaos::None);
            assert!(!injector.on_spool_read());
            assert_eq!(injector.on_slice("acme"), SliceChaos::None);
            assert!(!injector.on_accept());
        }
        assert_eq!(injector.counts(), ChaosCounts::default());
    }

    #[test]
    fn storms_are_pure_functions_of_seed() {
        let spec = StormSpec::default();
        assert_eq!(ChaosPlan::storm(7, &spec), ChaosPlan::storm(7, &spec));
        assert_ne!(ChaosPlan::storm(7, &spec), ChaosPlan::storm(8, &spec));
        assert!(!ChaosPlan::storm(7, &spec).is_empty());
    }

    #[test]
    fn indexed_faults_fire_exactly_at_their_index() {
        let plan = ChaosPlan::none()
            .spool_write_error(2)
            .spool_write_truncated(4, 10)
            .spool_read_error(1)
            .slice_panic(3)
            .slice_stall(5, Duration::from_millis(7))
            .drop_connection(0);
        let injector = ChaosInjector::new(plan);
        let writes: Vec<_> = (0..6).map(|_| injector.on_spool_write()).collect();
        assert_eq!(writes[2], SpoolWriteChaos::Error);
        assert_eq!(writes[4], SpoolWriteChaos::Truncate(10));
        assert_eq!(
            writes
                .iter()
                .filter(|w| **w == SpoolWriteChaos::None)
                .count(),
            4
        );
        let reads: Vec<_> = (0..3).map(|_| injector.on_spool_read()).collect();
        assert_eq!(reads, vec![false, true, false]);
        let slices: Vec<_> = (0..6).map(|_| injector.on_slice("t")).collect();
        assert_eq!(slices[3], SliceChaos::Panic);
        assert_eq!(slices[5], SliceChaos::Stall(Duration::from_millis(7)));
        assert!(injector.on_accept() && !injector.on_accept());
        let counts = injector.counts();
        assert_eq!(counts.spool_write_errors, 1);
        assert_eq!(counts.spool_truncations, 1);
        assert_eq!(counts.spool_read_errors, 1);
        assert_eq!(counts.slice_panics, 1);
        assert_eq!(counts.slice_stalls, 1);
        assert_eq!(counts.connection_drops, 1);
    }

    #[test]
    fn poison_tenants_panic_on_every_slice() {
        let plan = ChaosPlan::none().poison_tenant("mal");
        assert!(plan.is_poison("mal"));
        assert!(!plan.is_poison("acme"));
        let injector = ChaosInjector::new(plan);
        for _ in 0..10 {
            assert_eq!(injector.on_slice("mal"), SliceChaos::Panic);
            assert_eq!(injector.on_slice("acme"), SliceChaos::None);
        }
        assert_eq!(injector.counts().slice_panics, 10);
    }

    #[test]
    fn storm_respects_spec_counts() {
        let spec = StormSpec {
            spool_write_errors: 3,
            spool_truncations: 2,
            slice_stalls: 4,
            slice_panics: 1,
            conn_drops: 2,
            ..StormSpec::default()
        };
        let plan = ChaosPlan::storm(11, &spec);
        let fired = |f: &dyn Fn(u64) -> bool, horizon: u64| (0..horizon).filter(|&i| f(i)).count();
        assert!(fired(&|i| plan.spool_read_fault(i), spec.spool_read_horizon) <= 1);
        assert!(fired(&|i| plan.conn_drop_fault(i), spec.conn_horizon) <= 2);
        // Errors and truncations never collide on one index.
        for i in 0..spec.spool_write_horizon {
            let e = matches!(plan.spool_write_fault(i), SpoolWriteChaos::Error);
            let t = matches!(plan.spool_write_fault(i), SpoolWriteChaos::Truncate(_));
            assert!(!(e && t));
        }
    }
}
