//! Seeded fault scripts for the *coarse-grained* (island) model.
//!
//! [`crate::FaultPlan`] scripts faults for a threaded worker *pool* in task
//! counts; an archipelago's failure surface is different: whole islands die
//! (peer churn, Jelasity et al. 2002) and *migration links* misbehave
//! (drop, duplicate, delay, or sever migrant batches). A
//! [`MigrationFaultPlan`] scripts both, keyed by the quantities the island
//! runtime actually counts — generations for island deaths, per-edge batch
//! indices for link faults — so the same seeded description replays
//! identically against the real-thread archipelago and, through the
//! [`MigrationFaultPlan::to_failure_plan`] bridge, against the
//! virtual-time simulator (E18 vs E16 cross-validation).
//!
//! Plans are drawn once (seeded constructors) and then fixed.

use crate::spec::FailurePlan;
use pga_core::{ConfigError, Rng64};
use std::collections::BTreeMap;

/// Fault script for a single island thread.
///
/// `Default` is a healthy island.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IslandFault {
    /// Island panics while evolving its `g`-th generation (1-based):
    /// `Some(1)` panics during the very first step. The panic is caught by
    /// the island's supervisor harness; the injection fires once (a
    /// resurrected island does not re-die at the same generation).
    pub panic_at_generation: Option<u64>,
}

impl IslandFault {
    /// A healthy island: never panics.
    #[must_use]
    pub fn healthy() -> Self {
        Self::default()
    }

    /// `true` when this island has no scripted fault.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.panic_at_generation.is_none()
    }
}

/// Fault script for a single directed migration link.
///
/// Effects are keyed by the 0-based *batch index* on that edge (the number
/// of migration epochs the source island has completed on the edge). When
/// several effects name the same batch the precedence is
/// cut &gt; drop &gt; duplicate &gt; delay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkFault {
    /// Batches suppressed entirely (an empty batch is delivered in their
    /// place so synchronous lockstep is preserved).
    pub drop: Vec<u64>,
    /// Batches delivered twice (the duplicate copies arrive in the same
    /// message, modelling an at-least-once transport).
    pub duplicate: Vec<u64>,
    /// Batches whose migrants are held back one epoch and delivered with
    /// the edge's next batch.
    pub delay: Vec<u64>,
    /// The link is severed after this many batches: batch indices `>= k`
    /// are never delivered (the receiver sees the edge close). A partition
    /// is scripted by cutting every edge between two island groups.
    pub cut_after: Option<u64>,
}

/// What a [`LinkFault`] does to one migrant batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEffect {
    /// Batch travels unharmed.
    Deliver,
    /// Batch is suppressed (empty batch delivered in its place).
    Drop,
    /// Batch is delivered twice.
    Duplicate,
    /// Batch is held back one epoch.
    Delay,
    /// The link is severed at or before this batch.
    Cut,
}

impl LinkFault {
    /// A healthy link: delivers everything exactly once.
    #[must_use]
    pub fn healthy() -> Self {
        Self::default()
    }

    /// `true` when this link has no scripted fault.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.drop.is_empty()
            && self.duplicate.is_empty()
            && self.delay.is_empty()
            && self.cut_after.is_none()
    }

    /// Resolves the effect applied to batch `idx` (0-based) on this link.
    #[must_use]
    pub fn effect(&self, idx: u64) -> LinkEffect {
        if self.cut_after.is_some_and(|k| idx >= k) {
            LinkEffect::Cut
        } else if self.drop.contains(&idx) {
            LinkEffect::Drop
        } else if self.duplicate.contains(&idx) {
            LinkEffect::Duplicate
        } else if self.delay.contains(&idx) {
            LinkEffect::Delay
        } else {
            LinkEffect::Deliver
        }
    }
}

/// Deterministic fault script for a threaded archipelago: one
/// [`IslandFault`] per island plus [`LinkFault`]s on directed topology
/// edges.
///
/// The coarse-grained counterpart of [`crate::FaultPlan`]: drawn once
/// (seeded constructors) and then fixed, so the same plan replayed against
/// the same archipelago yields the same lifecycle trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationFaultPlan {
    islands: Vec<IslandFault>,
    links: BTreeMap<(usize, usize), LinkFault>,
}

impl MigrationFaultPlan {
    /// No faults on `n` islands.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            islands: vec![IslandFault::healthy(); n],
            links: BTreeMap::new(),
        }
    }

    /// Scripts island `island` to panic while evolving generation `g`
    /// (1-based).
    #[must_use]
    pub fn with_island_panic(mut self, island: usize, generation: u64) -> Self {
        if island >= self.islands.len() {
            self.islands.resize(island + 1, IslandFault::healthy());
        }
        self.islands[island].panic_at_generation = Some(generation);
        self
    }

    /// Scripts a fault on the directed edge `from -> to`.
    #[must_use]
    pub fn with_link_fault(mut self, from: usize, to: usize, fault: LinkFault) -> Self {
        self.links.insert((from, to), fault);
        self
    }

    /// Mixed-mode stress plan over a topology's directed edges: each island
    /// beyond island 0 panics with probability ~1/3 somewhere in
    /// `[1, horizon_generations]`, and each edge independently draws a
    /// drop (~1/4), a duplicate (~1/8), a delay (~1/8) or a cut (~1/12)
    /// among its first 8 batches. Island 0 is always spared a terminal
    /// fault so the archipelago keeps at least one survivor.
    #[must_use]
    pub fn random(adjacency: &[Vec<usize>], horizon_generations: u64, seed: u64) -> Self {
        let n = adjacency.len();
        let mut rng = Rng64::new(seed);
        let mut plan = Self::none(n);
        for island in 1..n {
            if rng.next_f64() < 1.0 / 3.0 {
                plan.islands[island].panic_at_generation =
                    Some(1 + rng.next_u64() % horizon_generations.max(1));
            }
        }
        for (from, targets) in adjacency.iter().enumerate() {
            for &to in targets {
                let roll = rng.next_f64();
                let batch = rng.next_u64() % 8;
                let mut fault = LinkFault::healthy();
                if roll < 0.25 {
                    fault.drop.push(batch);
                } else if roll < 0.375 {
                    fault.duplicate.push(batch);
                } else if roll < 0.5 {
                    fault.delay.push(batch);
                } else if roll < 7.0 / 12.0 {
                    fault.cut_after = Some(batch);
                }
                if !fault.is_healthy() {
                    plan.links.insert((from, to), fault);
                }
            }
        }
        plan
    }

    /// Fault script of island `i`.
    #[must_use]
    pub fn island(&self, i: usize) -> &IslandFault {
        &self.islands[i]
    }

    /// Fault script of the directed edge `from -> to`, if any was scripted.
    #[must_use]
    pub fn link(&self, from: usize, to: usize) -> Option<&LinkFault> {
        self.links.get(&(from, to))
    }

    /// Island count covered by the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.islands.len()
    }

    /// `true` when the plan covers zero islands.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.islands.is_empty()
    }

    /// `true` when no island and no link has any scripted fault — the
    /// disabled-equivalent plan under which the resilient threaded runtime
    /// must be bit-identical to the sequential archipelago (sync mode).
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.islands.iter().all(IslandFault::is_healthy)
            && self.links.values().all(LinkFault::is_healthy)
    }

    /// Number of islands scripted to panic.
    #[must_use]
    pub fn panicking_islands(&self) -> usize {
        self.islands.iter().filter(|f| !f.is_healthy()).count()
    }

    /// Number of edges with a scripted link fault.
    #[must_use]
    pub fn faulty_links(&self) -> usize {
        self.links.values().filter(|f| !f.is_healthy()).count()
    }

    /// Validates the plan against an archipelago: every scripted island and
    /// edge must exist in the topology.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] when the plan names an island
    /// `>= n` or an edge absent from `adjacency`.
    pub fn validate(&self, adjacency: &[Vec<usize>]) -> Result<(), ConfigError> {
        let n = adjacency.len();
        if self.islands.len() > n {
            return Err(ConfigError::InvalidParameter {
                name: "fault_plan",
                message: format!(
                    "plan scripts {} islands, topology has {n}",
                    self.islands.len()
                ),
            });
        }
        for &(from, to) in self.links.keys() {
            let ok = from < n && adjacency[from].contains(&to);
            if !ok {
                return Err(ConfigError::InvalidParameter {
                    name: "fault_plan",
                    message: format!("link fault on {from} -> {to}, which is not a topology edge"),
                });
            }
        }
        Ok(())
    }

    /// Projects the island deaths into the simulator's virtual-time failure
    /// model: an island that panics evolving generation `g` is mapped to a
    /// node failing at virtual time `(g - 0.5) * gen_cost_s` (mid-step),
    /// assuming each island evolves back-to-back generations of uniform
    /// cost `gen_cost_s`. Link faults have no node-failure analogue and are
    /// not projected. This is the bridge the E18 cross-validation uses to
    /// replay one churn description against both the threaded archipelago
    /// and the island simulator.
    #[must_use]
    pub fn to_failure_plan(&self, gen_cost_s: f64) -> FailurePlan {
        assert!(gen_cost_s > 0.0, "gen_cost_s must be positive");
        FailurePlan::at(
            self.islands
                .iter()
                .map(|f| {
                    f.panic_at_generation
                        .map(|g| (g as f64 - 0.5).max(0.0) * gen_cost_s)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + 1) % n]).collect()
    }

    #[test]
    fn none_is_benign() {
        let plan = MigrationFaultPlan::none(8);
        assert_eq!(plan.len(), 8);
        assert!(plan.is_benign());
        assert_eq!(plan.panicking_islands(), 0);
        assert_eq!(plan.faulty_links(), 0);
        assert!(plan.validate(&ring(8)).is_ok());
    }

    #[test]
    fn island_panic_and_link_fault_registration() {
        let plan = MigrationFaultPlan::none(4)
            .with_island_panic(2, 30)
            .with_link_fault(
                0,
                1,
                LinkFault {
                    drop: vec![1],
                    ..LinkFault::healthy()
                },
            );
        assert_eq!(plan.island(2).panic_at_generation, Some(30));
        assert_eq!(plan.panicking_islands(), 1);
        assert_eq!(plan.faulty_links(), 1);
        assert!(!plan.is_benign());
        assert!(plan.link(0, 1).is_some());
        assert!(plan.link(1, 0).is_none());
    }

    #[test]
    fn link_effect_precedence() {
        let fault = LinkFault {
            drop: vec![2],
            duplicate: vec![2, 3],
            delay: vec![2, 3, 4],
            cut_after: Some(5),
        };
        assert_eq!(fault.effect(0), LinkEffect::Deliver);
        assert_eq!(fault.effect(2), LinkEffect::Drop);
        assert_eq!(fault.effect(3), LinkEffect::Duplicate);
        assert_eq!(fault.effect(4), LinkEffect::Delay);
        assert_eq!(fault.effect(5), LinkEffect::Cut);
        assert_eq!(fault.effect(99), LinkEffect::Cut);
    }

    #[test]
    fn validate_rejects_non_edges_and_overflow() {
        let plan = MigrationFaultPlan::none(4).with_link_fault(0, 2, LinkFault::healthy());
        assert!(plan.validate(&ring(4)).is_err());
        let plan = MigrationFaultPlan::none(2).with_island_panic(5, 10);
        assert!(plan.validate(&ring(4)).is_err());
    }

    #[test]
    fn random_plan_is_deterministic_and_spares_island_zero() {
        let adj = ring(6);
        let a = MigrationFaultPlan::random(&adj, 40, 9);
        let b = MigrationFaultPlan::random(&adj, 40, 9);
        assert_eq!(a, b);
        assert_ne!(a, MigrationFaultPlan::random(&adj, 40, 10));
        for seed in 0..50 {
            let plan = MigrationFaultPlan::random(&adj, 40, seed);
            assert!(plan.island(0).is_healthy(), "seed {seed}");
            assert!(plan.validate(&adj).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn bridge_places_mid_generation_failures() {
        let plan = MigrationFaultPlan::none(3).with_island_panic(1, 25);
        let virt = plan.to_failure_plan(2.0);
        assert_eq!(virt.fail_time(0), None);
        assert_eq!(virt.fail_time(1), Some(49.0));
        assert_eq!(virt.failing_nodes(), 1);
        assert_eq!(virt.len(), 3);
    }
}
