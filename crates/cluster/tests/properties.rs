//! Property-based invariants of the cluster simulator.

use pga_cluster::{ClusterSpec, EventQueue, FailurePlan, MasterSlaveSim, NetworkProfile};
use proptest::prelude::*;

fn tasks_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..2.0, 1..40)
}

proptest! {
    #[test]
    fn failure_free_batches_complete_everything(
        tasks in tasks_strategy(),
        nodes in 1usize..12,
    ) {
        let sim = MasterSlaveSim::new(
            ClusterSpec::homogeneous(nodes, NetworkProfile::GigabitEthernet).unwrap(),
            FailurePlan::none(nodes),
        );
        let r = sim.run_batch(&tasks);
        prop_assert_eq!(r.completed, tasks.len());
        prop_assert!(r.failed_nodes.is_empty());
        prop_assert_eq!(r.reassignments, 0);
    }

    #[test]
    fn makespan_respects_physical_lower_bounds(
        tasks in tasks_strategy(),
        nodes in 1usize..12,
    ) {
        let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).unwrap();
        let sim = MasterSlaveSim::new(spec.clone(), FailurePlan::none(nodes));
        let r = sim.run_batch(&tasks);
        let total: f64 = tasks.iter().sum();
        let longest = tasks.iter().cloned().fold(0.0f64, f64::max);
        // Work bound and critical-task bound.
        prop_assert!(r.makespan + 1e-9 >= total / spec.total_speed());
        prop_assert!(r.makespan + 1e-9 >= longest);
        // Utilization can never exceed 1.
        prop_assert!(r.utilization(&spec) <= 1.0 + 1e-9);
    }

    #[test]
    fn more_nodes_never_slow_a_batch(
        tasks in tasks_strategy(),
    ) {
        let time = |nodes: usize| {
            MasterSlaveSim::new(
                ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).unwrap(),
                FailurePlan::none(nodes),
            )
            .run_batch(&tasks)
            .makespan
        };
        let t1 = time(1);
        let t4 = time(4);
        let t8 = time(8);
        prop_assert!(t4 <= t1 + 1e-9);
        prop_assert!(t8 <= t4 + 1e-9);
    }

    #[test]
    fn faster_cluster_is_never_slower(
        tasks in tasks_strategy(),
        speed in 1.0f64..8.0,
    ) {
        let base = MasterSlaveSim::new(
            ClusterSpec { speeds: vec![1.0; 4], network: NetworkProfile::SharedMemory },
            FailurePlan::none(4),
        )
        .run_batch(&tasks)
        .makespan;
        let fast = MasterSlaveSim::new(
            ClusterSpec { speeds: vec![speed; 4], network: NetworkProfile::SharedMemory },
            FailurePlan::none(4),
        )
        .run_batch(&tasks)
        .makespan;
        prop_assert!(fast <= base + 1e-9);
        prop_assert!((fast * speed - base).abs() < 1e-6 * base.max(1.0));
    }

    #[test]
    fn failures_only_ever_add_time_and_reassignments(
        tasks in tasks_strategy(),
        fail_at in 0.01f64..5.0,
    ) {
        let healthy = MasterSlaveSim::new(
            ClusterSpec::homogeneous(3, NetworkProfile::SharedMemory).unwrap(),
            FailurePlan::none(3),
        )
        .run_batch(&tasks);
        let faulty = MasterSlaveSim::new(
            ClusterSpec::homogeneous(3, NetworkProfile::SharedMemory).unwrap(),
            FailurePlan::at(vec![Some(fail_at), None, None]),
        )
        .run_batch(&tasks);
        // Two survivors still finish everything.
        prop_assert_eq!(faulty.completed, tasks.len());
        prop_assert!(faulty.makespan + 1e-9 >= healthy.makespan);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1000.0, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some((t, _)) = q.next() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn exponential_plan_is_deterministic(n in 1usize..64, seed in any::<u64>()) {
        let a = FailurePlan::exponential(n, 10.0, 100.0, seed).unwrap();
        let b = FailurePlan::exponential(n, 10.0, 100.0, seed).unwrap();
        for i in 0..n {
            prop_assert_eq!(a.fail_time(i), b.fail_time(i));
        }
    }
}
