//! Regression gate for the simulator's node-count ceiling.
//!
//! Dispatch used to find targets with per-task linear scans, making a
//! batch of `k·n` tasks O(k·n²): fine at 64 nodes, hopeless at 4 096+.
//! With `NodeIndex`/`MinTimeIndex` the only per-task cost that still
//! grows with cluster size is the event queue's O(log n) depth (one
//! in-flight event per node), so total dispatch cost is O(tasks·log n)
//! — quasilinear. The gates below encode exactly that shape: log-bounded
//! growth across the full 64 → 4 096 sweep, and locally-linear cost over
//! the 1 024 → 4 096 quadrupling where a quadratic term would already
//! show up 4×. The old scans fail these gates by ~40×, so the generous
//! noise margins cannot mask a regression.

use pga_cluster::{AsyncDispatchSim, ClusterSpec, FailurePlan, MasterSlaveSim, NetworkProfile};
use std::hint::black_box;
use std::time::Instant;

/// Median-of-`samples` per-task nanoseconds for a full batch dispatch
/// (assignment, event queue, completion) at `nodes` nodes.
fn batch_per_task_ns(nodes: usize, samples: usize) -> f64 {
    let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).expect("nodes > 0");
    let sim = MasterSlaveSim::new(spec, FailurePlan::none(nodes)).with_trace(false);
    let tasks = vec![1e-3; nodes * 4];
    // Equal total work per sample regardless of node count.
    let reps = (1usize << 16).div_ceil(tasks.len());
    let warm = sim.run_batch(&tasks);
    assert_eq!(warm.completed, tasks.len(), "sanity: batch completes");
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                black_box(sim.run_batch(black_box(&tasks)));
            }
            start.elapsed().as_nanos() as f64 / (reps * tasks.len()) as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median-of-`samples` per-task nanoseconds for the streaming greedy
/// dispatch loop (`earliest_free_node` + `dispatch`) at `nodes` nodes.
fn async_per_task_ns(nodes: usize, samples: usize) -> f64 {
    let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).expect("nodes > 0");
    let total = (nodes * 4).max(1 << 14);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut sim = AsyncDispatchSim::new(spec.clone());
            let mut now = 0.0f64;
            let start = Instant::now();
            for _ in 0..total {
                let (node, free) = sim.earliest_free_node();
                now = now.max(free);
                black_box(sim.dispatch(node, 1e-3, now));
            }
            start.elapsed().as_nanos() as f64 / total as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

#[test]
fn batch_dispatch_cost_is_near_linear_from_64_to_4096_nodes() {
    let small = batch_per_task_ns(64, 5);
    let mid = batch_per_task_ns(1024, 5);
    let large = batch_per_task_ns(4096, 5);
    // Full-sweep gate: the only admissible growth is the event queue's
    // O(log n) depth, so 64 -> 4096 (64x nodes) may at most triple the
    // per-task cost. The old per-node scans are ~40x here.
    let sweep = large / small;
    assert!(
        sweep <= 3.0,
        "per-task batch dispatch grew {sweep:.2}x from 64 to 4096 nodes \
         ({small:.0} ns -> {large:.0} ns); dispatch must stay quasilinear"
    );
    // Locally-linear gate: quadrupling 1024 -> 4096 must stay within
    // 1.5x linear extrapolation (a surviving O(n) scan term would show
    // up as ~4x; log-depth growth over this quadrupling is ~1.2x).
    let local = large / mid;
    assert!(
        local <= 1.5,
        "per-task batch dispatch grew {local:.2}x from 1024 to 4096 nodes \
         ({mid:.0} ns -> {large:.0} ns); dispatch must stay near-linear at scale"
    );
}

#[test]
fn streaming_dispatch_cost_stays_logarithmic_to_4096_nodes() {
    let small = async_per_task_ns(64, 5);
    let large = async_per_task_ns(4096, 5);
    let ratio = large / small;
    // The ordered index is O(log n): 64 -> 4096 nodes may double the
    // tree depth but no more. The old linear scan is ~40x here.
    assert!(
        ratio <= 3.0,
        "per-task streaming dispatch grew {ratio:.2}x from 64 to 4096 nodes \
         ({small:.0} ns -> {large:.0} ns); earliest-node lookup must stay indexed"
    );
}

#[test]
fn ten_thousand_node_batch_completes_quickly() {
    // The headline capability: a 10 000-node batch, four waves of tasks,
    // finishes in interactive time (the scan-based dispatcher took
    // minutes here).
    let nodes = 10_000;
    let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::GigabitEthernet).expect("nodes");
    let sim = MasterSlaveSim::new(spec, FailurePlan::none(nodes)).with_trace(false);
    let tasks = vec![1e-2; nodes * 4];
    let start = Instant::now();
    let report = sim.run_batch(&tasks);
    assert_eq!(report.completed, tasks.len());
    assert!(
        start.elapsed().as_secs_f64() < 30.0,
        "10k-node batch took {:?}",
        start.elapsed()
    );
}
