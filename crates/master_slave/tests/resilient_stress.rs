//! Fault-injection stress suite for [`ResilientEvaluator`].
//!
//! Hammers the runtime with seeded random [`FaultPlan`]s (silent deaths,
//! panics, stragglers) under deliberately aggressive deadlines and asserts
//! the three load-bearing guarantees:
//!
//! 1. **No lost task** — every unevaluated member comes back with exactly
//!    the fitness the serial evaluator would assign (exactly-once, pure
//!    fitness ⇒ bit-identical to serial regardless of faults).
//! 2. **No hang** — every batch completes (enforced by the harness: the
//!    verify gate runs this suite under a timeout guard).
//! 3. **Monotone completion accounting** — lifetime counters only grow,
//!    and per-batch `completed + master_inline` exactly covers the fresh
//!    work of that batch.

use pga_cluster::FaultPlan;
use pga_core::{Evaluator, Individual, Objective, Problem, Rng64, SerialEvaluator};
use pga_master_slave::ResilientEvaluator;
use std::time::Duration;

struct OneMax(usize);

impl Problem for OneMax {
    type Genome = pga_core::BitString;
    fn name(&self) -> String {
        "onemax".into()
    }
    fn objective(&self) -> Objective {
        Objective::Maximize
    }
    fn evaluate(&self, g: &pga_core::BitString) -> f64 {
        g.count_ones() as f64
    }
    fn random_genome(&self, rng: &mut Rng64) -> pga_core::BitString {
        pga_core::BitString::random(self.0, rng)
    }
    fn optimum(&self) -> Option<f64> {
        Some(self.0 as f64)
    }
}

fn random_members(n: usize, bits: usize, seed: u64) -> Vec<Individual<pga_core::BitString>> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|_| Individual::unevaluated(pga_core::BitString::random(bits, &mut rng)))
        .collect()
}

/// One batch against one plan; asserts bit-identical results vs serial and
/// exact completion accounting. Returns the evaluator's lifetime stats.
fn run_batch(
    workers: usize,
    plan: FaultPlan,
    batch_size: usize,
    seed: u64,
) -> pga_master_slave::ResilientStats {
    let problem = OneMax(48);
    let mut expected = random_members(batch_size, 48, seed);
    SerialEvaluator.evaluate_batch(&problem, &mut expected);

    let eval = ResilientEvaluator::builder(OneMax(48), workers)
        .task_deadline(Duration::from_millis(5))
        .heartbeat_interval(Duration::from_millis(2))
        .heartbeat_timeout(Duration::from_millis(8))
        .backoff_base(Duration::from_micros(100))
        .fault_plan(plan)
        .build()
        .expect("valid stress configuration");

    let mut members = random_members(batch_size, 48, seed);
    let fresh = eval.evaluate_batch(&problem, &mut members);
    assert_eq!(fresh, batch_size as u64, "every member evaluated fresh");
    for (i, (got, want)) in members.iter().zip(&expected).enumerate() {
        assert_eq!(
            got.fitness(),
            want.fitness(),
            "member {i} diverged from serial"
        );
    }

    let stats = eval.stats();
    assert_eq!(
        stats.completed + stats.master_inline,
        batch_size as u64,
        "worker completions + inline fallbacks must cover the batch exactly"
    );
    stats
}

#[test]
fn survives_repeated_random_fault_plans() {
    for seed in 0..12 {
        for &workers in &[2usize, 4, 8] {
            let plan = FaultPlan::random(workers, seed);
            run_batch(workers, plan, 64, seed ^ 0x5EED);
        }
    }
}

#[test]
fn survives_all_terminal_workers() {
    // Every worker dies or panics almost immediately: the master must
    // degrade to inline evaluation and still complete the batch.
    let faults = (0..4)
        .map(|w| pga_cluster::WorkerFault {
            die_on_task: (w % 2 == 0).then_some(0),
            panic_on_task: (w % 2 == 1).then_some(0),
            delay_per_task: Duration::ZERO,
        })
        .collect();
    let stats = run_batch(4, FaultPlan::at(faults), 40, 99);
    assert!(stats.master_inline > 0, "inline fallback must have fired");
    assert_eq!(stats.quarantined, 4, "all four workers written off");
}

#[test]
fn lifetime_stats_grow_monotonically_across_batches() {
    let problem = OneMax(48);
    let eval = ResilientEvaluator::builder(OneMax(48), 4)
        .task_deadline(Duration::from_millis(5))
        .heartbeat_interval(Duration::from_millis(2))
        .heartbeat_timeout(Duration::from_millis(8))
        .fault_plan(FaultPlan::random(4, 7))
        .build()
        .expect("valid configuration");

    let mut done_so_far = 0u64;
    let mut prev = eval.stats();
    for batch in 0..6 {
        let mut members = random_members(32, 48, 1000 + batch);
        let fresh = eval.evaluate_batch(&problem, &mut members);
        assert_eq!(fresh, 32);
        assert!(members.iter().all(|m| m.fitness.is_some()));

        let stats = eval.stats();
        assert_eq!(stats.batches, batch + 1);
        done_so_far += 32;
        assert_eq!(stats.completed + stats.master_inline, done_so_far);
        // Monotone: no counter ever decreases.
        assert!(stats.dispatched >= prev.dispatched);
        assert!(stats.completed >= prev.completed);
        assert!(stats.retries >= prev.retries);
        assert!(stats.reassignments >= prev.reassignments);
        assert!(stats.quarantined >= prev.quarantined);
        assert!(stats.master_inline >= prev.master_inline);
        prev = stats;
    }
}

#[test]
fn benign_plan_matches_serial_across_worker_counts() {
    // Empty plan ⇒ the evaluator is a drop-in for SerialEvaluator at any
    // worker count (the acceptance determinism contract).
    let problem = OneMax(48);
    let mut expected = random_members(128, 48, 424242);
    SerialEvaluator.evaluate_batch(&problem, &mut expected);
    for &workers in &[1usize, 2, 8] {
        let eval = ResilientEvaluator::builder(OneMax(48), workers)
            .build()
            .expect("valid configuration");
        let mut members = random_members(128, 48, 424242);
        assert_eq!(eval.evaluate_batch(&problem, &mut members), 128);
        for (got, want) in members.iter().zip(&expected) {
            assert_eq!(got.fitness(), want.fitness());
        }
        let stats = eval.stats();
        assert_eq!(stats.completed, 128);
        assert_eq!(stats.master_inline, 0);
    }
}
