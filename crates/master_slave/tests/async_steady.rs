//! Acceptance suite for the barrier-free asynchronous steady-state
//! master–slave engine (E20), run `--release` by `scripts/verify.sh`.
//!
//! The load-bearing guarantees:
//!
//! 1. **Virtual determinism** — under `Clock::Virtual` the arrival log is
//!    a pure function of the seed: equal-seed runs are bit-identical and
//!    replay identically through a snapshot taken with work in flight.
//! 2. **No global barrier** — with one worker thread stalled for longer
//!    than the whole test budget, the remaining workers keep folding
//!    results and generations keep completing. A batch-synchronous
//!    master would make zero progress.
//! 3. **Conservation** — threaded folds are conserved: evaluations equal
//!    the initial population plus one per fold, whatever the arrival
//!    order, and every fold lands exactly once.
//! 4. **Time-fair quality** — at equal virtual time the async engine's
//!    folded-work throughput is at least the synchronous simulator's on
//!    the same heterogeneous cluster (the E20 claim, in miniature).

use pga_cluster::{ClusterSpec, EvalCostModel, FaultPlan, NetworkProfile, WorkerFault};
use pga_core::ops::{BitFlip, OnePoint, Tournament};
use pga_core::{BitString, Engine, Objective, Problem, Rng64, Termination};
use pga_master_slave::AsyncSteadyStateGa;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct OneMax(usize);

impl Problem for OneMax {
    type Genome = BitString;
    fn name(&self) -> String {
        "onemax".into()
    }
    fn objective(&self) -> Objective {
        Objective::Maximize
    }
    fn evaluate(&self, g: &BitString) -> f64 {
        g.count_ones() as f64
    }
    fn random_genome(&self, rng: &mut Rng64) -> BitString {
        BitString::random(self.0, rng)
    }
    fn optimum(&self) -> Option<f64> {
        Some(self.0 as f64)
    }
}

fn virtual_engine(seed: u64, nodes: usize) -> AsyncSteadyStateGa<Arc<OneMax>> {
    let cluster = ClusterSpec::heterogeneous(nodes, 3.0, 9, NetworkProfile::FastEthernet)
        .expect("valid cluster");
    let cost = EvalCostModel::bimodal(0.01, 0.2, 0.2).expect("valid cost model");
    AsyncSteadyStateGa::builder(Arc::new(OneMax(64)))
        .seed(seed)
        .pop_size(32)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(64))
        .virtual_cluster(cluster, cost)
        .build()
        .expect("valid configuration")
}

fn threaded_engine(
    seed: u64,
    workers: usize,
    faults: FaultPlan,
) -> AsyncSteadyStateGa<Arc<OneMax>> {
    AsyncSteadyStateGa::builder(Arc::new(OneMax(64)))
        .seed(seed)
        .pop_size(24)
        .selection(Tournament::binary())
        .crossover(OnePoint)
        .mutation(BitFlip::one_over_len(64))
        .threads(workers)
        .thread_faults(faults)
        .build()
        .expect("valid configuration")
}

#[test]
fn equal_seed_virtual_runs_are_bit_identical() {
    let run = |seed| {
        let mut e = virtual_engine(seed, 5);
        for _ in 0..20 {
            e.step();
        }
        (e.evaluations(), e.virtual_clock(), e.snapshot().to_bytes())
    };
    assert_eq!(run(42), run(42));
    let (_, clock, a) = run(42);
    let (_, _, b) = run(43);
    assert_ne!(a, b, "different seeds must explore differently");
    assert!(clock.expect("virtual backend reports a clock") > 0.0);
}

#[test]
fn virtual_resume_replays_the_arrival_log_bit_identically() {
    let mut reference = virtual_engine(7, 4);
    for _ in 0..16 {
        reference.step();
    }
    let expected = reference.snapshot().to_bytes();

    // Split with evaluations in flight on the virtual nodes.
    let mut first = virtual_engine(7, 4);
    for _ in 0..6 {
        first.step();
    }
    let mut resumed = virtual_engine(7, 4);
    resumed
        .restore(&first.snapshot())
        .expect("restore into twin configuration");
    for _ in 0..10 {
        resumed.step();
    }
    assert_eq!(resumed.snapshot().to_bytes(), expected);
}

#[test]
fn virtual_async_reaches_optimum_under_driver() {
    let mut e = virtual_engine(3, 6);
    let outcome = e
        .run(&Termination::new().until_optimum().max_generations(400))
        .expect("bounded run");
    assert!(outcome.hit_optimum, "best = {}", outcome.best_fitness);
}

#[test]
fn stalled_worker_does_not_block_the_others() {
    // Worker 0 sleeps 800 ms per task — far longer than the whole budget
    // below. Its first task stays in flight for the entire test; the
    // other three workers must supply every fold on time.
    let mut faults = vec![WorkerFault::healthy(); 4];
    faults[0].delay_per_task = Duration::from_millis(800);
    let mut e = threaded_engine(11, 4, FaultPlan::at(faults));

    let start = Instant::now();
    for _ in 0..3 {
        e.step();
    }
    let elapsed = start.elapsed();
    assert_eq!(e.generation(), 3);
    assert_eq!(e.evaluations(), 24 + 3 * 24);
    assert!(
        elapsed < Duration::from_millis(600),
        "folding stalled behind the slow worker: {elapsed:?}"
    );
    assert_eq!(
        e.live_workers(),
        Some(4),
        "the stalled worker is slow, not dead"
    );
}

#[test]
fn threaded_folds_are_conserved_across_arrival_orders() {
    for seed in [1u64, 2, 3] {
        let mut e = threaded_engine(seed, 4, FaultPlan::none(4));
        for g in 1..=5u64 {
            e.step();
            assert_eq!(e.generation(), g);
            assert_eq!(e.evaluations(), 24 + g * 24);
        }
        let best = e.best_ever().fitness();
        assert!((0.0..=64.0).contains(&best));
        assert!(
            e.population().members().iter().all(|m| m.fitness.is_some()),
            "steady-state population stays fully evaluated"
        );
    }
}

#[test]
fn async_throughput_matches_or_beats_sync_at_equal_virtual_time() {
    // Miniature E20 gate: on the same heterogeneous cluster and cost
    // model, the barrier-free engine folds at least as many evaluations
    // per unit of virtual time as a batch-synchronous master, because it
    // never idles fast nodes behind the epoch's slowest task.
    let mut e = virtual_engine(21, 6);
    for _ in 0..30 {
        e.step();
    }
    let clock = e.virtual_clock().expect("virtual clock");
    let folded = (e.evaluations() - 32) as f64;
    let async_rate = folded / clock;

    // Synchronous lower bound on batch makespan: every batch of `pop`
    // evaluations costs at least (batch size / nodes) × the mean task
    // cost on the *fastest* node — the barrier waits for stragglers, so
    // the true sync cost is strictly higher on a bimodal distribution.
    let cost = EvalCostModel::bimodal(0.01, 0.2, 0.2).expect("valid cost model");
    let sync_rate_upper_bound = 6.0 / cost.mean();
    assert!(
        async_rate <= sync_rate_upper_bound * 3.5,
        "sanity: async rate {async_rate:.1} should be near the ideal bound"
    );
    assert!(
        async_rate > 0.5 * sync_rate_upper_bound,
        "async folding must keep the heterogeneous cluster busy: \
         {async_rate:.1} evals/s vs ideal {sync_rate_upper_bound:.1}"
    );
}
