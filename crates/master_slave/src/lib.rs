//! # pga-master-slave
//!
//! The **global** parallelization model of the survey (§1.2's "data
//! parallelism", Grefenstette's types 1–3, Bethke 1976): a single panmictic
//! population whose fitness evaluations are farmed out to workers. Search
//! behaviour is *identical* to the sequential GA — only wall-clock time
//! changes — which is exactly why Gagné et al. (2003) call it superior on
//! unreliable, heterogeneous hardware: losing a worker loses time, never
//! search state.
//!
//! Execution substrates:
//!
//! * [`RayonEvaluator`] — real shared-memory parallelism on a rayon pool
//!   (plugs into [`pga_core::Ga`] through the [`pga_core::Evaluator`] seam);
//! * [`ResilientEvaluator`] — real threads with the fault tolerance of
//!   Gagné et al. (2003): per-task deadlines, heartbeats, retry/backoff,
//!   quarantine, and graceful degradation under a seeded
//!   [`pga_cluster::FaultPlan`];
//! * [`SimulatedMasterSlaveGa`] — the same evolution driven against the
//!   `pga-cluster` discrete-event simulator, with a persistent virtual clock
//!   and hard node failures, for cluster-scale experiments (E02/E07).
//!
//! All three of those are *synchronous*: the master waits for a whole batch
//! before touching the population. [`AsyncSteadyStateGa`] removes that
//! barrier — results fold into a steady-state population as they arrive,
//! over either the streaming cluster simulator (deterministic, virtual
//! clock) or the resilient worker threads (real arrival order). E20
//! compares the two regimes at equal time.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod async_steady;
pub mod expensive;
pub mod rayon_eval;
pub mod resilient;
pub mod simulated;

pub use async_steady::{AsyncSteadyBuilder, AsyncSteadyStateGa};
pub use expensive::ExpensiveFitness;
pub use rayon_eval::RayonEvaluator;
pub use resilient::{ResilientBuilder, ResilientEvaluator, ResilientStats};
pub use simulated::{SimulatedMasterSlaveGa, VirtualRunReport};
