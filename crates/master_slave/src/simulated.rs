//! Master–slave evolution against the simulated cluster.
//!
//! The GA's *search* runs for real (fitness values are exact); only *time*
//! is simulated: each generation's evaluation batch is dispatched through
//! [`MasterSlaveSim`] with a persistent virtual clock, so node failures from
//! a [`FailurePlan`] hit mid-run, cost reassignments, and degrade capacity —
//! but never corrupt the population. This is the fault-tolerance claim of
//! Gagné et al. (2003) reproduced as experiment E07.

use pga_cluster::{ClusterSpec, FailurePlan, MasterSlaveSim};
use pga_core::{
    Clock, ConfigError, Driver, Engine, Evaluator, Ga, Individual, Problem, Progress, Snapshot,
    SnapshotError, SnapshotWriter, StepReport, StopReason, Termination,
};
use pga_observe::{Event, EventKind, Recorder, Time};
use std::time::Duration;

/// Outcome of a virtual-clock master–slave run.
#[derive(Clone, Debug)]
pub struct VirtualRunReport {
    /// Final virtual time (seconds) when the run finished.
    pub virtual_seconds: f64,
    /// Generations completed.
    pub generations: u64,
    /// Real fitness evaluations performed.
    pub evaluations: u64,
    /// Best fitness reached.
    pub best_fitness: f64,
    /// Total task reassignments caused by failures.
    pub reassignments: usize,
    /// Nodes dead by the end of the run.
    pub dead_nodes: usize,
    /// `true` when the run hit the problem optimum.
    pub hit_optimum: bool,
    /// `true` when every node died before the generation budget.
    pub cluster_died: bool,
}

/// Drives a [`Ga`] while accounting evaluation time on a simulated cluster.
pub struct SimulatedMasterSlaveGa<P: Problem, E: Evaluator<P>> {
    ga: Ga<P, E>,
    sim: MasterSlaveSim,
    eval_cost_s: f64,
    clock: f64,
    reassignments: usize,
    cluster_size: usize,
    recorder: Option<Box<dyn Recorder>>,
    node_failure_seen: Vec<bool>,
    batch: u64,
    halted: bool,
}

impl<P: Problem, E: Evaluator<P>> SimulatedMasterSlaveGa<P, E> {
    /// Wraps an engine. `eval_cost_s` is the cost of one fitness evaluation
    /// on a speed-1.0 node; the initial population's evaluation is charged
    /// immediately.
    ///
    /// # Errors
    /// Rejects a non-positive `eval_cost_s`.
    pub fn new(
        ga: Ga<P, E>,
        spec: ClusterSpec,
        failures: FailurePlan,
        eval_cost_s: f64,
    ) -> Result<Self, ConfigError> {
        Self::build(ga, spec, failures, eval_cost_s, None)
    }

    /// Like [`new`](Self::new), but every batch, failure, and reassignment
    /// is reported to `recorder` as sim-time-stamped events. The recorder is
    /// attached *before* the initial population's evaluation is charged, so
    /// the trace covers the whole virtual timeline.
    ///
    /// # Errors
    /// Rejects a non-positive `eval_cost_s`.
    pub fn new_with_recorder(
        ga: Ga<P, E>,
        spec: ClusterSpec,
        failures: FailurePlan,
        eval_cost_s: f64,
        recorder: impl Recorder + 'static,
    ) -> Result<Self, ConfigError> {
        Self::build(ga, spec, failures, eval_cost_s, Some(Box::new(recorder)))
    }

    fn build(
        ga: Ga<P, E>,
        spec: ClusterSpec,
        failures: FailurePlan,
        eval_cost_s: f64,
        recorder: Option<Box<dyn Recorder>>,
    ) -> Result<Self, ConfigError> {
        if eval_cost_s <= 0.0 || !eval_cost_s.is_finite() {
            return Err(ConfigError::InvalidParameter {
                name: "eval_cost_s",
                message: format!("evaluation cost must be positive, got {eval_cost_s}"),
            });
        }
        let cluster_size = spec.len();
        let sim = MasterSlaveSim::new(spec, failures);
        let initial_evals = ga.evaluations();
        let mut s = Self {
            ga,
            sim,
            eval_cost_s,
            clock: 0.0,
            reassignments: 0,
            cluster_size,
            recorder,
            node_failure_seen: vec![false; cluster_size],
            batch: 0,
            halted: false,
        };
        s.emit(Time::Sim(0.0), |ga| EventKind::RunStarted {
            island: 0,
            engine: "master-slave-sim".into(),
            problem: ga.problem().name(),
            seed: ga.seed(),
        });
        s.charge_batch(initial_evals);
        Ok(s)
    }

    fn emit(&mut self, time: Time, kind: impl FnOnce(&Ga<P, E>) -> EventKind) {
        if let Some(rec) = &mut self.recorder {
            rec.record(&Event::at(time, kind(&self.ga)));
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The wrapped engine.
    #[must_use]
    pub fn ga(&self) -> &Ga<P, E> {
        &self.ga
    }

    fn charge_batch(&mut self, evals: u64) -> bool {
        if evals == 0 {
            return true;
        }
        let start = self.clock;
        let tasks = vec![self.eval_cost_s; evals as usize];
        let report = self.sim.run_batch_at(self.clock, &tasks);
        self.clock = report.makespan;
        self.reassignments += report.reassignments;
        if self.recorder.is_some() {
            // `run_batch_at` drains its whole event queue, so a node that
            // fails at absolute time T shows up in the trace of every batch
            // started before T, including batches that finish before T is
            // reached. Report each failure once, and only after the virtual
            // clock has actually passed it.
            for event in pga_cluster::observe_events(&report.trace) {
                if let EventKind::NodeFailed { node } = event.kind {
                    if let Time::Sim(t) = event.time {
                        if t > self.clock {
                            continue;
                        }
                    }
                    let seen = &mut self.node_failure_seen[node as usize];
                    if *seen {
                        continue;
                    }
                    *seen = true;
                }
                if let Some(rec) = &mut self.recorder {
                    rec.record(&event);
                }
            }
            self.batch += 1;
            let batch = self.batch;
            let micros = ((self.clock - start) * 1e6).round() as u64;
            self.emit(Time::Sim(self.clock), |_| EventKind::EvaluationBatch {
                island: 0,
                batch,
                size: evals,
                fresh: report.completed as u64,
                micros,
            });
        }
        report.completed == evals as usize
    }

    /// Advances one generation, charging its evaluations to the virtual
    /// clock. When the cluster can no longer complete a batch (all nodes
    /// dead) the engine marks itself halted — see [`Engine::halted`].
    pub fn step(&mut self) -> StepReport {
        let before = self.ga.evaluations();
        let stats = self.ga.step();
        let evals = self.ga.evaluations() - before;
        if !self.charge_batch(evals) {
            self.halted = true;
        }
        self.emit(Time::Sim(self.clock), |_| EventKind::GenerationCompleted {
            island: 0,
            generation: stats.generation,
            evaluations: stats.evaluations,
            best: stats.best,
            mean: stats.mean,
            best_ever: stats.best_ever,
        });
        stats
    }

    /// Nodes dead at the current virtual time.
    #[must_use]
    pub fn dead_nodes(&self) -> usize {
        (0..self.cluster_size)
            .filter(|&i| self.sim.failure_time(i).is_some_and(|t| t <= self.clock))
            .count()
    }

    /// Runs under `termination` through the shared [`Driver`]. The engine
    /// reports a [`Clock::Virtual`] time base, so wall-clock budgets
    /// (`max_wall_clock`) fire on *simulated* seconds, not host time.
    /// Total cluster death surfaces as [`StopReason::Halted`] /
    /// [`VirtualRunReport::cluster_died`].
    ///
    /// # Errors
    /// [`ConfigError::UnboundedTermination`] when `termination` has no
    /// criteria.
    pub fn run(mut self, termination: &Termination) -> Result<VirtualRunReport, ConfigError> {
        let outcome = Driver::new(termination.clone()).run(&mut self)?;
        Ok(VirtualRunReport {
            virtual_seconds: self.clock,
            generations: self.ga.generation(),
            evaluations: self.ga.evaluations(),
            best_fitness: outcome.best_fitness,
            reassignments: self.reassignments,
            dead_nodes: self.dead_nodes(),
            hit_optimum: outcome.hit_optimum,
            cluster_died: outcome.stop == StopReason::Halted,
        })
    }
}

impl<P: Problem, E: Evaluator<P>> Engine for SimulatedMasterSlaveGa<P, E> {
    type Best = Individual<P::Genome>;

    fn engine_id(&self) -> &'static str {
        "master-slave-sim"
    }

    fn step(&mut self) -> StepReport {
        SimulatedMasterSlaveGa::step(self)
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        // The inner Ga tracks search progress; only the time base differs.
        Engine::progress(&self.ga, elapsed)
    }

    fn best(&self) -> Individual<P::Genome> {
        self.ga.best_ever().clone()
    }

    fn clock(&self) -> Clock {
        Clock::Virtual(Duration::from_secs_f64(self.clock))
    }

    fn halted(&self) -> bool {
        self.halted
    }

    // `record_run_started` stays the default no-op: the sim emits its
    // `RunStarted` at construction, before the initial batch is charged.

    fn record_run_finished(&mut self) {
        let best = self.ga.best_ever().fitness();
        self.emit(Time::Sim(self.clock), |ga| EventKind::RunFinished {
            island: 0,
            generations: ga.generation(),
            evaluations: ga.evaluations(),
            best,
            hit_optimum: ga.problem().is_optimal(best),
        });
        if let Some(rec) = &mut self.recorder {
            rec.flush();
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapshotWriter::new();
        let nested = Engine::snapshot(&self.ga);
        w.put_str(nested.engine());
        w.put_bytes(nested.payload());
        w.put_f64(self.clock);
        w.put_u64(self.reassignments as u64);
        w.put_u64(self.batch);
        w.put_bool(self.halted);
        w.put_usize(self.node_failure_seen.len());
        for &seen in &self.node_failure_seen {
            w.put_bool(seen);
        }
        Snapshot::new(self.engine_id(), w.into_bytes())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = snapshot.reader_for(self.engine_id())?;
        let engine = r.take_str()?;
        let payload = r.take_bytes()?.to_vec();
        let clock = r.take_f64()?;
        let reassignments = r.take_u64()?;
        let batch = r.take_u64()?;
        let halted = r.take_bool()?;
        let n = r.take_usize()?;
        if n != self.cluster_size {
            return Err(SnapshotError::Invalid(format!(
                "snapshot has {n} nodes, cluster has {}",
                self.cluster_size
            )));
        }
        let mut node_failure_seen = Vec::with_capacity(n);
        for _ in 0..n {
            node_failure_seen.push(r.take_bool()?);
        }
        r.finish()?;
        Engine::restore(&mut self.ga, &Snapshot::new(engine, payload))?;
        self.clock = clock;
        self.reassignments = reassignments as usize;
        self.batch = batch;
        self.halted = halted;
        self.node_failure_seen = node_failure_seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_cluster::NetworkProfile;
    use pga_core::ops::{BitFlip, OnePoint, Tournament};
    use pga_core::{BitString, Objective, Rng64, Scheme};

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    fn stop(max_generations: u64) -> Termination {
        Termination::new()
            .until_optimum()
            .max_generations(max_generations)
    }

    fn engine(seed: u64) -> Ga<OneMax> {
        Ga::builder(OneMax(32))
            .seed(seed)
            .pop_size(30)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(32))
            .scheme(Scheme::Generational { elitism: 1 })
            .build()
            .unwrap()
    }

    #[test]
    fn more_nodes_finish_faster_in_virtual_time() {
        let run = |nodes: usize| {
            let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).unwrap();
            SimulatedMasterSlaveGa::new(engine(1), spec, FailurePlan::none(nodes), 0.01)
                .unwrap()
                .run(&stop(50))
                .unwrap()
        };
        let one = run(1);
        let eight = run(8);
        // Identical search (same seed), so same generations/evaluations...
        assert_eq!(one.generations, eight.generations);
        assert_eq!(one.evaluations, eight.evaluations);
        assert_eq!(one.best_fitness, eight.best_fitness);
        // ...but ~8x less virtual time.
        let speedup = one.virtual_seconds / eight.virtual_seconds;
        assert!(speedup > 6.0, "speedup {speedup}");
    }

    #[test]
    fn failures_slow_but_do_not_corrupt_search() {
        let nodes = 8;
        let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).unwrap();
        // Half the nodes die early.
        let failures = FailurePlan::at(vec![
            Some(0.1),
            Some(0.2),
            Some(0.3),
            Some(0.4),
            None,
            None,
            None,
            None,
        ]);
        let faulty = SimulatedMasterSlaveGa::new(engine(2), spec.clone(), failures, 0.01)
            .unwrap()
            .run(&stop(50))
            .unwrap();
        let healthy = SimulatedMasterSlaveGa::new(engine(2), spec, FailurePlan::none(nodes), 0.01)
            .unwrap()
            .run(&stop(50))
            .unwrap();
        // Search result identical (same seed, search unaffected by failures).
        assert_eq!(faulty.best_fitness, healthy.best_fitness);
        assert_eq!(faulty.generations, healthy.generations);
        // But the faulty run is slower and saw reassignments.
        assert!(faulty.virtual_seconds > healthy.virtual_seconds);
        assert_eq!(faulty.dead_nodes, 4);
        assert!(!faulty.cluster_died);
    }

    #[test]
    fn faulty_run_traces_each_failure_once() {
        use pga_observe::RingRecorder;
        let nodes = 8;
        let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::SharedMemory).unwrap();
        let failures = FailurePlan::at(vec![
            Some(0.1),
            Some(0.2),
            Some(0.3),
            Some(0.4),
            None,
            None,
            None,
            None,
        ]);
        let ring = RingRecorder::new(100_000);
        let report = SimulatedMasterSlaveGa::new_with_recorder(
            engine(2),
            spec,
            failures,
            0.01,
            ring.clone(),
        )
        .unwrap()
        .run(&stop(50))
        .unwrap();
        let events = ring.events();
        assert_eq!(events.first().unwrap().kind.name(), "run_started");
        assert_eq!(events.last().unwrap().kind.name(), "run_finished");
        assert!(
            events.iter().all(|e| matches!(e.time, Time::Sim(_))),
            "every event must carry a simulated timestamp"
        );
        let failed: Vec<u32> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::NodeFailed { node } => Some(node),
                _ => None,
            })
            .collect();
        assert_eq!(failed.len(), report.dead_nodes, "one event per dead node");
        let mut unique = failed.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), failed.len(), "duplicate NodeFailed events");
        let requeues = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TaskReassigned { .. }))
            .count();
        assert_eq!(requeues, report.reassignments);
        let generations = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::GenerationCompleted { .. }))
            .count() as u64;
        assert_eq!(generations, report.generations);
    }

    #[test]
    fn recorder_does_not_change_virtual_run() {
        use pga_observe::RingRecorder;
        let nodes = 4;
        let run = |record: bool| {
            let spec = ClusterSpec::homogeneous(nodes, NetworkProfile::FastEthernet).unwrap();
            let failures = FailurePlan::at(vec![Some(0.3), None, None, None]);
            if record {
                SimulatedMasterSlaveGa::new_with_recorder(
                    engine(9),
                    spec,
                    failures,
                    0.01,
                    RingRecorder::new(4096),
                )
                .unwrap()
                .run(&stop(30))
                .unwrap()
            } else {
                SimulatedMasterSlaveGa::new(engine(9), spec, failures, 0.01)
                    .unwrap()
                    .run(&stop(30))
                    .unwrap()
            }
        };
        let observed = run(true);
        let plain = run(false);
        assert_eq!(observed.generations, plain.generations);
        assert_eq!(observed.evaluations, plain.evaluations);
        assert_eq!(observed.best_fitness, plain.best_fitness);
        assert_eq!(observed.virtual_seconds, plain.virtual_seconds);
        assert_eq!(observed.reassignments, plain.reassignments);
    }

    #[test]
    fn total_cluster_death_is_reported() {
        let spec = ClusterSpec::homogeneous(2, NetworkProfile::SharedMemory).unwrap();
        let failures = FailurePlan::at(vec![Some(0.01), Some(0.02)]);
        let report = SimulatedMasterSlaveGa::new(engine(3), spec, failures, 0.01)
            .unwrap()
            .run(&stop(1000))
            .unwrap();
        assert!(report.cluster_died);
        assert!(report.generations < 1000);
    }
}
