//! Fault-tolerant threaded master–slave evaluation.
//!
//! [`RayonEvaluator`](crate::RayonEvaluator) is fast but failure-oblivious:
//! a lost or wedged worker takes the whole batch down with it. The
//! discrete-event [`SimulatedMasterSlaveGa`](crate::SimulatedMasterSlaveGa)
//! is failure-aware but virtual-time only. [`ResilientEvaluator`] closes the
//! gap — a real-thread manager/worker runtime in the mould of Gagné et al.
//! (2003) and Lobo et al.'s manager/worker architecture:
//!
//! * the master dispatches one evaluation task at a time to long-lived
//!   worker threads over channels, with a **per-task deadline**;
//! * idle workers emit **heartbeats**, so a silent worker can be told apart
//!   from a merely busy one;
//! * an overdue task is first **retried speculatively** on another worker
//!   (exponential backoff per attempt); continued silence past the
//!   heartbeat timeout **quarantines** the worker and requeues its task;
//! * a **panicking** fitness evaluation is caught in the worker, reported,
//!   and permanently quarantines that worker; the task is reassigned;
//! * a quarantined-by-timeout worker that produces late evidence of life
//!   (result or heartbeat) **recovers** and rejoins the rotation;
//! * when every worker is gone the master **degrades gracefully** and
//!   evaluates the remainder inline — a batch always completes.
//!
//! Faults can be injected deterministically through a seeded
//! [`FaultPlan`], the task-count analogue of the
//! simulator's `FailurePlan`, so the same fault description drives both
//! runtimes (experiment E17 cross-validates them).
//!
//! ## Determinism contract
//!
//! Fitness is pure ([`Problem::evaluate`]), so *search behaviour never
//! depends on scheduling*: whatever the interleaving, retries, or worker
//! losses, each unevaluated member receives exactly the fitness the serial
//! evaluator would assign, exactly once — bit-identical populations, any
//! worker count, any fault plan. Only wall-clock time and the lifecycle
//! *trace* (dispatch order, retry counts) vary with scheduling.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pga_cluster::{FaultPlan, WorkerFault};
use pga_core::{ConfigError, Evaluator, Individual, Problem};
use pga_observe::{Event, EventKind, Recorder, Stopwatch};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work: evaluate `genome`, report fitness.
///
/// Shared with the asynchronous steady-state engine (`async_steady`), which
/// runs the same worker loop without the batch barrier.
pub(crate) struct Task<G> {
    pub(crate) batch: u64,
    pub(crate) id: u64,
    pub(crate) genome: G,
}

/// Worker → master report stream (one shared channel).
pub(crate) enum Report {
    Done {
        worker: usize,
        batch: u64,
        task: u64,
        fitness: f64,
    },
    Panicked {
        worker: usize,
        batch: u64,
        task: u64,
    },
    Heartbeat {
        worker: usize,
    },
}

/// Master-side view of one worker thread.
#[derive(Clone, Copy)]
enum SlotState {
    /// Ready for a task.
    Idle,
    /// Evaluating (as far as the master knows).
    Busy {
        batch: u64,
        task: u64,
        deadline: Instant,
        /// A speculative copy of the task has already been requeued; the
        /// next expiry escalates to quarantine instead of another retry.
        retried: bool,
    },
    /// Quarantined after missed heartbeats — may recover on late evidence
    /// of life.
    Suspect,
    /// Permanently out of service (panicked or channel disconnected).
    Gone,
}

struct Slot<G> {
    tx: Option<Sender<Task<G>>>,
    handle: Option<JoinHandle<()>>,
    state: SlotState,
    last_seen: Instant,
}

impl<G> Slot<G> {
    fn is_dispatchable(&self) -> bool {
        self.tx.is_some() && matches!(self.state, SlotState::Idle)
    }

    /// Counts toward the survivor set (not written off).
    fn is_live(&self) -> bool {
        self.tx.is_some() && matches!(self.state, SlotState::Idle | SlotState::Busy { .. })
    }
}

/// A task waiting (re)dispatch.
struct Pending {
    task: u64,
    attempt: u64,
    not_before: Instant,
}

/// Lifetime counters of a [`ResilientEvaluator`] (mirrors the
/// `resilient.*` metrics emitted through the recorder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// Batches evaluated.
    pub batches: u64,
    /// Tasks handed to workers (every delivery attempt counts).
    pub dispatched: u64,
    /// Fresh fitness values produced by workers.
    pub completed: u64,
    /// Results that arrived after the task had already been completed
    /// elsewhere (ignored for accounting — the exactly-once guarantee).
    pub late_results: u64,
    /// Speculative straggler retries.
    pub retries: u64,
    /// Tasks requeued because their worker was written off.
    pub reassignments: u64,
    /// Deadline expiries without a recent heartbeat.
    pub heartbeat_misses: u64,
    /// Workers quarantined (timeout, panic, or disconnect).
    pub quarantined: u64,
    /// Quarantined workers that rejoined the rotation.
    pub recovered: u64,
    /// Workers declared dead (missed heartbeats or disconnect).
    pub node_failures: u64,
    /// Tasks the master evaluated inline (retry budget exhausted or no
    /// live workers left).
    pub master_inline: u64,
}

/// Everything the master mutates while driving a batch. Lives behind a
/// mutex because [`Evaluator`] takes `&self`.
struct Master<G> {
    slots: Vec<Slot<G>>,
    reports: Receiver<Report>,
    /// Keeps the report channel open even with every worker gone, so
    /// `recv_timeout` yields `Timeout` (handled) instead of `Disconnected`.
    _reports_tx: Sender<Report>,
    recorder: Option<Box<dyn Recorder>>,
    stats: ResilientStats,
    batch: u64,
}

/// Fault-tolerant threaded master–slave evaluator. See the module docs for
/// the failure semantics and [`ResilientBuilder`] for configuration.
///
/// The evaluator owns its problem instance (workers hold an [`Arc`] clone),
/// so construction takes the problem up front; `evaluate_batch` asserts in
/// debug builds that it is driven with the same problem it was built for.
pub struct ResilientEvaluator<P: Problem> {
    master: Mutex<Master<P::Genome>>,
    problem: Arc<P>,
    workers: usize,
    task_deadline: Duration,
    heartbeat_interval: Duration,
    heartbeat_timeout: Duration,
    max_retries: u64,
    backoff_base: Duration,
}

/// Builder for [`ResilientEvaluator`]; validation happens in
/// [`build`](ResilientBuilder::build).
pub struct ResilientBuilder<P: Problem> {
    problem: P,
    workers: usize,
    task_deadline: Duration,
    heartbeat_interval: Duration,
    heartbeat_timeout: Duration,
    max_retries: u64,
    backoff_base: Duration,
    fault_plan: Option<FaultPlan>,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem> ResilientBuilder<P> {
    fn new(problem: P, workers: usize) -> Self {
        Self {
            problem,
            workers,
            task_deadline: Duration::from_millis(100),
            heartbeat_interval: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_millis(150),
            max_retries: 4,
            backoff_base: Duration::from_micros(500),
            fault_plan: None,
            recorder: None,
        }
    }

    /// Per-task deadline before the master suspects the worker (default
    /// 100 ms — generous against false positives on loaded CI hosts; lower
    /// it for fast fitness functions under fault injection).
    #[must_use]
    pub fn task_deadline(mut self, d: Duration) -> Self {
        self.task_deadline = d;
        self
    }

    /// How often idle workers emit heartbeats (default 10 ms).
    #[must_use]
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Silence span after which an overdue worker is declared failed and
    /// quarantined (default 150 ms; must be ≥ the heartbeat interval).
    #[must_use]
    pub fn heartbeat_timeout(mut self, d: Duration) -> Self {
        self.heartbeat_timeout = d;
        self
    }

    /// Delivery attempts allowed per task beyond the first (default 4);
    /// once exhausted the master evaluates the task inline.
    #[must_use]
    pub fn max_retries(mut self, n: u64) -> Self {
        self.max_retries = n;
        self
    }

    /// Base of the exponential backoff applied before attempt `k` becomes
    /// dispatchable again: `base · 2^(k-1)` (default 500 µs).
    #[must_use]
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.backoff_base = d;
        self
    }

    /// Injects a deterministic fault script (default: no faults). The plan
    /// must cover exactly `workers` workers.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a recorder receiving every lifecycle event (dispatch,
    /// heartbeat-miss, retry, reassign, quarantine, recover) plus one
    /// `EvaluationBatch` per batch.
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Validates the configuration and spawns the worker threads.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] on zero workers, zero durations,
    /// a heartbeat timeout shorter than the interval, or a fault plan whose
    /// length does not match the worker count.
    pub fn build(self) -> Result<ResilientEvaluator<P>, ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "workers",
                message: "need at least one worker thread".into(),
            });
        }
        if self.task_deadline.is_zero() {
            return Err(ConfigError::InvalidParameter {
                name: "task_deadline",
                message: "per-task deadline must be positive".into(),
            });
        }
        if self.heartbeat_interval.is_zero() {
            return Err(ConfigError::InvalidParameter {
                name: "heartbeat_interval",
                message: "heartbeat interval must be positive".into(),
            });
        }
        if self.heartbeat_timeout < self.heartbeat_interval {
            return Err(ConfigError::InvalidParameter {
                name: "heartbeat_timeout",
                message: "heartbeat timeout must be >= the heartbeat interval".into(),
            });
        }
        let plan = self
            .fault_plan
            .unwrap_or_else(|| FaultPlan::none(self.workers));
        if plan.len() != self.workers {
            return Err(ConfigError::InvalidParameter {
                name: "fault_plan",
                message: format!(
                    "fault plan covers {} workers but the pool has {}",
                    plan.len(),
                    self.workers
                ),
            });
        }

        let problem = Arc::new(self.problem);
        let (reports_tx, reports) = unbounded();
        let now = Instant::now();
        let slots = (0..self.workers)
            .map(|id| {
                let (tx, rx) = unbounded();
                let handle = spawn_worker(
                    id,
                    Arc::clone(&problem),
                    plan.fault(id).clone(),
                    rx,
                    reports_tx.clone(),
                    self.heartbeat_interval,
                );
                Slot {
                    tx: Some(tx),
                    handle: Some(handle),
                    state: SlotState::Idle,
                    last_seen: now,
                }
            })
            .collect();
        Ok(ResilientEvaluator {
            master: Mutex::new(Master {
                slots,
                reports,
                _reports_tx: reports_tx,
                recorder: self.recorder,
                stats: ResilientStats::default(),
                batch: 0,
            }),
            problem,
            workers: self.workers,
            task_deadline: self.task_deadline,
            heartbeat_interval: self.heartbeat_interval,
            heartbeat_timeout: self.heartbeat_timeout,
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
        })
    }
}

pub(crate) fn spawn_worker<P: Problem>(
    id: usize,
    problem: Arc<P>,
    fault: WorkerFault,
    tasks: Receiver<Task<P::Genome>>,
    reports: Sender<Report>,
    heartbeat_interval: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("pga-resilient-{id}"))
        .spawn(move || {
            let mut received: u64 = 0;
            loop {
                match tasks.recv_timeout(heartbeat_interval) {
                    Err(RecvTimeoutError::Timeout) => {
                        if reports.send(Report::Heartbeat { worker: id }).is_err() {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                    Ok(task) => {
                        let nth = received;
                        received += 1;
                        if fault.die_on_task == Some(nth) {
                            // Scripted silent crash: vanish mid-task.
                            return;
                        }
                        if !fault.delay_per_task.is_zero() {
                            std::thread::sleep(fault.delay_per_task);
                        }
                        let inject = fault.panic_on_task == Some(nth);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            assert!(!inject, "injected worker panic (FaultPlan)");
                            problem.evaluate(&task.genome)
                        }));
                        let report = match outcome {
                            Ok(fitness) => Report::Done {
                                worker: id,
                                batch: task.batch,
                                task: task.id,
                                fitness,
                            },
                            Err(_) => Report::Panicked {
                                worker: id,
                                batch: task.batch,
                                task: task.id,
                            },
                        };
                        if reports.send(report).is_err() {
                            return;
                        }
                    }
                }
            }
        })
        .expect("failed to spawn resilient worker thread")
}

impl<P: Problem> ResilientEvaluator<P> {
    /// Starts configuring a pool of `workers` threads evaluating `problem`.
    #[must_use]
    pub fn builder(problem: P, workers: usize) -> ResilientBuilder<P> {
        ResilientBuilder::new(problem, workers)
    }

    /// Worker thread count (including quarantined workers).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the lifetime lifecycle counters.
    #[must_use]
    pub fn stats(&self) -> ResilientStats {
        self.lock().stats
    }

    /// Workers currently in the dispatch rotation (not written off).
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.lock().slots.iter().filter(|s| s.is_live()).count()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Master<P::Genome>> {
        // A worker panic never happens while the master lock is held (the
        // master only locks from `evaluate_batch`), but be poison-tolerant
        // anyway: the state is counters + channels, both safe to reuse.
        self.master.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn backoff(&self, attempt: u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(10) as u32;
        self.backoff_base.saturating_mul(2u32.saturating_pow(exp))
    }
}

impl<G> Master<G> {
    fn emit(&mut self, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.record(&Event::new(kind));
        }
    }

    /// Writes a worker off permanently (`Gone`).
    fn write_off(&mut self, worker: usize, reason: &str, node_failed: bool) {
        self.slots[worker].state = SlotState::Gone;
        self.slots[worker].tx = None;
        self.stats.quarantined += 1;
        if node_failed {
            self.stats.node_failures += 1;
            self.emit(EventKind::NodeFailed {
                node: worker as u32,
            });
        }
        self.emit(EventKind::WorkerQuarantined {
            worker: worker as u32,
            reason: reason.into(),
        });
    }

    /// Quarantines a worker that may still come back (`Suspect`).
    fn suspect(&mut self, worker: usize) {
        self.slots[worker].state = SlotState::Suspect;
        self.stats.quarantined += 1;
        self.stats.node_failures += 1;
        self.emit(EventKind::NodeFailed {
            node: worker as u32,
        });
        self.emit(EventKind::WorkerQuarantined {
            worker: worker as u32,
            reason: "timeout".into(),
        });
    }

    fn recover(&mut self, worker: usize) {
        self.slots[worker].state = SlotState::Idle;
        self.stats.recovered += 1;
        self.emit(EventKind::WorkerRecovered {
            worker: worker as u32,
        });
    }
}

impl<P: Problem> Evaluator<P> for ResilientEvaluator<P> {
    #[allow(clippy::too_many_lines)]
    fn evaluate_batch(&self, problem: &P, members: &mut [Individual<P::Genome>]) -> u64 {
        debug_assert_eq!(
            problem.name(),
            self.problem.name(),
            "ResilientEvaluator driven with a different problem than it was built for"
        );
        let todo: Vec<usize> = members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.fitness.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut master = self.lock();
        let m = &mut *master;
        m.batch += 1;
        m.stats.batches += 1;
        let batch = m.batch;
        let sw = Stopwatch::started_if(m.recorder.is_some());
        let n = todo.len();
        if n == 0 {
            let size = members.len() as u64;
            if let Some(micros) = sw.elapsed_micros() {
                m.emit(EventKind::EvaluationBatch {
                    island: 0,
                    batch,
                    size,
                    fresh: 0,
                    micros,
                });
            }
            return 0;
        }

        let genomes: Vec<P::Genome> = todo.iter().map(|&i| members[i].genome.clone()).collect();
        let mut fitness_of: Vec<Option<f64>> = vec![None; n];
        let mut attempts: Vec<u64> = vec![0; n];
        let mut remaining = n;
        let start = Instant::now();
        let mut queue: VecDeque<Pending> = (0..n)
            .map(|t| Pending {
                task: t as u64,
                attempt: 0,
                not_before: start,
            })
            .collect();

        // A fresh batch resets the clock on workers still busy with stale
        // tasks (their late results will be ignored by the batch tag).
        for slot in &mut m.slots {
            if let SlotState::Busy {
                deadline, retried, ..
            } = &mut slot.state
            {
                *deadline = start + self.task_deadline;
                *retried = false;
            }
        }

        while remaining > 0 {
            let now = Instant::now();
            queue.retain(|p| fitness_of[p.task as usize].is_none());

            // Requeue helper result: push a new delivery attempt or, once
            // the retry budget is spent, finish the task inline.
            macro_rules! requeue_or_inline {
                ($t:expr, $now:expr) => {{
                    let t = $t as usize;
                    if fitness_of[t].is_none() {
                        attempts[t] += 1;
                        if attempts[t] > self.max_retries {
                            fitness_of[t] = Some(problem.evaluate(&genomes[t]));
                            remaining -= 1;
                            m.stats.master_inline += 1;
                        } else {
                            let backoff = self.backoff(attempts[t]);
                            queue.push_back(Pending {
                                task: $t,
                                attempt: attempts[t],
                                not_before: $now + backoff,
                            });
                        }
                    }
                }};
            }

            // 1. Expire deadlines: speculate first, write the worker off on
            //    continued silence.
            for w in 0..m.slots.len() {
                let SlotState::Busy {
                    batch: task_batch,
                    task,
                    deadline,
                    retried,
                } = m.slots[w].state
                else {
                    continue;
                };
                if now < deadline {
                    continue;
                }
                let silent_for = now.duration_since(m.slots[w].last_seen);
                if !retried {
                    if task_batch == batch && fitness_of[task as usize].is_none() {
                        let t = task as usize;
                        attempts[t] += 1;
                        let backoff = self.backoff(attempts[t]);
                        if attempts[t] > self.max_retries {
                            fitness_of[t] = Some(problem.evaluate(&genomes[t]));
                            remaining -= 1;
                            m.stats.master_inline += 1;
                        } else {
                            queue.push_back(Pending {
                                task,
                                attempt: attempts[t],
                                not_before: now + backoff,
                            });
                            m.stats.retries += 1;
                            m.emit(EventKind::TaskRetried {
                                task,
                                attempt: attempts[t],
                                backoff_micros: backoff.as_micros() as u64,
                            });
                        }
                    }
                    m.slots[w].state = SlotState::Busy {
                        batch: task_batch,
                        task,
                        deadline: now + self.task_deadline,
                        retried: true,
                    };
                } else if silent_for >= self.heartbeat_timeout {
                    m.stats.heartbeat_misses += 1;
                    m.emit(EventKind::HeartbeatMissed { worker: w as u32 });
                    m.suspect(w);
                    if task_batch == batch && fitness_of[task as usize].is_none() {
                        m.stats.reassignments += 1;
                        m.emit(EventKind::TaskReassigned { task });
                        requeue_or_inline!(task, now);
                    }
                } else {
                    // Recent heartbeat: alive but slow; keep waiting.
                    m.slots[w].state = SlotState::Busy {
                        batch: task_batch,
                        task,
                        deadline: now + self.task_deadline,
                        retried: true,
                    };
                }
            }
            if remaining == 0 {
                break;
            }

            // 2. Dispatch eligible tasks to idle workers.
            'dispatch: loop {
                let idle = m.slots.iter().position(Slot::is_dispatchable);
                let Some(w) = idle else {
                    break;
                };
                let Some(pos) = queue
                    .iter()
                    .position(|p| p.not_before <= now && fitness_of[p.task as usize].is_none())
                else {
                    break;
                };
                let Some(pending) = queue.remove(pos) else {
                    break;
                };
                let task = Task {
                    batch,
                    id: pending.task,
                    genome: genomes[pending.task as usize].clone(),
                };
                let sent = m.slots[w]
                    .tx
                    .as_ref()
                    .map(|tx| tx.send(task))
                    .unwrap_or_else(|| unreachable!("dispatchable slot has a sender"));
                match sent {
                    Ok(()) => {
                        m.slots[w].state = SlotState::Busy {
                            batch,
                            task: pending.task,
                            deadline: now + self.task_deadline,
                            retried: false,
                        };
                        m.stats.dispatched += 1;
                        m.emit(EventKind::TaskDispatched {
                            worker: w as u32,
                            task: pending.task,
                            attempt: pending.attempt,
                        });
                    }
                    Err(_) => {
                        // The worker thread is gone (its receiver dropped):
                        // write it off and put the task back unchanged.
                        m.write_off(w, "disconnected", true);
                        queue.push_front(pending);
                        continue 'dispatch;
                    }
                }
            }

            // 3. Graceful degradation: no worker left to wait for.
            if m.slots.iter().all(|s| !s.is_live()) {
                for t in 0..n {
                    if fitness_of[t].is_none() {
                        fitness_of[t] = Some(problem.evaluate(&genomes[t]));
                        m.stats.master_inline += 1;
                    }
                }
                break;
            }

            // 4. Sleep until the next interesting instant, or a report.
            let mut next = now + self.heartbeat_interval;
            for slot in &m.slots {
                if let SlotState::Busy { deadline, .. } = slot.state {
                    next = next.min(deadline);
                }
            }
            for p in &queue {
                next = next.min(p.not_before);
            }
            let wait = next
                .saturating_duration_since(now)
                .max(Duration::from_micros(200));
            match m.reports.recv_timeout(wait) {
                Ok(Report::Done {
                    worker,
                    batch: task_batch,
                    task,
                    fitness,
                }) => {
                    let now = Instant::now();
                    m.slots[worker].last_seen = now;
                    match m.slots[worker].state {
                        SlotState::Busy {
                            batch: b, task: t, ..
                        } if b == task_batch && t == task => {
                            m.slots[worker].state = SlotState::Idle;
                        }
                        SlotState::Suspect => m.recover(worker),
                        _ => {}
                    }
                    if task_batch == batch && fitness_of[task as usize].is_none() {
                        fitness_of[task as usize] = Some(fitness);
                        remaining -= 1;
                        m.stats.completed += 1;
                    } else {
                        m.stats.late_results += 1;
                    }
                }
                Ok(Report::Panicked {
                    worker,
                    batch: task_batch,
                    task,
                }) => {
                    m.slots[worker].last_seen = Instant::now();
                    m.write_off(worker, "panic", false);
                    if task_batch == batch && fitness_of[task as usize].is_none() {
                        m.stats.reassignments += 1;
                        m.emit(EventKind::TaskReassigned { task });
                        requeue_or_inline!(task, Instant::now());
                    }
                }
                Ok(Report::Heartbeat { worker }) => {
                    m.slots[worker].last_seen = Instant::now();
                    if matches!(m.slots[worker].state, SlotState::Suspect) {
                        m.recover(worker);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable (we hold a sender clone), but degrade
                    // gracefully rather than spin.
                    for t in 0..n {
                        if fitness_of[t].is_none() {
                            fitness_of[t] = Some(problem.evaluate(&genomes[t]));
                            m.stats.master_inline += 1;
                        }
                    }
                    break;
                }
            }
        }

        for (slot, fitness) in todo.iter().zip(&fitness_of) {
            members[*slot].fitness = *fitness;
        }
        let size = members.len() as u64;
        if let Some(micros) = sw.elapsed_micros() {
            m.emit(EventKind::EvaluationBatch {
                island: 0,
                batch,
                size,
                fresh: n as u64,
                micros,
            });
        }
        n as u64
    }

    fn name(&self) -> &'static str {
        "resilient-master-slave"
    }
}

impl<P: Problem> Drop for ResilientEvaluator<P> {
    fn drop(&mut self) {
        let mut master = self.lock();
        for slot in &mut master.slots {
            slot.tx = None; // workers exit on channel disconnect
        }
        let handles: Vec<_> = master
            .slots
            .iter_mut()
            .filter_map(|s| s.handle.take())
            .collect();
        drop(master);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::{BitString, Objective, Rng64, SerialEvaluator};
    use pga_observe::{replay, MetricsRecorder, RingRecorder};

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    fn batch(n: usize, bits: usize, seed: u64) -> Vec<Individual<BitString>> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| Individual::unevaluated(BitString::random(bits, &mut rng)))
            .collect()
    }

    #[test]
    fn benign_plan_matches_serial_bit_for_bit() {
        for workers in [1usize, 2, 8] {
            let mut serial = batch(100, 64, 5);
            let mut resilient = serial.clone();
            let fresh_serial = SerialEvaluator.evaluate_batch(&OneMax(64), &mut serial);
            let eval = ResilientEvaluator::builder(OneMax(64), workers)
                .build()
                .unwrap();
            let fresh = eval.evaluate_batch(&OneMax(64), &mut resilient);
            assert_eq!(fresh, fresh_serial);
            for (a, b) in serial.iter().zip(&resilient) {
                assert_eq!(a.fitness().to_bits(), b.fitness().to_bits());
            }
            assert_eq!(eval.live_workers(), workers);
        }
    }

    #[test]
    fn skips_already_evaluated_and_counts_exactly_once() {
        let eval = ResilientEvaluator::builder(OneMax(8), 2).build().unwrap();
        let mut members = vec![
            Individual::evaluated(BitString::ones(8), 8.0),
            Individual::unevaluated(BitString::zeros(8)),
        ];
        assert_eq!(eval.evaluate_batch(&OneMax(8), &mut members), 1);
        assert_eq!(eval.evaluate_batch(&OneMax(8), &mut members), 0);
        let stats = eval.stats();
        assert_eq!(stats.completed + stats.master_inline, 1);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn panicking_worker_is_quarantined_and_tasks_reassigned() {
        let ring = RingRecorder::new(4096);
        let plan = FaultPlan::at(vec![
            WorkerFault {
                panic_on_task: Some(0),
                ..WorkerFault::healthy()
            },
            WorkerFault::healthy(),
        ]);
        // A generous deadline keeps the speculative-retry path out of this
        // test: on a loaded single-core host the panicking worker may not be
        // scheduled before the default deadline, and a deadline retry would
        // complete its task without any panic ever surfacing.
        let eval = ResilientEvaluator::builder(OneMax(32), 2)
            .task_deadline(Duration::from_secs(5))
            .heartbeat_timeout(Duration::from_secs(5))
            .fault_plan(plan)
            .recorder(ring.clone())
            .build()
            .unwrap();
        let mut members = batch(40, 32, 11);
        let mut expected = members.clone();
        SerialEvaluator.evaluate_batch(&OneMax(32), &mut expected);
        assert_eq!(eval.evaluate_batch(&OneMax(32), &mut members), 40);
        for (a, b) in expected.iter().zip(&members) {
            assert_eq!(a.fitness().to_bits(), b.fitness().to_bits());
        }
        let stats = eval.stats();
        assert!(stats.quarantined >= 1, "stats: {stats:?}");
        assert!(stats.reassignments >= 1, "stats: {stats:?}");
        assert_eq!(eval.live_workers(), 1);
        // The quarantine surfaces both as events and as metrics.
        let events = ring.events();
        assert!(events.iter().any(
            |e| matches!(&e.kind, EventKind::WorkerQuarantined { reason, .. } if reason == "panic")
        ));
        let mut metrics = MetricsRecorder::new(vec![1.0]);
        replay(&events, &mut metrics);
        assert!(metrics.registry().counter("resilient.quarantined") >= 1);
        assert!(metrics.registry().counter("cluster.reassignments") >= 1);
        assert!(metrics.registry().counter("resilient.dispatched") >= 40);
    }

    #[test]
    fn all_workers_dead_degrades_to_inline_evaluation() {
        let die = WorkerFault {
            die_on_task: Some(0),
            ..WorkerFault::healthy()
        };
        let eval = ResilientEvaluator::builder(OneMax(16), 3)
            .fault_plan(FaultPlan::at(vec![die.clone(), die.clone(), die]))
            .task_deadline(Duration::from_millis(20))
            .heartbeat_timeout(Duration::from_millis(30))
            .build()
            .unwrap();
        let mut members = batch(25, 16, 3);
        assert_eq!(eval.evaluate_batch(&OneMax(16), &mut members), 25);
        assert!(members.iter().all(|i| i.fitness.is_some()));
        let stats = eval.stats();
        assert_eq!(eval.live_workers(), 0);
        assert!(stats.master_inline >= 1, "stats: {stats:?}");
        assert_eq!(stats.completed + stats.master_inline, 25);
    }

    #[test]
    fn slowdown_triggers_speculative_retry_not_quarantine_of_result() {
        let plan = FaultPlan::at(vec![
            WorkerFault {
                delay_per_task: Duration::from_millis(30),
                ..WorkerFault::healthy()
            },
            WorkerFault::healthy(),
        ]);
        let eval = ResilientEvaluator::builder(OneMax(32), 2)
            .fault_plan(plan)
            .task_deadline(Duration::from_millis(5))
            .heartbeat_timeout(Duration::from_millis(500))
            .build()
            .unwrap();
        let mut members = batch(20, 32, 9);
        assert_eq!(eval.evaluate_batch(&OneMax(32), &mut members), 20);
        let stats = eval.stats();
        assert!(stats.retries >= 1, "stats: {stats:?}");
        assert_eq!(stats.completed + stats.master_inline, 20);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(matches!(
            ResilientEvaluator::builder(OneMax(8), 0).build(),
            Err(ConfigError::InvalidParameter {
                name: "workers",
                ..
            })
        ));
        assert!(matches!(
            ResilientEvaluator::builder(OneMax(8), 2)
                .task_deadline(Duration::ZERO)
                .build(),
            Err(ConfigError::InvalidParameter {
                name: "task_deadline",
                ..
            })
        ));
        assert!(matches!(
            ResilientEvaluator::builder(OneMax(8), 2)
                .heartbeat_interval(Duration::ZERO)
                .build(),
            Err(ConfigError::InvalidParameter {
                name: "heartbeat_interval",
                ..
            })
        ));
        assert!(matches!(
            ResilientEvaluator::builder(OneMax(8), 2)
                .heartbeat_interval(Duration::from_millis(50))
                .heartbeat_timeout(Duration::from_millis(10))
                .build(),
            Err(ConfigError::InvalidParameter {
                name: "heartbeat_timeout",
                ..
            })
        ));
        assert!(matches!(
            ResilientEvaluator::builder(OneMax(8), 2)
                .fault_plan(FaultPlan::none(3))
                .build(),
            Err(ConfigError::InvalidParameter {
                name: "fault_plan",
                ..
            })
        ));
    }

    #[test]
    fn works_as_ga_evaluator_with_same_trajectory_as_serial() {
        use pga_core::ops::{BitFlip, OnePoint, Tournament};
        use pga_core::{Ga, Scheme};
        let serial = {
            let mut ga = Ga::builder(OneMax(48))
                .seed(21)
                .pop_size(30)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(48))
                .scheme(Scheme::Generational { elitism: 1 })
                .build()
                .unwrap();
            (0..10).map(|_| ga.step().best).collect::<Vec<_>>()
        };
        let resilient = {
            let eval = ResilientEvaluator::builder(OneMax(48), 4).build().unwrap();
            let mut ga = Ga::builder(OneMax(48))
                .seed(21)
                .pop_size(30)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(48))
                .scheme(Scheme::Generational { elitism: 1 })
                .evaluator(eval)
                .build()
                .unwrap();
            (0..10).map(|_| ga.step().best).collect::<Vec<_>>()
        };
        assert_eq!(serial, resilient);
    }
}
