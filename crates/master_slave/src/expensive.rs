//! Artificially expensive fitness wrapper for speedup experiments.

use pga_core::{Objective, Problem, Rng64};
use std::hint::black_box;

/// Wraps a problem and burns a configurable amount of CPU per evaluation.
///
/// Master–slave speedup depends on the grain size of one evaluation
/// (Bethke 1976; Cantú-Paz 2000): a OneMax popcount is far too cheap to
/// amortize dispatch, whereas a CFD-style evaluation parallelizes almost
/// perfectly. This wrapper interpolates between the two regimes without
/// changing search behaviour — the fitness *value* is untouched.
pub struct ExpensiveFitness<P> {
    inner: P,
    work_iters: u64,
}

impl<P> ExpensiveFitness<P> {
    /// Adds `work_iters` iterations of arithmetic busy-work per evaluation.
    /// ~1000 iterations ≈ 1 µs on a modern core.
    #[must_use]
    pub fn new(inner: P, work_iters: u64) -> Self {
        Self { inner, work_iters }
    }

    /// The wrapped problem.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn burn(&self) {
        let mut acc = 0u64;
        for i in 0..self.work_iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        black_box(acc);
    }
}

impl<P: Problem> Problem for ExpensiveFitness<P> {
    type Genome = P::Genome;

    fn name(&self) -> String {
        format!("{}+work{}", self.inner.name(), self.work_iters)
    }

    fn objective(&self) -> Objective {
        self.inner.objective()
    }

    fn evaluate(&self, genome: &Self::Genome) -> f64 {
        self.burn();
        self.inner.evaluate(genome)
    }

    fn random_genome(&self, rng: &mut Rng64) -> Self::Genome {
        self.inner.random_genome(rng)
    }

    fn optimum(&self) -> Option<f64> {
        self.inner.optimum()
    }

    fn optimum_epsilon(&self) -> f64 {
        self.inner.optimum_epsilon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::BitString;

    struct OneMax;
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(16, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(16.0)
        }
    }

    #[test]
    fn fitness_values_are_unchanged() {
        let p = ExpensiveFitness::new(OneMax, 100);
        let g = BitString::ones(16);
        assert_eq!(p.evaluate(&g), 16.0);
        assert_eq!(p.optimum(), Some(16.0));
        assert_eq!(p.objective(), Objective::Maximize);
    }

    #[test]
    fn work_actually_takes_time() {
        let cheap = ExpensiveFitness::new(OneMax, 0);
        let costly = ExpensiveFitness::new(OneMax, 3_000_000);
        let g = BitString::zeros(16);
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            let _ = cheap.evaluate(&g);
        }
        let cheap_t = t0.elapsed();
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            let _ = costly.evaluate(&g);
        }
        let costly_t = t0.elapsed();
        assert!(costly_t > cheap_t * 3, "{costly_t:?} vs {cheap_t:?}");
    }
}
