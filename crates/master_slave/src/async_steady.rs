//! Barrier-free asynchronous steady-state master–slave GA.
//!
//! The synchronous master–slave engines in this crate ([`crate::RayonEvaluator`],
//! [`crate::ResilientEvaluator`], [`crate::SimulatedMasterSlaveGa`]) all share
//! one structural property: the master submits a *batch* of evaluations and
//! waits for the whole batch before touching the population — a global
//! barrier whose cost is set by the slowest task of every round. This module
//! removes the barrier. The master keeps every worker loaded with exactly one
//! offspring and folds each result into the population *as it arrives*
//! through the steady-state [`ReplacementPolicy`], so a straggling evaluation
//! only idles its own worker (Harada & Alba / Alba–Luque asynchronous PGA
//! semantics — the E20 experiment compares the two at equal time).
//!
//! Two execution substrates behind one engine:
//!
//! * **virtual** — offspring dispatch goes through the
//!   [`AsyncDispatchSim`] streaming cluster simulator with per-task costs
//!   drawn from a seeded [`EvalCostModel`]. Arrival order is the fold order,
//!   and because the cost stream is a separate seeded RNG, the *arrival log*
//!   is fully determined by `(seed, spec, model)`: checkpoints restore
//!   bit-identically and the engine reports [`Clock::Virtual`].
//! * **threaded** — offspring are evaluated on the long-lived worker threads
//!   of the resilient runtime (the same worker loop and channel vocabulary as
//!   [`crate::ResilientEvaluator`], including seeded
//!   [`FaultPlan`] stall/panic injection). Fold order follows
//!   real arrival order, which is the whole point: throughput under
//!   heterogeneous evaluation costs beats any batch schedule.
//!
//! Search behaviour intentionally reuses the exact steady-state recipe of
//! [`pga_core::Ga`] (same operator call order, same RNG discipline), so a
//! sync-vs-async comparison isolates the barrier rather than the variation
//! pipeline.

use crate::resilient::{spawn_worker, Report, Task};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pga_cluster::{AsyncDispatchSim, ClusterSpec, EvalCostModel, FaultPlan};
use pga_core::ops::{Crossover, Mutation, ReplacementPolicy, Selection};
use pga_core::{
    Clock, ConfigError, Driver, Engine, Genome, Individual, PollReport, Population, Problem,
    Progress, Rng64, RunOutcome, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StepReport, Termination,
};
use pga_observe::{Event, EventKind, Recorder};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Decorrelates the arrival-log RNG from the search RNG.
const COST_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default worker heartbeat cadence for the threaded backend.
const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(10);

/// Pseudo worker id reported when the master evaluates inline because every
/// worker thread is gone (graceful degradation).
fn master_worker_id(workers: usize) -> u32 {
    workers as u32
}

// ---------------------------------------------------------------------------
// Search state (backend-independent)
// ---------------------------------------------------------------------------

/// Everything the steady-state search owns: population, operators, RNG,
/// counters, recorder. Kept separate from the dispatch backend so stepping
/// can borrow both halves simultaneously.
struct Search<P: Problem> {
    problem: Arc<P>,
    selection: Box<dyn Selection<P::Genome>>,
    crossover: Box<dyn Crossover<P::Genome>>,
    mutation: Box<dyn Mutation<P::Genome>>,
    replacement: ReplacementPolicy,
    crossover_rate: f64,
    seed: u64,
    rng: Rng64,
    population: Population<P::Genome>,
    generation: u64,
    evaluations: u64,
    /// Results folded since the last generation boundary.
    folded_in_step: u64,
    /// Global 0-based fold sequence number (the arrival-log position).
    fold_seq: u64,
    improved_in_step: bool,
    stagnant_generations: u64,
    best_ever: Individual<P::Genome>,
    optimum_traced: bool,
    trace_island: u32,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem> Search<P> {
    fn emit(&mut self, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.record(&Event::new(kind));
        }
    }

    /// Breeds one offspring with the exact `Ga` steady-state recipe:
    /// two selections, rate-gated crossover (first child), mutation.
    fn breed(&mut self) -> P::Genome {
        let objective = self.problem.objective();
        let pa = self
            .selection
            .select(&self.population, objective, &mut self.rng);
        let pb = self
            .selection
            .select(&self.population, objective, &mut self.rng);
        let (ga, gb) = (&self.population[pa].genome, &self.population[pb].genome);
        let (mut child, _) = if self.rng.chance(self.crossover_rate) {
            self.crossover.crossover(ga, gb, &mut self.rng)
        } else {
            (ga.clone(), gb.clone())
        };
        self.mutation.mutate(&mut child, &mut self.rng);
        child
    }

    /// Folds one arrived evaluation into the population — the async hot
    /// path. Never waits for anything.
    fn fold(&mut self, worker: u32, genome: P::Genome, fitness: f64, clock_micros: u64) {
        let objective = self.problem.objective();
        let child = Individual::evaluated(genome, fitness);
        self.evaluations += 1;
        self.folded_in_step += 1;
        if objective.better(child.fitness(), self.best_ever.fitness()) {
            self.best_ever = child.clone();
            self.improved_in_step = true;
        }
        self.replacement
            .insert(&mut self.population, child, objective, &mut self.rng);
        let seq = self.fold_seq;
        self.fold_seq += 1;
        if self.recorder.is_some() {
            self.emit(EventKind::AsyncFold {
                island: self.trace_island,
                seq,
                worker,
                clock_micros,
            });
        }
    }

    /// Closes one generation-equivalent (`pop_size` folds) and reports it.
    fn finish_generation(&mut self) -> StepReport {
        self.generation += 1;
        if self.improved_in_step {
            self.stagnant_generations = 0;
        } else {
            self.stagnant_generations += 1;
        }
        self.improved_in_step = false;
        self.folded_in_step = 0;
        let report = self.gen_report();
        if self.recorder.is_some() {
            self.emit(EventKind::GenerationCompleted {
                island: self.trace_island,
                generation: report.generation,
                evaluations: report.evaluations,
                best: report.best,
                mean: report.mean,
                best_ever: report.best_ever,
            });
        }
        // Tracked unconditionally so snapshot bytes do not depend on
        // whether a recorder is attached; `emit` no-ops without one.
        if !self.optimum_traced && self.problem.is_optimal(report.best_ever) {
            self.optimum_traced = true;
            self.emit(EventKind::CheckpointHit {
                island: self.trace_island,
                generation: report.generation,
                best: report.best_ever,
            });
        }
        report
    }

    fn gen_report(&self) -> StepReport {
        let pop = self.population.stats(self.problem.objective());
        StepReport {
            generation: self.generation,
            evaluations: self.evaluations,
            best: pop.best,
            mean: pop.mean,
            best_ever: self.best_ever.fitness(),
        }
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        Progress {
            generations: self.generation,
            evaluations: self.evaluations,
            best_fitness: self.best_ever.fitness(),
            best_is_optimal: self.problem.is_optimal(self.best_ever.fitness()),
            stagnant_generations: self.stagnant_generations,
            elapsed,
            maximizing: self.problem.objective() == pga_core::Objective::Maximize,
            cost_units: self.evaluations as f64,
        }
    }

    fn put_individual(w: &mut SnapshotWriter, member: &Individual<P::Genome>) {
        member.genome.encode(w);
        w.put_opt_f64(member.fitness);
    }

    fn take_individual(r: &mut SnapshotReader<'_>) -> Result<Individual<P::Genome>, SnapshotError> {
        let genome = P::Genome::decode(r)?;
        let fitness = r.take_opt_f64()?;
        Ok(Individual { genome, fitness })
    }
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// One in-flight virtual evaluation.
struct InFlight<G> {
    genome: G,
    done_at: f64,
}

/// Virtual-time dispatch over the streaming cluster simulator.
struct VirtualBackend<G> {
    sim: AsyncDispatchSim,
    cost_model: EvalCostModel,
    /// Seeded arrival-log stream, separate from the search RNG so the fold
    /// order replays identically from a checkpoint.
    cost_rng: Rng64,
    /// Virtual seconds at the last fold.
    clock: f64,
    /// One slot per node.
    in_flight: Vec<Option<InFlight<G>>>,
}

/// Master-side view of one long-lived worker thread.
struct WorkerSlot<G> {
    tx: Option<Sender<Task<G>>>,
    handle: Option<JoinHandle<()>>,
    /// `(task id, genome)` currently on this worker; results are matched by
    /// task id so a stale report (after a restore) can never fold as the
    /// wrong genome.
    in_flight: Option<(u64, G)>,
}

/// Real-thread dispatch over the resilient worker loop.
struct ThreadedBackend<P: Problem> {
    slots: Vec<WorkerSlot<P::Genome>>,
    reports: Receiver<Report>,
    started: Instant,
    /// Genomes awaiting (re)dispatch: restored checkpoint backlog and
    /// requeues after an injected worker panic.
    backlog: VecDeque<P::Genome>,
    next_task: u64,
}

impl<P: Problem> Drop for ThreadedBackend<P> {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            slot.tx = None;
        }
        for slot in &mut self.slots {
            if let Some(handle) = slot.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

enum Backend<P: Problem> {
    Virtual(VirtualBackend<P::Genome>),
    Threaded(ThreadedBackend<P>),
}

// --- virtual stepping ------------------------------------------------------

impl<P: Problem> Search<P> {
    /// Keeps every simulated node loaded with exactly one offspring.
    fn fill_virtual(&mut self, v: &mut VirtualBackend<P::Genome>) {
        for node in 0..v.in_flight.len() {
            if v.in_flight[node].is_none() {
                let genome = self.breed();
                let cost = v.cost_model.sample(&mut v.cost_rng);
                let done_at = v.sim.dispatch(node, cost, v.clock);
                v.in_flight[node] = Some(InFlight { genome, done_at });
            }
        }
    }

    /// Folds the earliest arrival (lowest node index on ties) and advances
    /// the virtual clock to it.
    fn fold_one_virtual(&mut self, v: &mut VirtualBackend<P::Genome>) {
        let mut earliest: Option<(usize, f64)> = None;
        for (node, slot) in v.in_flight.iter().enumerate() {
            if let Some(t) = slot {
                let better = match earliest {
                    None => true,
                    Some((_, best)) => t.done_at < best,
                };
                if better {
                    earliest = Some((node, t.done_at));
                }
            }
        }
        if let Some((node, _)) = earliest {
            if let Some(InFlight { genome, done_at }) = v.in_flight[node].take() {
                v.clock = v.clock.max(done_at);
                let fitness = self.problem.evaluate(&genome);
                let micros = (v.clock * 1e6) as u64;
                self.fold(node as u32, genome, fitness, micros);
            }
        }
    }

    fn step_virtual(&mut self, v: &mut VirtualBackend<P::Genome>) -> StepReport {
        let target = self.population.len() as u64;
        while self.folded_in_step < target {
            self.fill_virtual(v);
            self.fold_one_virtual(v);
        }
        self.finish_generation()
    }
}

// --- threaded stepping -----------------------------------------------------

impl<P: Problem> Search<P> {
    /// Hands one offspring to every idle live worker. Backlogged genomes
    /// (restored checkpoints, panic requeues) go out before fresh breeding.
    fn fill_threaded(&mut self, t: &mut ThreadedBackend<P>) {
        for slot in &mut t.slots {
            if slot.tx.is_none() || slot.in_flight.is_some() {
                continue;
            }
            let genome = match t.backlog.pop_front() {
                Some(g) => g,
                None => self.breed(),
            };
            let id = t.next_task;
            t.next_task += 1;
            let task = Task {
                batch: 0,
                id,
                genome: genome.clone(),
            };
            let sent = slot.tx.as_ref().is_some_and(|tx| tx.send(task).is_ok());
            if sent {
                slot.in_flight = Some((id, genome));
            } else {
                // Worker thread is gone; requeue and retire the slot.
                slot.tx = None;
                t.backlog.push_back(genome);
            }
        }
    }

    fn handle_report(&mut self, t: &mut ThreadedBackend<P>, report: Report) {
        match report {
            Report::Done {
                worker,
                task,
                fitness,
                ..
            } => {
                let matched = t.slots.get_mut(worker).and_then(|slot| {
                    slot.in_flight
                        .take_if(|(id, _)| *id == task)
                        .map(|(_, genome)| genome)
                });
                if let Some(genome) = matched {
                    let micros = t.started.elapsed().as_micros() as u64;
                    self.fold(worker as u32, genome, fitness, micros);
                }
            }
            Report::Panicked { worker, task, .. } => {
                if let Some(slot) = t.slots.get_mut(worker) {
                    if let Some((_, genome)) = slot.in_flight.take_if(|(id, _)| *id == task) {
                        t.backlog.push_back(genome);
                    }
                }
            }
            Report::Heartbeat { .. } => {}
        }
    }

    /// Evaluates one backlogged (or fresh) offspring on the master — the
    /// degradation path when every worker thread has exited.
    fn fold_inline(&mut self, t: &mut ThreadedBackend<P>) {
        let genome = match t.backlog.pop_front() {
            Some(g) => g,
            None => self.breed(),
        };
        let fitness = self.problem.evaluate(&genome);
        let micros = t.started.elapsed().as_micros() as u64;
        self.fold(master_worker_id(t.slots.len()), genome, fitness, micros);
    }

    fn step_threaded(&mut self, t: &mut ThreadedBackend<P>) -> StepReport {
        let target = self.population.len() as u64;
        while self.folded_in_step < target {
            self.fill_threaded(t);
            if t.slots.iter().all(|s| s.tx.is_none()) {
                self.fold_inline(t);
                continue;
            }
            match t.reports.recv_timeout(DEFAULT_HEARTBEAT) {
                Ok(report) => self.handle_report(t, report),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    for slot in &mut t.slots {
                        slot.tx = None;
                    }
                }
            }
        }
        self.finish_generation()
    }

    /// Non-blocking: folds whatever has already arrived, tops the workers
    /// back up, and reports a generation boundary when one closes.
    fn poll_threaded(&mut self, t: &mut ThreadedBackend<P>) -> PollReport {
        let target = self.population.len() as u64;
        let before = self.fold_seq;
        self.fill_threaded(t);
        if t.slots.iter().all(|s| s.tx.is_none()) && self.folded_in_step < target {
            self.fold_inline(t);
        }
        while self.folded_in_step < target {
            match t.reports.try_recv() {
                Ok(report) => self.handle_report(t, report),
                Err(_) => break,
            }
        }
        self.fill_threaded(t);
        let report = if self.folded_in_step >= target {
            Some(self.finish_generation())
        } else {
            None
        };
        PollReport {
            folded: self.fold_seq - before,
            report,
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Asynchronous steady-state master–slave GA (see the module docs).
///
/// Build one with [`AsyncSteadyStateGa::builder`], then drive it like any
/// other [`Engine`]: `step()` is one generation-equivalent (`pop_size`
/// folds), `poll_step()` is the barrier-free increment.
pub struct AsyncSteadyStateGa<P: Problem> {
    search: Search<P>,
    backend: Backend<P>,
}

impl<P: Problem> AsyncSteadyStateGa<P> {
    /// Starts a builder over `problem`.
    #[must_use]
    pub fn builder(problem: P) -> AsyncSteadyBuilder<P> {
        AsyncSteadyBuilder::new(problem)
    }

    /// Runs until the termination rule fires via the shared [`Driver`].
    ///
    /// # Errors
    /// [`ConfigError::UnboundedTermination`] when the rule has no criteria.
    pub fn run(
        &mut self,
        termination: &Termination,
    ) -> Result<RunOutcome<Individual<P::Genome>>, ConfigError> {
        Driver::new(termination.clone()).run(self)
    }

    /// Attaches an event recorder. Purely observational: attaching or
    /// detaching one never changes search results or snapshot bytes.
    pub fn set_recorder(&mut self, recorder: impl Recorder + 'static) {
        self.search.recorder = Some(Box::new(recorder));
    }

    /// Detaches the recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.search.recorder.take()
    }

    /// Island id stamped on emitted events (0 by default).
    pub fn set_trace_island(&mut self, island: u32) {
        self.search.trace_island = island;
    }

    /// Generation-equivalents completed so far.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.search.generation
    }

    /// Fitness evaluations folded so far (including the initial population).
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.search.evaluations
    }

    /// Best individual ever folded.
    #[must_use]
    pub fn best_ever(&self) -> &Individual<P::Genome> {
        &self.search.best_ever
    }

    /// The current population.
    #[must_use]
    pub fn population(&self) -> &Population<P::Genome> {
        &self.search.population
    }

    /// Virtual seconds consumed (virtual backend); `None` when threaded.
    #[must_use]
    pub fn virtual_clock(&self) -> Option<f64> {
        match &self.backend {
            Backend::Virtual(v) => Some(v.clock),
            Backend::Threaded(_) => None,
        }
    }

    /// Live worker threads (threaded backend); `None` when virtual.
    #[must_use]
    pub fn live_workers(&self) -> Option<usize> {
        match &self.backend {
            Backend::Threaded(t) => Some(t.slots.iter().filter(|s| s.tx.is_some()).count()),
            Backend::Virtual(_) => None,
        }
    }
}

impl<P: Problem> Engine for AsyncSteadyStateGa<P> {
    type Best = Individual<P::Genome>;

    fn engine_id(&self) -> &'static str {
        "async-steady"
    }

    fn step(&mut self) -> StepReport {
        match &mut self.backend {
            Backend::Virtual(v) => self.search.step_virtual(v),
            Backend::Threaded(t) => self.search.step_threaded(t),
        }
    }

    fn poll_step(&mut self) -> PollReport {
        match &mut self.backend {
            // Virtual arrivals are always "ready" (the clock only moves
            // when a result folds), so a poll completes one full
            // generation-equivalent, same as `step`.
            Backend::Virtual(v) => {
                let before = self.search.fold_seq;
                let report = self.search.step_virtual(v);
                PollReport {
                    folded: self.search.fold_seq - before,
                    report: Some(report),
                }
            }
            Backend::Threaded(t) => self.search.poll_threaded(t),
        }
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        self.search.progress(elapsed)
    }

    fn best(&self) -> Self::Best {
        self.search.best_ever.clone()
    }

    fn clock(&self) -> Clock {
        match &self.backend {
            Backend::Virtual(v) => Clock::Virtual(Duration::from_secs_f64(v.clock)),
            Backend::Threaded(_) => Clock::Wall,
        }
    }

    fn record_run_started(&mut self) {
        if self.search.recorder.is_some() {
            let engine = format!(
                "async-steady-{}",
                match &self.backend {
                    Backend::Virtual(_) => "virtual",
                    Backend::Threaded(_) => "threaded",
                }
            );
            let problem = self.search.problem.name();
            let (island, seed) = (self.search.trace_island, self.search.seed);
            self.search.emit(EventKind::RunStarted {
                island,
                engine,
                problem,
                seed,
            });
        }
    }

    fn record_run_finished(&mut self) {
        if self.search.recorder.is_some() {
            let best = self.search.best_ever.fitness();
            let kind = EventKind::RunFinished {
                island: self.search.trace_island,
                generations: self.search.generation,
                evaluations: self.search.evaluations,
                best,
                hit_optimum: self.search.problem.is_optimal(best),
            };
            self.search.emit(kind);
            if let Some(r) = &mut self.search.recorder {
                r.flush();
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        let s = &self.search;
        let mut w = SnapshotWriter::new();
        w.put_u64(s.generation);
        w.put_u64(s.evaluations);
        w.put_u64(s.stagnant_generations);
        w.put_u64(s.folded_in_step);
        w.put_u64(s.fold_seq);
        w.put_bool(s.optimum_traced);
        w.put_bool(s.improved_in_step);
        let (state, spare) = s.rng.snapshot_state();
        for word in state {
            w.put_u64(word);
        }
        w.put_opt_f64(spare);
        Search::<P>::put_individual(&mut w, &s.best_ever);
        w.put_usize(s.population.len());
        for member in s.population.members() {
            Search::<P>::put_individual(&mut w, member);
        }
        match &self.backend {
            Backend::Virtual(v) => {
                w.put_u8(0);
                let (state, spare) = v.cost_rng.snapshot_state();
                for word in state {
                    w.put_u64(word);
                }
                w.put_opt_f64(spare);
                w.put_f64(v.clock);
                let (free_at, link_free) = v.sim.export_state();
                w.put_usize(free_at.len());
                for t in free_at {
                    w.put_f64(t);
                }
                w.put_f64(link_free);
                for slot in &v.in_flight {
                    match slot {
                        Some(task) => {
                            w.put_bool(true);
                            task.genome.encode(&mut w);
                            w.put_f64(task.done_at);
                        }
                        None => w.put_bool(false),
                    }
                }
            }
            Backend::Threaded(t) => {
                w.put_u8(1);
                // Outstanding work is checkpointed as a redispatch backlog:
                // in-flight genomes (slot order) then the queued backlog.
                let outstanding: Vec<&P::Genome> = t
                    .slots
                    .iter()
                    .filter_map(|s| s.in_flight.as_ref().map(|(_, g)| g))
                    .chain(t.backlog.iter())
                    .collect();
                w.put_usize(outstanding.len());
                for genome in outstanding {
                    genome.encode(&mut w);
                }
            }
        }
        Snapshot::new("async-steady", w.into_bytes())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = snapshot.reader_for("async-steady")?;
        let generation = r.take_u64()?;
        let evaluations = r.take_u64()?;
        let stagnant_generations = r.take_u64()?;
        let folded_in_step = r.take_u64()?;
        let fold_seq = r.take_u64()?;
        let optimum_traced = r.take_bool()?;
        let improved_in_step = r.take_bool()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.take_u64()?;
        }
        let spare = r.take_opt_f64()?;
        let best_ever = Search::<P>::take_individual(&mut r)?;
        let len = r.take_usize()?;
        let mut members = Vec::new();
        for _ in 0..len {
            members.push(Search::<P>::take_individual(&mut r)?);
        }
        if members.len() != self.search.population.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot population of {len} does not match the configured size of {}",
                self.search.population.len()
            )));
        }
        let kind = r.take_u8()?;
        match (&mut self.backend, kind) {
            (Backend::Virtual(v), 0) => {
                let mut cost_state = [0u64; 4];
                for word in &mut cost_state {
                    *word = r.take_u64()?;
                }
                let cost_spare = r.take_opt_f64()?;
                let clock = r.take_f64()?;
                let nodes = r.take_usize()?;
                if nodes != v.in_flight.len() {
                    return Err(SnapshotError::Invalid(format!(
                        "snapshot cluster of {nodes} nodes does not match the configured {}",
                        v.in_flight.len()
                    )));
                }
                let mut free_at = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    free_at.push(r.take_f64()?);
                }
                let link_free = r.take_f64()?;
                let mut in_flight = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    if r.take_bool()? {
                        let genome = P::Genome::decode(&mut r)?;
                        let done_at = r.take_f64()?;
                        in_flight.push(Some(InFlight { genome, done_at }));
                    } else {
                        in_flight.push(None);
                    }
                }
                r.finish()?;
                v.cost_rng = Rng64::from_snapshot_state(cost_state, cost_spare);
                v.clock = clock;
                v.sim.import_state(free_at, link_free);
                v.in_flight = in_flight;
            }
            (Backend::Threaded(t), 1) => {
                let outstanding = r.take_usize()?;
                let mut backlog = VecDeque::with_capacity(outstanding);
                for _ in 0..outstanding {
                    backlog.push_back(P::Genome::decode(&mut r)?);
                }
                r.finish()?;
                // Orphan any tasks currently on the workers: their reports
                // no longer match a slot id and will be dropped on arrival.
                for slot in &mut t.slots {
                    slot.in_flight = None;
                }
                t.backlog = backlog;
            }
            _ => {
                return Err(SnapshotError::Invalid(format!(
                    "snapshot backend kind {kind} does not match the configured backend"
                )));
            }
        }
        let s = &mut self.search;
        s.generation = generation;
        s.evaluations = evaluations;
        s.stagnant_generations = stagnant_generations;
        s.folded_in_step = folded_in_step;
        s.fold_seq = fold_seq;
        s.optimum_traced = optimum_traced;
        s.improved_in_step = improved_in_step;
        s.rng = Rng64::from_snapshot_state(state, spare);
        s.best_ever = best_ever;
        s.population = Population::new(members);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

enum BackendConfig {
    Virtual {
        spec: ClusterSpec,
        cost: EvalCostModel,
    },
    Threaded {
        workers: usize,
        faults: Option<FaultPlan>,
        heartbeat: Duration,
    },
}

/// Builder for [`AsyncSteadyStateGa`]; see [`AsyncSteadyStateGa::builder`].
pub struct AsyncSteadyBuilder<P: Problem> {
    problem: Arc<P>,
    seed: u64,
    pop_size: usize,
    crossover_rate: f64,
    replacement: ReplacementPolicy,
    selection: Option<Box<dyn Selection<P::Genome>>>,
    crossover: Option<Box<dyn Crossover<P::Genome>>>,
    mutation: Option<Box<dyn Mutation<P::Genome>>>,
    backend: BackendConfig,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem> AsyncSteadyBuilder<P> {
    fn new(problem: P) -> Self {
        Self {
            problem: Arc::new(problem),
            seed: 0,
            pop_size: 100,
            crossover_rate: 0.9,
            replacement: ReplacementPolicy::WorstIfBetter,
            selection: None,
            crossover: None,
            mutation: None,
            backend: BackendConfig::Virtual {
                spec: ClusterSpec {
                    speeds: vec![1.0; 4],
                    network: pga_cluster::NetworkProfile::SharedMemory,
                },
                cost: EvalCostModel::Fixed(1e-3),
            },
            recorder: None,
        }
    }

    /// RNG seed (drives population init, variation, and the arrival log).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Population size (and folds per generation-equivalent).
    #[must_use]
    pub fn pop_size(mut self, n: usize) -> Self {
        self.pop_size = n;
        self
    }

    /// Probability an offspring comes from crossover rather than cloning.
    #[must_use]
    pub fn crossover_rate(mut self, rate: f64) -> Self {
        self.crossover_rate = rate;
        self
    }

    /// Steady-state replacement policy for folded results.
    #[must_use]
    pub fn replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Parent selection operator.
    #[must_use]
    pub fn selection(mut self, s: impl Selection<P::Genome> + 'static) -> Self {
        self.selection = Some(Box::new(s));
        self
    }

    /// Crossover operator.
    #[must_use]
    pub fn crossover(mut self, c: impl Crossover<P::Genome> + 'static) -> Self {
        self.crossover = Some(Box::new(c));
        self
    }

    /// Mutation operator.
    #[must_use]
    pub fn mutation(mut self, m: impl Mutation<P::Genome> + 'static) -> Self {
        self.mutation = Some(Box::new(m));
        self
    }

    /// Virtual backend: evaluations dispatched through the streaming
    /// cluster simulator with per-task costs from `cost`. Deterministic;
    /// the engine reports [`Clock::Virtual`].
    #[must_use]
    pub fn virtual_cluster(mut self, spec: ClusterSpec, cost: EvalCostModel) -> Self {
        self.backend = BackendConfig::Virtual { spec, cost };
        self
    }

    /// Threaded backend: `workers` long-lived evaluation threads (the
    /// resilient worker loop). Fold order follows real arrival order.
    #[must_use]
    pub fn threads(mut self, workers: usize) -> Self {
        self.backend = BackendConfig::Threaded {
            workers,
            faults: None,
            heartbeat: DEFAULT_HEARTBEAT,
        };
        self
    }

    /// Seeded fault injection for the threaded backend (stalls via
    /// `delay_per_task`, deaths, panics). Applied at [`Self::build`]; calls
    /// before [`Self::threads`] are overwritten by it.
    #[must_use]
    pub fn thread_faults(mut self, plan: FaultPlan) -> Self {
        if let BackendConfig::Threaded { faults, .. } = &mut self.backend {
            *faults = Some(plan);
        }
        self
    }

    /// Attaches an event recorder from the start of the run.
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Validates the configuration and builds the engine (evaluating the
    /// initial population on the master).
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] / [`ConfigError::MissingComponent`]
    /// on bad sizes, rates, missing operators, worker count 0, or a fault
    /// plan that does not cover every worker.
    pub fn build(self) -> Result<AsyncSteadyStateGa<P>, ConfigError> {
        if self.pop_size < 2 {
            return Err(ConfigError::InvalidParameter {
                name: "pop_size",
                message: format!("must be at least 2, got {}", self.pop_size),
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(ConfigError::InvalidParameter {
                name: "crossover_rate",
                message: format!("must be in [0, 1], got {}", self.crossover_rate),
            });
        }
        let selection = self
            .selection
            .ok_or(ConfigError::MissingComponent("selection"))?;
        let crossover = self
            .crossover
            .ok_or(ConfigError::MissingComponent("crossover"))?;
        let mutation = self
            .mutation
            .ok_or(ConfigError::MissingComponent("mutation"))?;

        let mut rng = Rng64::new(self.seed);
        let mut members = Vec::with_capacity(self.pop_size);
        for _ in 0..self.pop_size {
            let genome = self.problem.random_genome(&mut rng);
            let fitness = self.problem.evaluate(&genome);
            members.push(Individual::evaluated(genome, fitness));
        }
        let mut population = Population::new(members);
        population.refresh_fitness();
        let best_ever = population.best(self.problem.objective()).clone();

        let backend = match self.backend {
            BackendConfig::Virtual { spec, cost } => {
                let nodes = spec.len();
                Backend::Virtual(VirtualBackend {
                    sim: AsyncDispatchSim::new(spec),
                    cost_model: cost,
                    cost_rng: Rng64::new(self.seed ^ COST_STREAM_SALT),
                    clock: 0.0,
                    in_flight: (0..nodes).map(|_| None).collect(),
                })
            }
            BackendConfig::Threaded {
                workers,
                faults,
                heartbeat,
            } => {
                if workers == 0 {
                    return Err(ConfigError::InvalidParameter {
                        name: "workers",
                        message: "must spawn at least one worker".into(),
                    });
                }
                let plan = faults.unwrap_or_else(|| FaultPlan::none(workers));
                if plan.len() != workers {
                    return Err(ConfigError::InvalidParameter {
                        name: "faults",
                        message: format!(
                            "fault plan covers {} workers, engine has {workers}",
                            plan.len()
                        ),
                    });
                }
                let (reports_tx, reports_rx) = unbounded();
                let mut slots = Vec::with_capacity(workers);
                for id in 0..workers {
                    let (tx, rx) = unbounded();
                    let handle = spawn_worker(
                        id,
                        Arc::clone(&self.problem),
                        plan.fault(id).clone(),
                        rx,
                        reports_tx.clone(),
                        heartbeat,
                    );
                    slots.push(WorkerSlot {
                        tx: Some(tx),
                        handle: Some(handle),
                        in_flight: None,
                    });
                }
                drop(reports_tx);
                Backend::Threaded(ThreadedBackend {
                    slots,
                    reports: reports_rx,
                    started: Instant::now(),
                    backlog: VecDeque::new(),
                    next_task: 0,
                })
            }
        };

        Ok(AsyncSteadyStateGa {
            search: Search {
                problem: self.problem,
                selection,
                crossover,
                mutation,
                replacement: self.replacement,
                crossover_rate: self.crossover_rate,
                seed: self.seed,
                rng,
                evaluations: self.pop_size as u64,
                population,
                generation: 0,
                folded_in_step: 0,
                fold_seq: 0,
                improved_in_step: false,
                stagnant_generations: 0,
                best_ever,
                optimum_traced: false,
                trace_island: 0,
                recorder: self.recorder,
            },
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::ops::{BitFlip, Tournament, Uniform};
    use pga_core::repr::BitString;
    use pga_core::{Objective, Termination};
    use pga_observe::RingRecorder;

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    fn virtual_engine(seed: u64) -> AsyncSteadyStateGa<OneMax> {
        AsyncSteadyStateGa::builder(OneMax(48))
            .seed(seed)
            .pop_size(32)
            .selection(Tournament::binary())
            .crossover(Uniform::half())
            .mutation(BitFlip::one_over_len(48))
            .virtual_cluster(
                ClusterSpec::heterogeneous(4, 3.0, 9, pga_cluster::NetworkProfile::FastEthernet)
                    .expect("spec"),
                EvalCostModel::bimodal(0.01, 0.2, 0.2).expect("model"),
            )
            .build()
            .expect("engine")
    }

    #[test]
    fn virtual_runs_are_deterministic() {
        let mut a = virtual_engine(7);
        let mut b = virtual_engine(7);
        for _ in 0..20 {
            let ra = a.step();
            let rb = b.step();
            assert_eq!(ra.best_ever.to_bits(), rb.best_ever.to_bits());
            assert_eq!(ra.evaluations, rb.evaluations);
        }
        assert_eq!(
            a.virtual_clock().expect("virtual").to_bits(),
            b.virtual_clock().expect("virtual").to_bits()
        );
    }

    #[test]
    fn virtual_clock_advances_and_engine_reports_it() {
        let mut e = virtual_engine(3);
        e.step();
        let clock = e.virtual_clock().expect("virtual");
        assert!(clock > 0.0);
        match e.clock() {
            Clock::Virtual(d) => assert!((d.as_secs_f64() - clock).abs() < 1e-9),
            Clock::Wall => panic!("virtual backend must report a virtual clock"),
        }
    }

    #[test]
    fn virtual_poll_step_reports_folded_work() {
        let mut e = virtual_engine(5);
        let poll = e.poll_step();
        assert_eq!(poll.folded, 32);
        assert_eq!(poll.report.expect("boundary").generation, 1);
    }

    #[test]
    fn virtual_search_improves() {
        let mut e = virtual_engine(11);
        let start = e.best_ever().fitness();
        for _ in 0..60 {
            e.step();
        }
        assert!(e.best_ever().fitness() > start);
    }

    #[test]
    fn threaded_backend_folds_everything() {
        let mut e = AsyncSteadyStateGa::builder(OneMax(32))
            .seed(1)
            .pop_size(24)
            .selection(Tournament::binary())
            .crossover(Uniform::half())
            .mutation(BitFlip::one_over_len(32))
            .threads(4)
            .build()
            .expect("engine");
        for gen in 1..=10 {
            let report = e.step();
            assert_eq!(report.generation, gen);
            assert_eq!(report.evaluations, 24 + gen * 24);
        }
        assert_eq!(e.live_workers(), Some(4));
    }

    #[test]
    fn threaded_run_reaches_optimum() {
        let mut e = AsyncSteadyStateGa::builder(OneMax(24))
            .seed(2)
            .pop_size(40)
            .selection(Tournament::binary())
            .crossover(Uniform::half())
            .mutation(BitFlip::one_over_len(24))
            .threads(3)
            .build()
            .expect("engine");
        let outcome = e
            .run(&Termination::new().until_optimum().max_generations(400))
            .expect("bounded");
        assert!(outcome.hit_optimum, "24-bit OneMax should be solved");
    }

    #[test]
    fn recorder_sees_async_folds() {
        let ring = RingRecorder::new(4096);
        let mut e = virtual_engine(13);
        e.set_recorder(ring.clone());
        e.record_run_started();
        e.step();
        e.record_run_finished();
        let folds = ring
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::AsyncFold { .. }))
            .count();
        assert_eq!(folds, 32, "one AsyncFold per folded evaluation");
    }

    #[test]
    fn builder_validates() {
        assert!(AsyncSteadyStateGa::builder(OneMax(8))
            .pop_size(1)
            .selection(Tournament::binary())
            .crossover(Uniform::half())
            .mutation(BitFlip::one_over_len(8))
            .build()
            .is_err());
        assert!(AsyncSteadyStateGa::builder(OneMax(8))
            .pop_size(10)
            .crossover(Uniform::half())
            .mutation(BitFlip::one_over_len(8))
            .build()
            .is_err());
        assert!(AsyncSteadyStateGa::builder(OneMax(8))
            .pop_size(10)
            .selection(Tournament::binary())
            .crossover(Uniform::half())
            .mutation(BitFlip::one_over_len(8))
            .threads(0)
            .build()
            .is_err());
    }
}
