//! Rayon-backed batch evaluation.

use pga_core::{Evaluator, Individual, Problem};
use pga_observe::{Event, EventKind, Recorder, Stopwatch};
use rayon::prelude::*;
use rayon::ThreadPool;
use std::sync::Mutex;

struct EvalTrace {
    recorder: Box<dyn Recorder>,
    batch: u64,
}

/// Evaluates fitness batches on a dedicated rayon thread pool.
///
/// Owning a private pool (instead of the global one) lets speedup sweeps
/// (E02) pin the worker count per configuration, and keeps island threads
/// from oversubscribing the machine when both models run in one process.
pub struct RayonEvaluator {
    pool: ThreadPool,
    workers: usize,
    trace: Option<Mutex<EvalTrace>>,
}

impl RayonEvaluator {
    /// Builds a pool with `workers` threads (≥ 1).
    ///
    /// # Panics
    /// Panics if the pool cannot be built (resource exhaustion).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("pga-ms-worker-{i}"))
            .build()
            .expect("failed to build rayon pool");
        Self {
            pool,
            workers,
            trace: None,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Attaches a recorder that receives one wall-clock-timed
    /// `EvaluationBatch` event per dispatched batch.
    ///
    /// Use this when the evaluator runs outside an instrumented engine; a
    /// `Ga` with its own recorder already times its batches, so attaching
    /// both double-counts `eval.batch_micros`.
    #[must_use]
    pub fn with_recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.trace = Some(Mutex::new(EvalTrace {
            recorder: Box::new(recorder),
            batch: 0,
        }));
        self
    }
}

impl<P: Problem> Evaluator<P> for RayonEvaluator {
    fn evaluate_batch(&self, problem: &P, members: &mut [Individual<P::Genome>]) -> u64 {
        let sw = Stopwatch::started_if(self.trace.is_some());
        let fresh = self.pool.install(|| {
            members
                .par_iter_mut()
                .map(|m| {
                    if m.fitness.is_none() {
                        m.fitness = Some(problem.evaluate(&m.genome));
                        1u64
                    } else {
                        0
                    }
                })
                .sum()
        });
        if let (Some(trace), Some(micros)) = (&self.trace, sw.elapsed_micros()) {
            let mut t = trace.lock().unwrap();
            t.batch += 1;
            let batch = t.batch;
            t.recorder.record(&Event::new(EventKind::EvaluationBatch {
                island: 0,
                batch,
                size: members.len() as u64,
                fresh,
                micros,
            }));
        }
        fresh
    }

    fn name(&self) -> &'static str {
        "rayon-master-slave"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::ops::{BitFlip, OnePoint, Tournament};
    use pga_core::{BitString, Ga, Objective, Rng64, Scheme, Termination};

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_values() {
        let p = OneMax(128);
        let mut rng = Rng64::new(1);
        let mut serial: Vec<Individual<BitString>> = (0..200)
            .map(|_| Individual::unevaluated(BitString::random(128, &mut rng)))
            .collect();
        let mut parallel = serial.clone();
        let n1 = pga_core::SerialEvaluator.evaluate_batch(&p, &mut serial);
        let n2 = RayonEvaluator::new(4).evaluate_batch(&p, &mut parallel);
        assert_eq!(n1, n2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.fitness(), b.fitness());
        }
    }

    #[test]
    fn skips_already_evaluated() {
        let p = OneMax(8);
        let mut members = vec![Individual::evaluated(BitString::ones(8), 8.0)];
        assert_eq!(RayonEvaluator::new(2).evaluate_batch(&p, &mut members), 0);
    }

    #[test]
    fn ga_with_rayon_evaluator_reaches_same_search_trajectory() {
        // The master-slave model must not change search behaviour: the same
        // seed yields the same per-generation best under 1 or 4 workers.
        let build = |workers: usize| {
            Ga::builder(OneMax(64))
                .seed(77)
                .pop_size(40)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(64))
                .scheme(Scheme::Generational { elitism: 1 })
                .evaluator(RayonEvaluator::new(workers))
                .build()
                .unwrap()
        };
        let mut a = build(1);
        let mut b = build(4);
        for _ in 0..15 {
            let (sa, sb) = (a.step(), b.step());
            assert_eq!(sa.pop.best, sb.pop.best);
            assert_eq!(sa.pop.mean, sb.pop.mean);
        }
    }

    #[test]
    fn solves_onemax_under_run() {
        let mut ga = Ga::builder(OneMax(64))
            .seed(3)
            .pop_size(60)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(64))
            .evaluator(RayonEvaluator::new(4))
            .build()
            .unwrap();
        let r = ga
            .run(&Termination::new().until_optimum().max_generations(500))
            .unwrap();
        assert!(r.hit_optimum);
    }
}
