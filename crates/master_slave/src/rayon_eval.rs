//! Rayon-backed batch evaluation.

use pga_core::{ConfigError, Evaluator, Individual, Problem};
use pga_observe::{Event, EventKind, Recorder, Stopwatch};
use rayon::prelude::*;
use rayon::{PoolStats, ThreadPool};
use std::sync::{Mutex, PoisonError};

struct EvalTrace {
    recorder: Box<dyn Recorder>,
    batch: u64,
    last_stats: PoolStats,
}

/// Evaluates fitness batches on a dedicated rayon thread pool.
///
/// Owning a private pool (instead of the global one) lets speedup sweeps
/// (E02) pin the worker count per configuration, and keeps island threads
/// from oversubscribing the machine when both models run in one process.
/// The pool's workers are persistent: a batch dispatch costs a queue
/// injection and (at worst) a few unparks, not thread spawns.
pub struct RayonEvaluator {
    pool: ThreadPool,
    workers: usize,
    min_chunk: usize,
    trace: Option<Mutex<EvalTrace>>,
}

impl RayonEvaluator {
    /// Builds a pool with `workers` threads (≥ 1).
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] on zero workers or when the pool
    /// cannot be built (resource exhaustion).
    pub fn new(workers: usize) -> Result<Self, ConfigError> {
        if workers == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "workers",
                message: "need at least one worker".into(),
            });
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("pga-ms-worker-{i}"))
            .build()
            .map_err(|e| ConfigError::InvalidParameter {
                name: "workers",
                message: format!("failed to build rayon pool: {e}"),
            })?;
        Ok(Self {
            pool,
            workers,
            min_chunk: 1,
            trace: None,
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the batch-size hint (see [`Evaluator::min_chunk`]): the pool
    /// stops splitting a batch once chunks reach this size. Raise it for
    /// cheap fitness functions where per-chunk dispatch would dominate.
    ///
    /// # Errors
    /// [`ConfigError::InvalidParameter`] if `min_chunk` is zero.
    pub fn with_min_chunk(mut self, min_chunk: usize) -> Result<Self, ConfigError> {
        if min_chunk == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "min_chunk",
                message: "must be at least 1".into(),
            });
        }
        self.min_chunk = min_chunk;
        Ok(self)
    }

    /// Telemetry snapshot of the evaluator's pool (lifetime counters).
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Attaches a recorder that receives one wall-clock-timed
    /// `EvaluationBatch` event plus one `PoolBatch` pool-health event per
    /// dispatched batch.
    ///
    /// Use this when the evaluator runs outside an instrumented engine; a
    /// `Ga` with its own recorder already times its batches, so attaching
    /// both double-counts `eval.batch_micros`.
    #[must_use]
    pub fn with_recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        let last_stats = self.pool.stats();
        self.trace = Some(Mutex::new(EvalTrace {
            recorder: Box::new(recorder),
            batch: 0,
            last_stats,
        }));
        self
    }
}

impl<P: Problem> Evaluator<P> for RayonEvaluator {
    fn evaluate_batch(&self, problem: &P, members: &mut [Individual<P::Genome>]) -> u64 {
        let sw = Stopwatch::started_if(self.trace.is_some());
        let min_chunk = self.min_chunk;
        let fresh = self.pool.install(|| {
            members
                .par_iter_mut()
                .with_min_len(min_chunk)
                .map(|m| {
                    if m.fitness.is_none() {
                        m.fitness = Some(problem.evaluate(&m.genome));
                        1u64
                    } else {
                        0
                    }
                })
                .sum()
        });
        if let (Some(trace), Some(micros)) = (&self.trace, sw.elapsed_micros()) {
            let stats = self.pool.stats();
            // Poison-tolerant: the trace state (recorder + counters) stays
            // usable even if a recording panicked on another thread.
            let mut t = trace.lock().unwrap_or_else(PoisonError::into_inner);
            t.batch += 1;
            let batch = t.batch;
            let delta = stats.delta(&t.last_stats);
            t.last_stats = stats;
            t.recorder.record(&Event::new(EventKind::EvaluationBatch {
                island: 0,
                batch,
                size: members.len() as u64,
                fresh,
                micros,
            }));
            t.recorder.record(&Event::new(EventKind::PoolBatch {
                island: 0,
                batch,
                workers: delta.workers,
                tasks: delta.tasks_executed,
                steals: delta.steals,
                parks: delta.parks,
                queue_micros: delta.queue_wait_micros,
            }));
        }
        fresh
    }

    fn name(&self) -> &'static str {
        "rayon-master-slave"
    }

    fn min_chunk(&self) -> usize {
        self.min_chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::ops::{BitFlip, OnePoint, Tournament};
    use pga_core::{BitString, Ga, Objective, Rng64, Scheme, Termination};

    struct OneMax(usize);
    impl Problem for OneMax {
        type Genome = BitString;
        fn name(&self) -> String {
            "onemax".into()
        }
        fn objective(&self) -> Objective {
            Objective::Maximize
        }
        fn evaluate(&self, g: &BitString) -> f64 {
            g.count_ones() as f64
        }
        fn random_genome(&self, rng: &mut Rng64) -> BitString {
            BitString::random(self.0, rng)
        }
        fn optimum(&self) -> Option<f64> {
            Some(self.0 as f64)
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_values() {
        let p = OneMax(128);
        let mut rng = Rng64::new(1);
        let mut serial: Vec<Individual<BitString>> = (0..200)
            .map(|_| Individual::unevaluated(BitString::random(128, &mut rng)))
            .collect();
        let mut parallel = serial.clone();
        let n1 = pga_core::SerialEvaluator.evaluate_batch(&p, &mut serial);
        let n2 = RayonEvaluator::new(4)
            .unwrap()
            .evaluate_batch(&p, &mut parallel);
        assert_eq!(n1, n2);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.fitness(), b.fitness());
        }
    }

    #[test]
    fn min_chunk_hint_bounds_dispatch_and_pool_events_flow() {
        use pga_observe::RingRecorder;
        let ring = RingRecorder::new(64);
        let eval = RayonEvaluator::new(4)
            .unwrap()
            .with_min_chunk(64)
            .unwrap()
            .with_recorder(ring.clone());
        assert_eq!(Evaluator::<OneMax>::min_chunk(&eval), 64);
        let p = OneMax(32);
        let mut rng = Rng64::new(9);
        let mut members: Vec<Individual<BitString>> = (0..256)
            .map(|_| Individual::unevaluated(BitString::random(32, &mut rng)))
            .collect();
        assert_eq!(eval.evaluate_batch(&p, &mut members), 256);
        let events = ring.events();
        assert_eq!(events[0].kind.name(), "evaluation_batch");
        assert_eq!(events[1].kind.name(), "pool_batch");
        match events[1].kind {
            EventKind::PoolBatch { workers, tasks, .. } => {
                assert_eq!(workers, 4);
                // 256 members with chunks of >= 64: at most 4 leaf tasks.
                assert!((1..=4).contains(&tasks), "tasks = {tasks}");
            }
            ref k => panic!("unexpected kind {k:?}"),
        }
        assert!(eval.pool_stats().calls >= 1);
    }

    #[test]
    fn skips_already_evaluated() {
        let p = OneMax(8);
        let mut members = vec![Individual::evaluated(BitString::ones(8), 8.0)];
        assert_eq!(
            RayonEvaluator::new(2)
                .unwrap()
                .evaluate_batch(&p, &mut members),
            0
        );
    }

    #[test]
    fn ga_with_rayon_evaluator_reaches_same_search_trajectory() {
        // The master-slave model must not change search behaviour: the same
        // seed yields the same per-generation best under 1 or 4 workers.
        let build = |workers: usize| {
            Ga::builder(OneMax(64))
                .seed(77)
                .pop_size(40)
                .selection(Tournament::binary())
                .crossover(OnePoint)
                .mutation(BitFlip::one_over_len(64))
                .scheme(Scheme::Generational { elitism: 1 })
                .evaluator(RayonEvaluator::new(workers).unwrap())
                .build()
                .unwrap()
        };
        let mut a = build(1);
        let mut b = build(4);
        for _ in 0..15 {
            let (sa, sb) = (a.step(), b.step());
            assert_eq!(sa.best, sb.best);
            assert_eq!(sa.mean, sb.mean);
        }
    }

    #[test]
    fn solves_onemax_under_run() {
        let mut ga = Ga::builder(OneMax(64))
            .seed(3)
            .pop_size(60)
            .selection(Tournament::binary())
            .crossover(OnePoint)
            .mutation(BitFlip::one_over_len(64))
            .evaluator(RayonEvaluator::new(4).unwrap())
            .build()
            .unwrap();
        let r = ga
            .run(&Termination::new().until_optimum().max_generations(500))
            .unwrap();
        assert!(r.hit_optimum);
    }
}
