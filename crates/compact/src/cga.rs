//! The single-node compact GA: a probability vector evolved by pairwise
//! competitions.

use std::sync::Arc;
use std::time::Duration;

use pga_core::driver::{Driver, Engine, RunOutcome, StepReport};
use pga_core::individual::Individual;
use pga_core::problem::{Objective, Problem};
use pga_core::repr::{BitString, Genome};
use pga_core::rng::Rng64;
use pga_core::snapshot::{Snapshot, SnapshotError, SnapshotWriter};
use pga_core::termination::{Progress, Termination};
use pga_core::ConfigError;
use pga_observe::{Event, EventKind, Recorder};

/// Samples one genome from a probability vector (one RNG draw per locus,
/// so the draw count — and hence the stream — is a pure function of the
/// genome length).
pub(crate) fn sample_genome(p: &[f64], rng: &mut Rng64) -> BitString {
    let mut g = BitString::zeros(p.len());
    for (i, &pi) in p.iter().enumerate() {
        if rng.chance(pi) {
            g.set(i, true);
        }
    }
    g
}

/// Shifts every locus where `winner` and `loser` disagree by `step`
/// toward the winner, clamping to `[0, 1]`. Returns how many loci moved.
pub(crate) fn update_slice(
    p: &mut [f64],
    winner: &BitString,
    loser: &BitString,
    offset: usize,
    step: f64,
) -> usize {
    let mut moved = 0;
    for (i, pi) in p.iter_mut().enumerate() {
        let w = winner.get(offset + i);
        if w != loser.get(offset + i) {
            *pi = if w {
                (*pi + step).min(1.0)
            } else {
                (*pi - step).max(0.0)
            };
            moved += 1;
        }
    }
    moved
}

/// `true` once every entry of the vector has fixated at 0 or 1 — the
/// model can no longer move, so further steps replay the same genome.
pub(crate) fn converged(p: &[f64]) -> bool {
    p.iter().all(|&pi| pi <= 0.0 || pi >= 1.0)
}

/// The compact GA (Harik–Lobo–Goldberg): population replaced by a
/// probability vector over loci.
///
/// One [`step`](CompactGa::step) is one pairwise competition: sample two
/// genomes from the model, evaluate both (2 evaluations), and move every
/// disagreeing locus `1/n` toward the winner, where `n` is the *virtual*
/// population size. State is `len` floats + one RNG — **O(genome)** memory
/// no matter how large `n` is.
///
/// Once the vector fixates (every entry 0 or 1) the engine reports
/// [`halted`](Engine::halted): the model is absorbing, so continuing would
/// only replay the converged genome.
pub struct CompactGa<P: Problem<Genome = BitString>> {
    problem: Arc<P>,
    p: Vec<f64>,
    virtual_pop: usize,
    rng: Rng64,
    seed: u64,
    generation: u64,
    evaluations: u64,
    stagnant_generations: u64,
    optimum_traced: bool,
    best_ever: Individual<BitString>,
    recorder: Option<Box<dyn Recorder>>,
    trace_island: u32,
}

impl<P: Problem<Genome = BitString>> CompactGa<P> {
    /// Fresh builder; see [`CompactGaBuilder`].
    #[must_use]
    pub fn builder(problem: P) -> CompactGaBuilder<P> {
        CompactGaBuilder::new(problem)
    }

    /// The probability vector (one marginal per locus).
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.p
    }

    /// The virtual population size `n` (update step is `1/n`).
    #[must_use]
    pub fn virtual_pop(&self) -> usize {
        self.virtual_pop
    }

    /// Competitions completed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Fitness evaluations spent (2 per competition + 1 at startup).
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Best individual ever observed.
    #[must_use]
    pub fn best_ever(&self) -> &Individual<BitString> {
        &self.best_ever
    }

    /// The seed the engine was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Model state size in bytes: the probability vector alone — the
    /// O(genome) memory argument in one number.
    #[must_use]
    pub fn model_bytes(&self) -> usize {
        self.p.len() * std::mem::size_of::<f64>()
    }

    /// `true` once every marginal has fixated at 0 or 1.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        converged(&self.p)
    }

    /// Attaches an observability recorder (replacing any existing one).
    /// Recorders only observe: attaching or detaching one never changes
    /// the RNG stream or the search trajectory.
    pub fn set_recorder(&mut self, recorder: impl Recorder + 'static) {
        self.recorder = Some(Box::new(recorder));
    }

    /// Detaches and returns the recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// `true` when a recorder is attached.
    #[must_use]
    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Island id stamped on this engine's events.
    pub fn set_trace_island(&mut self, island: u32) {
        self.trace_island = island;
    }

    fn emit(&mut self, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.record(&Event::new(kind));
        }
    }

    fn track_best(&mut self, genome: &BitString, fitness: f64) -> bool {
        if self
            .problem
            .objective()
            .better(fitness, self.best_ever.fitness())
        {
            self.best_ever = Individual::evaluated(genome.clone(), fitness);
            true
        } else {
            false
        }
    }

    fn report(&self, best: f64, mean: f64) -> StepReport {
        StepReport {
            generation: self.generation,
            evaluations: self.evaluations,
            best,
            mean,
            best_ever: self.best_ever.fitness(),
        }
    }

    /// Runs until the termination rule fires via the shared [`Driver`].
    /// Returns an error if the rule is unbounded.
    pub fn run(
        &mut self,
        termination: &Termination,
    ) -> Result<RunOutcome<Individual<BitString>>, ConfigError> {
        Driver::new(termination.clone()).run(self)
    }

    /// One competition: sample two, evaluate, shift the model toward the
    /// winner.
    pub fn step(&mut self) -> StepReport {
        let a = sample_genome(&self.p, &mut self.rng);
        let b = sample_genome(&self.p, &mut self.rng);
        let fa = self.problem.evaluate(&a);
        let fb = self.problem.evaluate(&b);
        self.evaluations += 2;
        let (winner, loser, fw, fl) = if self.problem.objective().better(fb, fa) {
            (&b, &a, fb, fa)
        } else {
            (&a, &b, fa, fb)
        };
        let step = 1.0 / self.virtual_pop as f64;
        update_slice(&mut self.p, winner, loser, 0, step);
        let improved = self.track_best(winner, fw);
        if improved {
            self.stagnant_generations = 0;
        } else {
            self.stagnant_generations += 1;
        }
        self.generation += 1;
        let report = self.report(fw, 0.5 * (fw + fl));
        if self.recorder.is_some() {
            self.emit(EventKind::GenerationCompleted {
                island: self.trace_island,
                generation: report.generation,
                evaluations: report.evaluations,
                best: report.best,
                mean: report.mean,
                best_ever: report.best_ever,
            });
        }
        // Tracked unconditionally so snapshot bytes do not depend on
        // whether a recorder is attached; `emit` no-ops without one.
        if !self.optimum_traced && self.problem.is_optimal(report.best_ever) {
            self.optimum_traced = true;
            self.emit(EventKind::CheckpointHit {
                island: self.trace_island,
                generation: report.generation,
                best: report.best_ever,
            });
        }
        report
    }
}

impl<P: Problem<Genome = BitString>> Engine for CompactGa<P> {
    type Best = Individual<BitString>;

    fn engine_id(&self) -> &'static str {
        "cga"
    }

    fn step(&mut self) -> StepReport {
        CompactGa::step(self)
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        Progress {
            generations: self.generation,
            evaluations: self.evaluations,
            best_fitness: self.best_ever.fitness(),
            best_is_optimal: self.problem.is_optimal(self.best_ever.fitness()),
            stagnant_generations: self.stagnant_generations,
            elapsed,
            maximizing: self.problem.objective() == Objective::Maximize,
            cost_units: self.evaluations as f64,
        }
    }

    fn best(&self) -> Self::Best {
        self.best_ever.clone()
    }

    fn halted(&self) -> bool {
        self.is_converged()
    }

    fn record_run_started(&mut self) {
        if self.recorder.is_some() {
            let problem = self.problem.name();
            let seed = self.seed;
            self.emit(EventKind::RunStarted {
                island: self.trace_island,
                engine: "cga".into(),
                problem,
                seed,
            });
        }
    }

    fn record_run_finished(&mut self) {
        if self.recorder.is_some() {
            let best = self.best_ever.fitness();
            self.emit(EventKind::RunFinished {
                island: self.trace_island,
                generations: self.generation,
                evaluations: self.evaluations,
                best,
                hit_optimum: self.problem.is_optimal(best),
            });
            if let Some(r) = &mut self.recorder {
                r.flush();
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.generation);
        w.put_u64(self.evaluations);
        w.put_u64(self.stagnant_generations);
        w.put_bool(self.optimum_traced);
        let (s, spare) = self.rng.snapshot_state();
        for word in s {
            w.put_u64(word);
        }
        w.put_opt_f64(spare);
        self.best_ever.genome.encode(&mut w);
        w.put_opt_f64(self.best_ever.fitness);
        w.put_usize(self.virtual_pop);
        w.put_usize(self.p.len());
        for &pi in &self.p {
            w.put_f64(pi);
        }
        Snapshot::new("cga", w.into_bytes())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = snapshot.reader_for("cga")?;
        let generation = r.take_u64()?;
        let evaluations = r.take_u64()?;
        let stagnant_generations = r.take_u64()?;
        let optimum_traced = r.take_bool()?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.take_u64()?;
        }
        let spare = r.take_opt_f64()?;
        let genome = BitString::decode(&mut r)?;
        let fitness = r.take_opt_f64()?;
        let virtual_pop = r.take_usize()?;
        let len = r.take_usize()?;
        let mut p = Vec::with_capacity(len);
        for _ in 0..len {
            p.push(r.take_f64()?);
        }
        r.finish()?;
        if virtual_pop != self.virtual_pop {
            return Err(SnapshotError::Invalid(format!(
                "snapshot virtual population {virtual_pop} does not match \
                 the configured {}",
                self.virtual_pop
            )));
        }
        if p.len() != self.p.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot probability vector of {len} loci does not match \
                 the configured genome length of {}",
                self.p.len()
            )));
        }
        self.generation = generation;
        self.evaluations = evaluations;
        self.stagnant_generations = stagnant_generations;
        self.optimum_traced = optimum_traced;
        self.rng = Rng64::from_snapshot_state(s, spare);
        self.best_ever = Individual { genome, fitness };
        self.p = p;
        Ok(())
    }
}

/// Validating builder for [`CompactGa`], following the workspace's
/// builder façade: every parameter is checked at [`build`] time and
/// violations surface as typed [`ConfigError`]s, never panics.
///
/// Defaults: virtual population 127, seed 0.
///
/// [`build`]: CompactGaBuilder::build
pub struct CompactGaBuilder<P: Problem<Genome = BitString>> {
    problem: Arc<P>,
    virtual_pop: usize,
    seed: u64,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem<Genome = BitString>> CompactGaBuilder<P> {
    /// Fresh builder with conventional defaults.
    #[must_use]
    pub fn new(problem: P) -> Self {
        Self::from_shared(Arc::new(problem))
    }

    /// Shares an existing `Arc`'d problem.
    #[must_use]
    pub fn from_shared(problem: Arc<P>) -> Self {
        Self {
            problem,
            virtual_pop: 127,
            seed: 0,
            recorder: None,
        }
    }

    /// Virtual population size `n`: each competition shifts disagreeing
    /// loci by `1/n`. Must be at least 2.
    #[must_use]
    pub fn virtual_pop(mut self, n: usize) -> Self {
        self.virtual_pop = n;
        self
    }

    /// RNG seed; the whole run is a pure function of it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an observability recorder at build time.
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Validates the configuration and constructs the engine.
    ///
    /// Spends one evaluation seeding `best_ever` with a genome sampled
    /// from the initial (uniform) model, so the engine always has a best
    /// individual to report.
    pub fn build(self) -> Result<CompactGa<P>, ConfigError> {
        if self.virtual_pop < 2 {
            return Err(ConfigError::InvalidParameter {
                name: "virtual_pop",
                message: format!(
                    "virtual population must be at least 2, got {}",
                    self.virtual_pop
                ),
            });
        }
        let mut rng = Rng64::new(self.seed);
        let len = self.problem.random_genome(&mut Rng64::new(0)).len();
        if len == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "genome_len",
                message: "problem produces empty genomes".into(),
            });
        }
        let p = vec![0.5; len];
        let first = sample_genome(&p, &mut rng);
        let fitness = self.problem.evaluate(&first);
        Ok(CompactGa {
            problem: self.problem,
            p,
            virtual_pop: self.virtual_pop,
            rng,
            seed: self.seed,
            generation: 0,
            evaluations: 1,
            stagnant_generations: 0,
            optimum_traced: false,
            best_ever: Individual::evaluated(first, fitness),
            recorder: self.recorder,
            trace_island: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_core::termination::Termination;
    use pga_problems::OneMax;

    fn engine(seed: u64) -> CompactGa<OneMax> {
        CompactGa::builder(OneMax::new(64))
            .seed(seed)
            .virtual_pop(50)
            .build()
            .expect("valid config")
    }

    #[test]
    fn solves_onemax() {
        let mut ga = engine(7);
        let outcome = ga
            .run(&Termination::new().max_generations(20_000))
            .expect("bounded rule");
        assert!(
            outcome.best.fitness() >= 60.0,
            "cGA should approach the OneMax optimum, got {}",
            outcome.best.fitness()
        );
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let mut a = engine(11);
        let mut b = engine(11);
        for _ in 0..500 {
            assert_eq!(a.step(), b.step());
        }
        assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
    }

    #[test]
    fn model_memory_is_o_genome() {
        let small = CompactGa::builder(OneMax::new(64))
            .virtual_pop(10)
            .build()
            .expect("valid");
        let huge = CompactGa::builder(OneMax::new(64))
            .virtual_pop(1_000_000)
            .build()
            .expect("valid");
        assert_eq!(small.model_bytes(), huge.model_bytes());
        assert_eq!(huge.model_bytes(), 64 * 8);
    }

    #[test]
    fn converged_model_reports_halted() {
        let mut ga = engine(3);
        for _ in 0..200_000 {
            if ga.is_converged() {
                break;
            }
            ga.step();
        }
        assert!(ga.is_converged(), "cGA should fixate eventually");
        assert!(Engine::halted(&ga));
    }

    #[test]
    fn builder_rejects_degenerate_virtual_pop() {
        let err = CompactGa::builder(OneMax::new(8)).virtual_pop(1).build();
        assert!(matches!(
            err,
            Err(ConfigError::InvalidParameter {
                name: "virtual_pop",
                ..
            })
        ));
    }

    #[test]
    fn snapshot_roundtrip_restores_vector_exactly() {
        let mut ga = engine(5);
        for _ in 0..100 {
            ga.step();
        }
        let snap = ga.snapshot();
        let mut fresh = engine(5);
        fresh.restore(&snap).expect("restorable");
        assert_eq!(fresh.probabilities(), ga.probabilities());
        assert_eq!(fresh.snapshot().to_bytes(), snap.to_bytes());
    }

    #[test]
    fn wrong_length_snapshot_is_rejected() {
        let ga = engine(5);
        let snap = ga.snapshot();
        let mut other = CompactGa::builder(OneMax::new(32))
            .seed(5)
            .virtual_pop(50)
            .build()
            .expect("valid");
        assert!(other.restore(&snap).is_err());
    }
}
