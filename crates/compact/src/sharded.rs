//! The sharded compact GA (pcGA): the probability vector partitioned
//! across simulated cluster nodes.
//!
//! Lobo–Lima–Mártires' architecture: node `i` owns a contiguous slice of
//! the probability vector, samples its slice of each competitor with its
//! *own* RNG stream, and ships only the sampled bits to the master. The
//! master concatenates the slices, evaluates the two competitors, and
//! broadcasts the winner's identity (one byte); every node then updates
//! its slice locally. **Individuals never cross the wire** — only model
//! messages — so per-node memory is O(genome / nodes) and per-step wire
//! traffic is O(genome) total, independent of the virtual population size.
//!
//! Time is virtual ([`Clock::Virtual`]), advanced by a deterministic cost
//! model over a [`ClusterSpec`]: per-bit sampling cost scaled by node
//! speed, a log-depth gather/broadcast tree over the cluster's
//! [`NetworkProfile`](pga_cluster::NetworkProfile),
//! and a per-evaluation cost on the master. The whole run is a pure
//! function of (spec, seed), so snapshots are trivially bit-identical.

use std::sync::Arc;
use std::time::Duration;

use pga_cluster::ClusterSpec;
use pga_core::driver::{Clock, Driver, Engine, RunOutcome, StepReport};
use pga_core::individual::Individual;
use pga_core::problem::{Objective, Problem};
use pga_core::repr::{BitString, Genome};
use pga_core::rng::Rng64;
use pga_core::snapshot::{Snapshot, SnapshotError, SnapshotWriter};
use pga_core::termination::{Progress, Termination};
use pga_core::ConfigError;
use pga_observe::{Event, EventKind, Recorder};

use crate::cga::{converged, sample_genome, update_slice};

/// Virtual seconds to sample one locus on a unit-speed node.
const BIT_SAMPLE_COST_S: f64 = 2e-8;

/// Cumulative wire accounting for a pcGA run: every byte and message that
/// crossed the simulated network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total payload bytes shipped (sampled slices up, winner ids down).
    pub bytes: u64,
    /// Total messages (one gather + one broadcast per node per step).
    pub messages: u64,
}

/// One node's share of the model: a contiguous probability slice plus a
/// private RNG stream.
struct Shard {
    /// First locus this shard owns.
    lo: usize,
    /// Marginals for the owned loci.
    p: Vec<f64>,
    /// The node's private stream (forked from the job seed at build).
    rng: Rng64,
}

/// The massively parallel compact GA: [`CompactGa`](crate::CompactGa)'s
/// model sharded across the nodes of a simulated cluster.
///
/// One [`step`](ShardedCompactGa::step) is one competition, executed as a
/// sample → gather → evaluate → broadcast → update round across all
/// nodes. Engine id and snapshot tag are `"pcga"`.
pub struct ShardedCompactGa<P: Problem<Genome = BitString>> {
    problem: Arc<P>,
    shards: Vec<Shard>,
    len: usize,
    virtual_pop: usize,
    cluster: ClusterSpec,
    eval_cost_s: f64,
    seed: u64,
    generation: u64,
    evaluations: u64,
    stagnant_generations: u64,
    optimum_traced: bool,
    clock_s: f64,
    wire: WireStats,
    best_ever: Individual<BitString>,
    recorder: Option<Box<dyn Recorder>>,
    trace_island: u32,
}

impl<P: Problem<Genome = BitString>> ShardedCompactGa<P> {
    /// Fresh builder; see [`ShardedCompactGaBuilder`].
    #[must_use]
    pub fn builder(problem: P) -> ShardedCompactGaBuilder<P> {
        ShardedCompactGaBuilder::new(problem)
    }

    /// Number of simulated nodes the vector is sharded over.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// Competitions completed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Fitness evaluations spent.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Best individual ever observed.
    #[must_use]
    pub fn best_ever(&self) -> &Individual<BitString> {
        &self.best_ever
    }

    /// Virtual seconds elapsed.
    #[must_use]
    pub fn elapsed_virtual(&self) -> f64 {
        self.clock_s
    }

    /// Cumulative wire traffic.
    #[must_use]
    pub fn wire(&self) -> WireStats {
        self.wire
    }

    /// Largest per-node model footprint in bytes: the shard's probability
    /// slice — O(genome / nodes), the paper's memory argument.
    #[must_use]
    pub fn per_node_model_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.p.len() * std::mem::size_of::<f64>())
            .max()
            .unwrap_or(0)
    }

    /// Reassembles the full probability vector (master-side view; costs
    /// nothing on the simulated wire — diagnostics only).
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.len);
        for s in &self.shards {
            p.extend_from_slice(&s.p);
        }
        p
    }

    /// `true` once every marginal has fixated at 0 or 1.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.shards.iter().all(|s| converged(&s.p))
    }

    /// Attaches an observability recorder (replacing any existing one).
    /// Recorders only observe and never perturb the trajectory.
    pub fn set_recorder(&mut self, recorder: impl Recorder + 'static) {
        self.recorder = Some(Box::new(recorder));
    }

    /// Detaches and returns the recorder, if any.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// `true` when a recorder is attached.
    #[must_use]
    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Island id stamped on this engine's events.
    pub fn set_trace_island(&mut self, island: u32) {
        self.trace_island = island;
    }

    fn emit(&mut self, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.record(&Event::new(kind));
        }
    }

    /// Runs until the termination rule fires via the shared [`Driver`].
    /// Returns an error if the rule is unbounded.
    pub fn run(
        &mut self,
        termination: &Termination,
    ) -> Result<RunOutcome<Individual<BitString>>, ConfigError> {
        Driver::new(termination.clone()).run(self)
    }

    /// One sample → gather → evaluate → broadcast → update round.
    pub fn step(&mut self) -> StepReport {
        let nodes = self.shards.len();
        let net = self.cluster.network;
        // --- sample: every node draws its slice of both competitors from
        // its own stream; nodes run in parallel, so the phase costs the
        // slowest node's time.
        let mut a = BitString::zeros(self.len);
        let mut b = BitString::zeros(self.len);
        let mut t_sample: f64 = 0.0;
        let mut gather_bytes: u64 = 0;
        for (node, shard) in self.shards.iter_mut().enumerate() {
            for (i, &pi) in shard.p.iter().enumerate() {
                if shard.rng.chance(pi) {
                    a.set(shard.lo + i, true);
                }
            }
            for (i, &pi) in shard.p.iter().enumerate() {
                if shard.rng.chance(pi) {
                    b.set(shard.lo + i, true);
                }
            }
            let speed = self.cluster.speeds[node];
            t_sample = t_sample.max(2.0 * shard.p.len() as f64 * BIT_SAMPLE_COST_S / speed);
            gather_bytes += 2 * shard.p.len().div_ceil(8) as u64;
        }
        // --- gather: sampled slices flow up a log-depth reduction tree;
        // the payload crosses the master link once.
        let depth = nodes.next_power_of_two().trailing_zeros().max(1) as f64;
        let t_gather = net.transfer_time(gather_bytes) + net.latency() * (depth - 1.0);
        // --- evaluate: the master scores both competitors.
        let fa = self.problem.evaluate(&a);
        let fb = self.problem.evaluate(&b);
        self.evaluations += 2;
        let t_eval = 2.0 * self.eval_cost_s / self.cluster.speeds[0];
        // --- broadcast: one byte (the winner's identity) to every node.
        let t_bcast = net.transfer_time(nodes as u64) + net.latency() * (depth - 1.0);
        self.wire.bytes += gather_bytes + nodes as u64;
        self.wire.messages += 2 * nodes as u64;
        // --- update: each node shifts its own loci; no further traffic.
        let (winner, loser, fw, fl) = if self.problem.objective().better(fb, fa) {
            (&b, &a, fb, fa)
        } else {
            (&a, &b, fa, fb)
        };
        let step = 1.0 / self.virtual_pop as f64;
        let mut t_update: f64 = 0.0;
        for (node, shard) in self.shards.iter_mut().enumerate() {
            update_slice(&mut shard.p, winner, loser, shard.lo, step);
            let speed = self.cluster.speeds[node];
            t_update = t_update.max(shard.p.len() as f64 * BIT_SAMPLE_COST_S / speed);
        }
        self.clock_s += t_sample + t_gather + t_eval + t_bcast + t_update;
        // --- bookkeeping mirrors `CompactGa`.
        let improved = self
            .problem
            .objective()
            .better(fw, self.best_ever.fitness());
        if improved {
            self.best_ever = Individual::evaluated(winner.clone(), fw);
            self.stagnant_generations = 0;
        } else {
            self.stagnant_generations += 1;
        }
        self.generation += 1;
        let report = StepReport {
            generation: self.generation,
            evaluations: self.evaluations,
            best: fw,
            mean: 0.5 * (fw + fl),
            best_ever: self.best_ever.fitness(),
        };
        if self.recorder.is_some() {
            self.emit(EventKind::GenerationCompleted {
                island: self.trace_island,
                generation: report.generation,
                evaluations: report.evaluations,
                best: report.best,
                mean: report.mean,
                best_ever: report.best_ever,
            });
        }
        if !self.optimum_traced && self.problem.is_optimal(report.best_ever) {
            self.optimum_traced = true;
            self.emit(EventKind::CheckpointHit {
                island: self.trace_island,
                generation: report.generation,
                best: report.best_ever,
            });
        }
        report
    }
}

impl<P: Problem<Genome = BitString>> Engine for ShardedCompactGa<P> {
    type Best = Individual<BitString>;

    fn engine_id(&self) -> &'static str {
        "pcga"
    }

    fn step(&mut self) -> StepReport {
        ShardedCompactGa::step(self)
    }

    fn progress(&self, elapsed: Duration) -> Progress {
        Progress {
            generations: self.generation,
            evaluations: self.evaluations,
            best_fitness: self.best_ever.fitness(),
            best_is_optimal: self.problem.is_optimal(self.best_ever.fitness()),
            stagnant_generations: self.stagnant_generations,
            elapsed,
            maximizing: self.problem.objective() == Objective::Maximize,
            cost_units: self.evaluations as f64,
        }
    }

    fn best(&self) -> Self::Best {
        self.best_ever.clone()
    }

    fn clock(&self) -> Clock {
        Clock::Virtual(Duration::from_secs_f64(self.clock_s))
    }

    fn halted(&self) -> bool {
        self.is_converged()
    }

    fn record_run_started(&mut self) {
        if self.recorder.is_some() {
            let problem = self.problem.name();
            let seed = self.seed;
            self.emit(EventKind::RunStarted {
                island: self.trace_island,
                engine: "pcga".into(),
                problem,
                seed,
            });
        }
    }

    fn record_run_finished(&mut self) {
        if self.recorder.is_some() {
            let best = self.best_ever.fitness();
            self.emit(EventKind::RunFinished {
                island: self.trace_island,
                generations: self.generation,
                evaluations: self.evaluations,
                best,
                hit_optimum: self.problem.is_optimal(best),
            });
            if let Some(r) = &mut self.recorder {
                r.flush();
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.generation);
        w.put_u64(self.evaluations);
        w.put_u64(self.stagnant_generations);
        w.put_bool(self.optimum_traced);
        w.put_f64(self.clock_s);
        w.put_u64(self.wire.bytes);
        w.put_u64(self.wire.messages);
        self.best_ever.genome.encode(&mut w);
        w.put_opt_f64(self.best_ever.fitness);
        w.put_usize(self.virtual_pop);
        w.put_usize(self.shards.len());
        for shard in &self.shards {
            let (s, spare) = shard.rng.snapshot_state();
            for word in s {
                w.put_u64(word);
            }
            w.put_opt_f64(spare);
            w.put_usize(shard.p.len());
            for &pi in &shard.p {
                w.put_f64(pi);
            }
        }
        Snapshot::new("pcga", w.into_bytes())
    }

    fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let mut r = snapshot.reader_for("pcga")?;
        let generation = r.take_u64()?;
        let evaluations = r.take_u64()?;
        let stagnant_generations = r.take_u64()?;
        let optimum_traced = r.take_bool()?;
        let clock_s = r.take_f64()?;
        let wire = WireStats {
            bytes: r.take_u64()?,
            messages: r.take_u64()?,
        };
        let genome = BitString::decode(&mut r)?;
        let fitness = r.take_opt_f64()?;
        let virtual_pop = r.take_usize()?;
        if virtual_pop != self.virtual_pop {
            return Err(SnapshotError::Invalid(format!(
                "snapshot virtual population {virtual_pop} does not match \
                 the configured {}",
                self.virtual_pop
            )));
        }
        let nodes = r.take_usize()?;
        if nodes != self.shards.len() {
            return Err(SnapshotError::Invalid(format!(
                "snapshot shards {nodes} do not match the configured {}",
                self.shards.len()
            )));
        }
        let mut restored = Vec::with_capacity(nodes);
        for shard in &self.shards {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = r.take_u64()?;
            }
            let spare = r.take_opt_f64()?;
            let slice_len = r.take_usize()?;
            if slice_len != shard.p.len() {
                return Err(SnapshotError::Invalid(format!(
                    "snapshot shard of {slice_len} loci does not match the \
                     configured {}",
                    shard.p.len()
                )));
            }
            let mut p = Vec::with_capacity(slice_len);
            for _ in 0..slice_len {
                p.push(r.take_f64()?);
            }
            restored.push((Rng64::from_snapshot_state(s, spare), p));
        }
        r.finish()?;
        for (shard, (rng, p)) in self.shards.iter_mut().zip(restored) {
            shard.rng = rng;
            shard.p = p;
        }
        self.generation = generation;
        self.evaluations = evaluations;
        self.stagnant_generations = stagnant_generations;
        self.optimum_traced = optimum_traced;
        self.clock_s = clock_s;
        self.wire = wire;
        self.best_ever = Individual { genome, fitness };
        Ok(())
    }
}

/// Validating builder for [`ShardedCompactGa`].
///
/// Required: a [`ClusterSpec`] (node count and speeds come from it).
/// Defaults: virtual population 127, per-evaluation cost `1e-4` virtual
/// seconds, seed 0.
pub struct ShardedCompactGaBuilder<P: Problem<Genome = BitString>> {
    problem: Arc<P>,
    cluster: Option<ClusterSpec>,
    virtual_pop: usize,
    eval_cost_s: f64,
    seed: u64,
    recorder: Option<Box<dyn Recorder>>,
}

impl<P: Problem<Genome = BitString>> ShardedCompactGaBuilder<P> {
    /// Fresh builder with conventional defaults.
    #[must_use]
    pub fn new(problem: P) -> Self {
        Self::from_shared(Arc::new(problem))
    }

    /// Shares an existing `Arc`'d problem.
    #[must_use]
    pub fn from_shared(problem: Arc<P>) -> Self {
        Self {
            problem,
            cluster: None,
            virtual_pop: 127,
            eval_cost_s: 1e-4,
            seed: 0,
            recorder: None,
        }
    }

    /// The simulated cluster to shard over (required). Shard `i` runs on
    /// node `i`; the vector is split into `nodes` near-equal contiguous
    /// slices.
    #[must_use]
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.cluster = Some(spec);
        self
    }

    /// Virtual population size `n`; must be at least 2.
    #[must_use]
    pub fn virtual_pop(mut self, n: usize) -> Self {
        self.virtual_pop = n;
        self
    }

    /// Virtual seconds one evaluation costs on a unit-speed master.
    /// Must be finite and non-negative.
    #[must_use]
    pub fn eval_cost(mut self, seconds: f64) -> Self {
        self.eval_cost_s = seconds;
        self
    }

    /// RNG seed; node `i`'s stream is forked from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches an observability recorder at build time.
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Validates the configuration and constructs the engine.
    pub fn build(self) -> Result<ShardedCompactGa<P>, ConfigError> {
        let cluster = self
            .cluster
            .ok_or(ConfigError::MissingComponent("cluster"))?;
        if self.virtual_pop < 2 {
            return Err(ConfigError::InvalidParameter {
                name: "virtual_pop",
                message: format!(
                    "virtual population must be at least 2, got {}",
                    self.virtual_pop
                ),
            });
        }
        if !self.eval_cost_s.is_finite() || self.eval_cost_s < 0.0 {
            return Err(ConfigError::InvalidParameter {
                name: "eval_cost",
                message: format!(
                    "evaluation cost must be finite and >= 0, got {}",
                    self.eval_cost_s
                ),
            });
        }
        let len = self.problem.random_genome(&mut Rng64::new(0)).len();
        if len == 0 {
            return Err(ConfigError::InvalidParameter {
                name: "genome_len",
                message: "problem produces empty genomes".into(),
            });
        }
        let nodes = cluster.len();
        if nodes > len {
            return Err(ConfigError::InvalidParameter {
                name: "nodes",
                message: format!(
                    "cannot shard a {len}-locus vector over {nodes} nodes: \
                     every node needs at least one locus"
                ),
            });
        }
        // Near-equal contiguous slices: the first `len % nodes` shards
        // take one extra locus.
        let base = len / nodes;
        let extra = len % nodes;
        let mut root = Rng64::new(self.seed);
        let mut shards = Vec::with_capacity(nodes);
        let mut lo = 0;
        for i in 0..nodes {
            let slice = base + usize::from(i < extra);
            shards.push(Shard {
                lo,
                p: vec![0.5; slice],
                rng: root.fork(i as u64),
            });
            lo += slice;
        }
        // Seed best_ever with one uniform sample on the master's stream
        // (the forks above already advanced it past the shard streams).
        let p0 = vec![0.5; len];
        let first = sample_genome(&p0, &mut root);
        let fitness = self.problem.evaluate(&first);
        Ok(ShardedCompactGa {
            problem: self.problem,
            shards,
            len,
            virtual_pop: self.virtual_pop,
            cluster,
            eval_cost_s: self.eval_cost_s,
            seed: self.seed,
            generation: 0,
            evaluations: 1,
            stagnant_generations: 0,
            optimum_traced: false,
            clock_s: 0.0,
            wire: WireStats::default(),
            best_ever: Individual::evaluated(first, fitness),
            recorder: self.recorder,
            trace_island: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_cluster::NetworkProfile;
    use pga_problems::OneMax;

    fn engine(nodes: usize, seed: u64) -> ShardedCompactGa<OneMax> {
        ShardedCompactGa::builder(OneMax::new(128))
            .cluster(
                ClusterSpec::homogeneous(nodes, NetworkProfile::GigabitEthernet)
                    .expect("valid cluster"),
            )
            .seed(seed)
            .virtual_pop(60)
            .build()
            .expect("valid config")
    }

    #[test]
    fn solves_onemax_sharded() {
        let mut ga = engine(16, 9);
        let outcome = ga
            .run(&Termination::new().max_generations(40_000))
            .expect("bounded rule");
        assert!(
            outcome.best.fitness() >= 120.0,
            "pcGA should approach the OneMax optimum, got {}",
            outcome.best.fitness()
        );
    }

    #[test]
    fn same_seed_is_bit_identical_and_clock_is_virtual() {
        let mut a = engine(8, 4);
        let mut b = engine(8, 4);
        for _ in 0..300 {
            assert_eq!(a.step(), b.step());
        }
        assert_eq!(a.snapshot().to_bytes(), b.snapshot().to_bytes());
        match a.clock() {
            Clock::Virtual(d) => assert!(d.as_secs_f64() > 0.0),
            Clock::Wall => panic!("pcGA must run on virtual time"),
        }
    }

    #[test]
    fn per_node_memory_shrinks_with_node_count() {
        let few = engine(2, 1);
        let many = engine(64, 1);
        assert_eq!(few.per_node_model_bytes(), 64 * 8);
        assert_eq!(many.per_node_model_bytes(), 2 * 8);
        assert_eq!(
            many.probabilities().len(),
            128,
            "the full model must still cover every locus"
        );
    }

    #[test]
    fn wire_carries_model_updates_not_individuals() {
        let mut ga = engine(16, 2);
        for _ in 0..10 {
            ga.step();
        }
        let per_step = ga.wire().bytes as f64 / 10.0;
        // Upper bound: both sampled slices (2 * len/8 bytes, padded per
        // shard) plus one winner byte per node — far below what shipping
        // a population of individuals would take.
        let bound = (2.0 * (128.0 / 8.0) + 16.0 + 2.0 * 16.0) * 1.05;
        assert!(
            per_step <= bound,
            "per-step wire bytes {per_step} should stay O(genome + nodes), bound {bound}"
        );
        assert_eq!(ga.wire().messages, 10 * 2 * 16);
    }

    #[test]
    fn shard_count_must_not_exceed_genome_length() {
        let err = ShardedCompactGa::builder(OneMax::new(8))
            .cluster(
                ClusterSpec::homogeneous(16, NetworkProfile::SharedMemory).expect("valid cluster"),
            )
            .build();
        assert!(matches!(
            err,
            Err(ConfigError::InvalidParameter { name: "nodes", .. })
        ));
    }

    #[test]
    fn missing_cluster_is_a_typed_error() {
        let err = ShardedCompactGa::builder(OneMax::new(8)).build();
        assert!(matches!(err, Err(ConfigError::MissingComponent("cluster"))));
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical_including_clock() {
        let mut ga = engine(8, 6);
        for _ in 0..50 {
            ga.step();
        }
        let snap = ga.snapshot();
        let mut fresh = engine(8, 6);
        fresh.restore(&snap).expect("restorable");
        for _ in 0..50 {
            assert_eq!(fresh.step(), ga.step());
        }
        assert_eq!(fresh.snapshot().to_bytes(), ga.snapshot().to_bytes());
        assert!((fresh.elapsed_virtual() - ga.elapsed_virtual()).abs() < f64::EPSILON);
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let ga = engine(8, 1);
        let snap = ga.snapshot();
        let mut other = engine(16, 1);
        assert!(other.restore(&snap).is_err());
    }
}
