//! The compact GA family: evolution over a probability *model* instead of a
//! population of individuals.
//!
//! The compact GA (Harik–Lobo–Goldberg) replaces the population with a
//! probability vector `p[0..len]` — `p[i]` is the marginal probability that
//! locus `i` is 1 in a virtual population of size `n`. Each step samples two
//! competitors from the model, evaluates both, and shifts every disagreeing
//! locus by `1/n` toward the winner. Memory is **O(genome)** regardless of
//! the virtual population size, which is what makes the family interesting
//! at massive scale: Lobo–Lima–Mártires showed the vector can be sharded
//! across thousands of nodes, with only model updates (sampled slices and
//! the winner's identity) ever crossing the wire — never individuals.
//!
//! Two engines implement [`pga_core::driver::Engine`]:
//!
//! | engine | id | state | clock |
//! |---|---|---|---|
//! | [`CompactGa`] | `cga` | one probability vector + RNG | wall |
//! | [`ShardedCompactGa`] | `pcga` | per-node vector shards + RNG streams | virtual |
//!
//! Both snapshot to exactly their state (vector(s) + RNG(s) + counters +
//! virtual clock), so stop/resume is trivially bit-identical.

pub mod cga;
pub mod sharded;

pub use cga::{CompactGa, CompactGaBuilder};
pub use sharded::{ShardedCompactGa, ShardedCompactGaBuilder, WireStats};
