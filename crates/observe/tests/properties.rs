//! Property-based invariants of the metrics histogram and bound builders.

use pga_observe::{exponential_bounds, linear_bounds, Histogram};
use proptest::prelude::*;

/// Strictly increasing bounds built from positive increments.
fn bounds_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..10.0, 1..12)
}

fn to_bounds(increments: &[f64]) -> Vec<f64> {
    let mut bounds = Vec::with_capacity(increments.len());
    let mut acc = 0.0;
    for inc in increments {
        acc += inc;
        bounds.push(acc);
    }
    bounds
}

proptest! {
    #[test]
    fn every_observation_lands_in_exactly_one_bucket(
        increments in bounds_strategy(),
        values in prop::collection::vec(-5.0f64..120.0, 0..200),
    ) {
        let bounds = to_bounds(&increments);
        let mut h = Histogram::with_bounds(bounds.clone());
        for &v in &values {
            h.observe(v);
        }
        // Total-count conservation: the bucket counts partition the stream.
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.counts().len(), bounds.len() + 1);
    }

    #[test]
    fn bucketing_matches_direct_classification(
        increments in bounds_strategy(),
        values in prop::collection::vec(-5.0f64..120.0, 1..200),
    ) {
        let bounds = to_bounds(&increments);
        let mut h = Histogram::with_bounds(bounds.clone());
        let mut expected = vec![0u64; bounds.len() + 1];
        for &v in &values {
            h.observe(v);
            let idx = bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(bounds.len());
            expected[idx] += 1;
        }
        prop_assert_eq!(h.counts(), expected.as_slice());
    }

    #[test]
    fn generated_bounds_are_strictly_increasing(
        start in 0.001f64..10.0,
        factor in 1.1f64..4.0,
        width in 0.01f64..5.0,
        count in 1usize..12,
    ) {
        let e = exponential_bounds(start, factor, count);
        prop_assert_eq!(e.len(), count);
        prop_assert!(e.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(e.iter().all(|b| b.is_finite()));

        let l = linear_bounds(start, width, count);
        prop_assert_eq!(l.len(), count);
        prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quantile_bound_is_monotone_in_q(
        increments in bounds_strategy(),
        values in prop::collection::vec(0.0f64..40.0, 1..100),
    ) {
        let bounds = to_bounds(&increments);
        let mut h = Histogram::with_bounds(bounds);
        for &v in &values {
            h.observe(v);
        }
        let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let mut last: Option<f64> = None;
        for &q in &qs {
            let b = h.quantile_bound(q);
            if let (Some(prev), Some(now)) = (last, b) {
                prop_assert!(now >= prev, "quantile bounds must be monotone");
            }
            if b.is_some() {
                last = b;
            }
        }
    }

    #[test]
    fn min_max_bracket_every_non_nan_observation(
        increments in bounds_strategy(),
        values in prop::collection::vec(-20.0f64..120.0, 1..100),
    ) {
        let mut h = Histogram::with_bounds(to_bounds(&increments));
        for &v in &values {
            h.observe(v);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), Some(lo));
        prop_assert_eq!(h.max(), Some(hi));
        let sum: f64 = values.iter().sum();
        prop_assert!((h.sum() - sum).abs() <= 1e-9 * sum.abs().max(1.0));
    }
}
