//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Names are free-form dotted strings (`"migration.sent"`). All maps are
//! `BTreeMap`s so iteration — and therefore any rendering built on top —
//! is deterministic.

use std::collections::BTreeMap;

/// Upper bounds `b_i = start * factor^i` for `count` buckets, for
/// latency-style histograms spanning several orders of magnitude.
///
/// # Panics
/// Panics unless `start > 0`, `factor > 1`, and `count > 0`.
#[must_use]
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

/// Upper bounds `b_i = start + i * width` for `count` buckets, for
/// fitness-style histograms over a known range.
///
/// # Panics
/// Panics unless `width > 0` and `count > 0`.
#[must_use]
pub fn linear_bounds(start: f64, width: f64, count: usize) -> Vec<f64> {
    assert!(width > 0.0 && count > 0);
    (0..count).map(|i| start + i as f64 * width).collect()
}

/// Fixed-bucket histogram.
///
/// `bounds` are strictly increasing *inclusive* upper bounds; an implicit
/// overflow bucket catches everything above the last bound, so
/// `counts.len() == bounds.len() + 1` and every observation lands in
/// exactly one bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    #[must_use]
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. NaN is counted (into the overflow bucket)
    /// but excluded from min/max/sum.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        if value.is_nan() {
            return;
        }
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The inclusive upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of (non-NaN) observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations, or `None` before the first.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation, or `None` before the first.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest observation, or `None` before the first.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Smallest bound `b` with at least `q * count` observations `<= b`
    /// (a conservative quantile from bucket boundaries); `None` when empty
    /// or when the quantile falls in the unbounded overflow bucket.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

/// Point-in-time copy of a [`Registry`], comparable across time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// What changed since `earlier`: counters and histogram counts are
    /// differenced (saturating at zero), gauges keep their current value.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &now)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), now.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, now)| {
                let mut d = now.clone();
                if let Some(before) = earlier.histograms.get(name) {
                    if before.bounds == now.bounds {
                        for (c, b) in d.counts.iter_mut().zip(&before.counts) {
                            *c = c.saturating_sub(*b);
                        }
                        d.count = d.count.saturating_sub(before.count);
                        d.sum -= before.sum;
                    }
                }
                (name.clone(), d)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

/// Named counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Registers (or replaces) a histogram with the given bounds.
    pub fn histogram_with_bounds(&mut self, name: &str, bounds: Vec<f64>) {
        self.histograms
            .insert(name.to_string(), Histogram::with_bounds(bounds));
    }

    /// Records `value` into the named histogram. Observations to an
    /// unregistered name are dropped: histograms need explicit bounds.
    pub fn observe(&mut self, name: &str, value: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        }
    }

    /// Current counter value (zero when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Copies the current state for later comparison/rendering.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_inclusive_upper_bounds() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 4.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(9.0));
        assert!((h.sum() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_and_linear_bounds_shape() {
        assert_eq!(exponential_bounds(10.0, 4.0, 3), vec![10.0, 40.0, 160.0]);
        assert_eq!(linear_bounds(0.0, 8.0, 4), vec![0.0, 8.0, 16.0, 24.0]);
    }

    #[test]
    fn quantile_bound_is_conservative() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 1.5, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(0.5), Some(1.0));
        assert_eq!(h.quantile_bound(1.0), Some(4.0));
        h.observe(100.0);
        assert_eq!(h.quantile_bound(1.0), None);
    }

    #[test]
    fn registry_roundtrip_and_delta() {
        let mut reg = Registry::new();
        reg.inc("migration.sent", 2);
        reg.set_gauge("run.generation", 5.0);
        reg.histogram_with_bounds("lat", vec![10.0, 100.0]);
        reg.observe("lat", 7.0);
        let before = reg.snapshot();

        reg.inc("migration.sent", 3);
        reg.set_gauge("run.generation", 9.0);
        reg.observe("lat", 50.0);
        let after = reg.snapshot();

        let delta = after.delta(&before);
        assert_eq!(delta.counters["migration.sent"], 3);
        assert_eq!(delta.gauges["run.generation"], 9.0);
        let h = &delta.histograms["lat"];
        assert_eq!(h.count(), 1);
        assert_eq!(h.counts(), &[0, 1, 0]);
    }

    #[test]
    fn observe_without_registration_is_dropped() {
        let mut reg = Registry::new();
        reg.observe("nope", 1.0);
        assert!(reg.histogram("nope").is_none());
    }
}
