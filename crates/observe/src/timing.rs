//! Lightweight timing scopes for instrumented hot paths.

use std::time::Instant;

/// A conditionally-started stopwatch.
///
/// Engines wrap hot sections (e.g. an evaluation batch) with
/// [`Stopwatch::started_if`], passing whether a recorder is attached; when
/// no recorder is attached the clock is never read and the cost is a
/// single branch on an `Option`.
///
/// ```
/// use pga_observe::Stopwatch;
///
/// let sw = Stopwatch::started_if(false); // no recorder attached
/// assert_eq!(sw.elapsed_micros(), None); // clock never read
///
/// let sw = Stopwatch::started_if(true);
/// assert!(sw.elapsed_micros().is_some());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Option<Instant>,
}

impl Stopwatch {
    /// Reads the clock only when `enabled` is true.
    #[must_use]
    pub fn started_if(enabled: bool) -> Self {
        Self {
            started: enabled.then(Instant::now),
        }
    }

    /// A stopwatch that was never started (always reports `None`).
    #[must_use]
    pub fn disabled() -> Self {
        Self { started: None }
    }

    /// Whether the stopwatch is running.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }

    /// Elapsed microseconds since start, or `None` if never started.
    #[must_use]
    pub fn elapsed_micros(&self) -> Option<u64> {
        self.started
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stopwatch_reports_none() {
        let sw = Stopwatch::disabled();
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed_micros(), None);
        assert_eq!(Stopwatch::started_if(false).elapsed_micros(), None);
    }

    #[test]
    fn running_stopwatch_is_monotone() {
        let sw = Stopwatch::started_if(true);
        assert!(sw.is_running());
        let a = sw.elapsed_micros().unwrap();
        let b = sw.elapsed_micros().unwrap();
        assert!(b >= a);
    }
}
