//! # pga-observe
//!
//! Zero-dependency observability subsystem for the `parallel-ga` workspace:
//! a single structured **event** vocabulary shared by every engine family
//! (panmictic `pga-core`, island, cellular, master–slave, and the
//! discrete-event cluster simulator), composable **sinks** to capture those
//! events, a **metrics registry** (counters, gauges, fixed-bucket
//! histograms), and lightweight **timing scopes** for hot paths.
//!
//! Harada, Alba & Luque (arXiv:2106.09922) argue that meaningful PGA
//! evaluation needs *uniform, fine-grained* runtime instrumentation across
//! parallel models; this crate is that uniform layer. The survey's dynamics
//! claims — punctuated equilibria after migration (E11), graceful
//! degradation under node failure (E07) — are reproduced directly from
//! these traces instead of per-experiment ad-hoc collectors.
//!
//! ## Design rules
//!
//! * **Seed transparency.** Nothing in this crate draws randomness or feeds
//!   information back into an engine: attaching or detaching any recorder
//!   cannot perturb an RNG stream or a search trajectory (enforced by an
//!   integration test in the workspace root).
//! * **Near-zero cost when detached.** Engines guard every emission with an
//!   `Option` check; timing scopes only read the clock when a recorder is
//!   attached ([`Stopwatch::started_if`]).
//! * **Zero dependencies.** Events carry plain numbers and strings, so the
//!   crate sits *below* every engine crate without cycles; table rendering
//!   of metric snapshots lives in `pga-analysis`.
//!
//! ## Quick example
//!
//! ```
//! use pga_observe::{Event, EventKind, JsonlSink, Recorder, RingRecorder, Time};
//!
//! let mut ring = RingRecorder::new(1024);
//! ring.record(&Event::at(
//!     Time::Sim(0.5),
//!     EventKind::NodeFailed { node: 3 },
//! ));
//! let mut out = Vec::new();
//! pga_observe::replay(&ring.events(), &mut JsonlSink::new(&mut out));
//! let line = String::from_utf8(out).unwrap();
//! assert!(line.contains("\"kind\":\"node_failed\""));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod event;
pub mod metrics;
pub mod record;
pub mod sink;
pub mod timing;

pub use event::{Event, EventKind, FieldValue, Time};
pub use metrics::{exponential_bounds, linear_bounds, Histogram, MetricsSnapshot, Registry};
pub use record::{
    merge_island_traces, replay, FilteredRecorder, MetricsRecorder, MultiRecorder, Recorder,
    RingRecorder, SampledRecorder, SharedRecorder,
};
pub use sink::{jsonl_line, CsvSink, JsonlSink, JsonlStream};
pub use timing::Stopwatch;
