//! The [`Recorder`] trait and composable recorder combinators.

use crate::event::{Event, EventKind};
use crate::metrics::Registry;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Consumes a stream of [`Event`]s.
///
/// Recorders are attached to engines (`Ga::builder().recorder(..)`,
/// `CellularGa`, the island drivers, the simulated master–slave wrapper)
/// and must never influence the search: implementations only observe.
pub trait Recorder: Send {
    /// Handles one event.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output (no-op for in-memory recorders).
    fn flush(&mut self) {}
}

impl<R: Recorder + ?Sized> Recorder for Box<R> {
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&mut self) {
        (**self).flush();
    }
}

/// Feeds an already-captured trace through another recorder (e.g. replay a
/// ring buffer into a CSV sink after a threaded run).
pub fn replay<R: Recorder + ?Sized>(events: &[Event], recorder: &mut R) {
    for event in events {
        recorder.record(event);
    }
    recorder.flush();
}

struct RingInner {
    capacity: usize,
    dropped: u64,
    events: VecDeque<Event>,
}

/// Bounded in-memory trace buffer.
///
/// Cloning shares the underlying buffer, so one ring can be attached to
/// several islands of a single-threaded archipelago and read back once
/// afterwards. When the buffer is full the *oldest* events are dropped
/// (and counted), so the tail of a long run is always retained.
#[derive(Clone)]
pub struct RingRecorder {
    inner: Arc<Mutex<RingInner>>,
}

impl RingRecorder {
    /// Ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            inner: Arc::new(Mutex::new(RingInner {
                capacity,
                dropped: 0,
                events: VecDeque::with_capacity(capacity.min(4096)),
            })),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Drains the buffered events, oldest first.
    #[must_use]
    pub fn take_events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.drain(..).collect()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Buffered event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// `true` when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: &Event) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event.clone());
    }
}

/// Clonable handle sharing one inner recorder behind a mutex.
///
/// This is the composition primitive for fan-in: attach clones of one
/// `SharedRecorder` to every island of an archipelago and all events land
/// in the same sink, in step order (the single-threaded drivers interleave
/// islands deterministically).
#[derive(Clone)]
pub struct SharedRecorder {
    inner: Arc<Mutex<Box<dyn Recorder>>>,
}

impl SharedRecorder {
    /// Wraps `inner` for shared use.
    #[must_use]
    pub fn new(inner: impl Recorder + 'static) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Box::new(inner))),
        }
    }
}

impl Recorder for SharedRecorder {
    fn record(&mut self, event: &Event) {
        self.inner.lock().unwrap().record(event);
    }

    fn flush(&mut self) {
        self.inner.lock().unwrap().flush();
    }
}

/// Fans every event out to several recorders (tee).
#[derive(Default)]
pub struct MultiRecorder {
    sinks: Vec<Box<dyn Recorder>>,
}

impl MultiRecorder {
    /// Empty tee.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a destination.
    #[must_use]
    pub fn with(mut self, sink: impl Recorder + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }
}

impl Recorder for MultiRecorder {
    fn record(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// Forwards only events matching a predicate.
pub struct FilteredRecorder<R, F> {
    inner: R,
    keep: F,
}

impl<R: Recorder, F: Fn(&Event) -> bool + Send> FilteredRecorder<R, F> {
    /// Keeps events for which `keep` returns `true`.
    #[must_use]
    pub fn new(inner: R, keep: F) -> Self {
        Self { inner, keep }
    }

    /// Recovers the wrapped recorder.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Recorder, F: Fn(&Event) -> bool + Send> Recorder for FilteredRecorder<R, F> {
    fn record(&mut self, event: &Event) {
        if (self.keep)(event) {
            self.inner.record(event);
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// Downsamples high-frequency per-generation events: passes one
/// `GenerationCompleted` / `EvaluationBatch` in every `stride` per island,
/// and every event of any other kind. Counter-based (no randomness), so
/// sampling is deterministic and seed-transparent.
pub struct SampledRecorder<R> {
    inner: R,
    stride: u64,
    seen: Vec<u64>,
}

impl<R: Recorder> SampledRecorder<R> {
    /// Keeps one per-generation event in every `stride` (per island).
    ///
    /// # Panics
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn every(inner: R, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            inner,
            stride,
            seen: Vec::new(),
        }
    }

    /// Recovers the wrapped recorder.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Recorder> Recorder for SampledRecorder<R> {
    fn record(&mut self, event: &Event) {
        let sampled = matches!(
            event.kind,
            EventKind::GenerationCompleted { .. } | EventKind::EvaluationBatch { .. }
        );
        if sampled {
            let island = event.island().unwrap_or(0) as usize;
            if island >= self.seen.len() {
                self.seen.resize(island + 1, 0);
            }
            let n = self.seen[island];
            self.seen[island] += 1;
            if !n.is_multiple_of(self.stride) {
                return;
            }
        }
        self.inner.record(event);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// Aggregates the event stream into a metrics [`Registry`]:
///
/// * `events.<kind>` counters for every kind seen;
/// * `migration.sent` / `migration.accepted` counters;
/// * `eval.batch_micros` histogram (timing-scope latencies);
/// * `pool.tasks` / `pool.steals` / `pool.parks` counters, a
///   `pool.workers` gauge and a `pool.queue_micros` histogram (work-stealing
///   pool health, from `pool_batch` events);
/// * `archipelago.islands_lost` / `archipelago.islands_resurrected` /
///   `archipelago.batches_dropped` / `archipelago.batches_redelivered` /
///   `archipelago.heartbeat_misses` counters (resilient island lifecycle);
/// * `fitness.best_ever` histogram over generation snapshots;
/// * `run.generation` / `run.best_ever` gauges tracking the latest state.
pub struct MetricsRecorder {
    registry: Registry,
}

impl MetricsRecorder {
    /// Fresh recorder with an empty registry. `fitness_buckets` are the
    /// histogram upper bounds for best-fitness observations.
    #[must_use]
    pub fn new(fitness_buckets: Vec<f64>) -> Self {
        let mut registry = Registry::new();
        registry.histogram_with_bounds("fitness.best_ever", fitness_buckets);
        registry.histogram_with_bounds(
            "eval.batch_micros",
            crate::metrics::exponential_bounds(10.0, 4.0, 10),
        );
        registry.histogram_with_bounds(
            "pool.queue_micros",
            crate::metrics::exponential_bounds(1.0, 4.0, 10),
        );
        Self { registry }
    }

    /// Read access to the aggregated metrics.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Consumes the recorder, yielding the registry.
    #[must_use]
    pub fn into_registry(self) -> Registry {
        self.registry
    }
}

impl Recorder for MetricsRecorder {
    fn record(&mut self, event: &Event) {
        self.registry
            .inc(&format!("events.{}", event.kind.name()), 1);
        match &event.kind {
            EventKind::GenerationCompleted {
                generation,
                best_ever,
                ..
            } => {
                self.registry.observe("fitness.best_ever", *best_ever);
                self.registry
                    .set_gauge("run.generation", *generation as f64);
                self.registry.set_gauge("run.best_ever", *best_ever);
            }
            EventKind::EvaluationBatch { micros, fresh, .. } => {
                self.registry.observe("eval.batch_micros", *micros as f64);
                self.registry.inc("eval.fresh", *fresh);
            }
            EventKind::PoolBatch {
                workers,
                tasks,
                steals,
                parks,
                queue_micros,
                ..
            } => {
                self.registry.set_gauge("pool.workers", *workers as f64);
                self.registry.inc("pool.tasks", *tasks);
                self.registry.inc("pool.steals", *steals);
                self.registry.inc("pool.parks", *parks);
                self.registry
                    .observe("pool.queue_micros", *queue_micros as f64);
            }
            EventKind::MigrationSent { count, .. } => {
                self.registry.inc("migration.sent", *count);
            }
            EventKind::MigrationReceived { accepted, .. } => {
                self.registry.inc("migration.accepted", *accepted);
            }
            EventKind::NodeFailed { .. } => {
                self.registry.inc("cluster.node_failures", 1);
            }
            EventKind::TaskReassigned { .. } => {
                self.registry.inc("cluster.reassignments", 1);
            }
            EventKind::TaskDispatched { .. } => {
                self.registry.inc("resilient.dispatched", 1);
            }
            EventKind::HeartbeatMissed { .. } => {
                self.registry.inc("resilient.heartbeat_misses", 1);
            }
            EventKind::TaskRetried { backoff_micros, .. } => {
                self.registry.inc("resilient.retries", 1);
                self.registry
                    .observe("resilient.backoff_micros", *backoff_micros as f64);
            }
            EventKind::WorkerQuarantined { .. } => {
                self.registry.inc("resilient.quarantined", 1);
            }
            EventKind::WorkerRecovered { .. } => {
                self.registry.inc("resilient.recovered", 1);
            }
            EventKind::IslandLost { .. } => {
                self.registry.inc("archipelago.islands_lost", 1);
            }
            EventKind::IslandResurrected { .. } => {
                self.registry.inc("archipelago.islands_resurrected", 1);
            }
            EventKind::MigrantBatchDropped { count, .. } => {
                self.registry.inc("archipelago.batches_dropped", 1);
                self.registry.inc("archipelago.migrants_dropped", *count);
            }
            EventKind::MigrantBatchRedelivered { count, .. } => {
                self.registry.inc("archipelago.batches_redelivered", 1);
                self.registry
                    .inc("archipelago.migrants_redelivered", *count);
            }
            EventKind::IslandHeartbeatMissed { .. } => {
                self.registry.inc("archipelago.heartbeat_misses", 1);
            }
            EventKind::AsyncFold { clock_micros, .. } => {
                self.registry.inc("async.folds", 1);
                self.registry
                    .set_gauge("async.clock_micros", *clock_micros as f64);
            }
            EventKind::AsyncImmigrantsDrained {
                offered, accepted, ..
            } => {
                self.registry.inc("async.immigrants_drained", *offered);
                self.registry.inc("async.immigrants_accepted", *accepted);
            }
            _ => {}
        }
    }
}

/// Deterministically merges per-island traces (from a threaded island run)
/// into one global trace.
///
/// Events are ordered by `(generation, phase rank, island, intra-island
/// index)`; per-island streams are themselves deterministic under
/// synchronous migration, so the merged trace is reproducible regardless
/// of thread scheduling.
#[must_use]
pub fn merge_island_traces(per_island: Vec<Vec<Event>>) -> Vec<Event> {
    let mut tagged: Vec<(u64, u8, u32, usize, Event)> = Vec::new();
    for (island, trace) in per_island.into_iter().enumerate() {
        for (idx, event) in trace.into_iter().enumerate() {
            let generation = event.generation().unwrap_or(u64::MAX);
            let phase = event.kind.phase_rank();
            let island_id = event.island().unwrap_or(island as u32);
            tagged.push((generation, phase, island_id, idx, event));
        }
    }
    tagged.sort_by_key(|a| (a.0, a.1, a.2, a.3));
    tagged.into_iter().map(|(_, _, _, _, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Time;

    fn gen_event(island: u32, generation: u64) -> Event {
        Event::new(EventKind::GenerationCompleted {
            island,
            generation,
            evaluations: generation * 10,
            best: 1.0,
            mean: 0.5,
            best_ever: 1.0,
        })
    }

    #[test]
    fn ring_keeps_newest_events() {
        let mut ring = RingRecorder::new(3);
        for g in 1..=5 {
            ring.record(&gen_event(0, g));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(events[0].generation(), Some(3));
        assert_eq!(events[2].generation(), Some(5));
    }

    #[test]
    fn shared_ring_clones_share_a_buffer() {
        let ring = RingRecorder::new(16);
        let mut a = ring.clone();
        let mut b = ring.clone();
        a.record(&gen_event(0, 1));
        b.record(&gen_event(1, 1));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn filtered_recorder_drops_unmatched() {
        let ring = RingRecorder::new(16);
        let mut filtered = FilteredRecorder::new(ring.clone(), |e| {
            matches!(e.kind, EventKind::MigrationSent { .. })
        });
        filtered.record(&gen_event(0, 1));
        filtered.record(&Event::new(EventKind::MigrationSent {
            from: 0,
            to: 1,
            generation: 1,
            count: 2,
        }));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0].kind.name(), "migration_sent");
    }

    #[test]
    fn sampler_keeps_every_nth_generation_per_island() {
        let ring = RingRecorder::new(64);
        let mut sampled = SampledRecorder::every(ring.clone(), 3);
        for g in 1..=9 {
            sampled.record(&gen_event(0, g));
            sampled.record(&gen_event(1, g));
        }
        // 9 generations / stride 3 = 3 kept per island.
        assert_eq!(ring.len(), 6);
        // Non-sampled kinds always pass.
        sampled.record(&Event::at(
            Time::Sim(1.0),
            EventKind::NodeFailed { node: 1 },
        ));
        assert_eq!(ring.len(), 7);
    }

    #[test]
    fn metrics_recorder_aggregates_counters_and_histograms() {
        let mut rec = MetricsRecorder::new(vec![8.0, 16.0, 32.0]);
        for g in 1..=4 {
            rec.record(&gen_event(0, g));
        }
        rec.record(&Event::new(EventKind::MigrationSent {
            from: 0,
            to: 1,
            generation: 4,
            count: 3,
        }));
        rec.record(&Event::new(EventKind::EvaluationBatch {
            island: 0,
            batch: 4,
            size: 10,
            fresh: 9,
            micros: 120,
        }));
        let reg = rec.registry();
        assert_eq!(reg.counter("events.generation_completed"), 4);
        assert_eq!(reg.counter("migration.sent"), 3);
        assert_eq!(reg.counter("eval.fresh"), 9);
        let h = reg.histogram("fitness.best_ever").unwrap();
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn merge_orders_by_generation_phase_island() {
        let island0 = vec![
            gen_event(0, 1),
            gen_event(0, 2),
            Event::new(EventKind::MigrationSent {
                from: 0,
                to: 1,
                generation: 2,
                count: 1,
            }),
        ];
        let island1 = vec![
            gen_event(1, 1),
            gen_event(1, 2),
            Event::new(EventKind::MigrationReceived {
                island: 1,
                generation: 2,
                offered: 1,
                accepted: 1,
            }),
        ];
        let merged = merge_island_traces(vec![island0, island1]);
        let names: Vec<&str> = merged.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            vec![
                "generation_completed", // gen 1, island 0
                "generation_completed", // gen 1, island 1
                "generation_completed", // gen 2, island 0
                "generation_completed", // gen 2, island 1
                "migration_sent",       // gen 2 phase 4
                "migration_received",   // gen 2 phase 5
            ]
        );
    }
}
