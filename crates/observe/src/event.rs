//! The structured event vocabulary shared by every engine family.

/// Timestamp attached to an [`Event`].
///
/// Engine-side events are deliberately *unstamped* ([`Time::None`]) so that
/// same-seed runs produce byte-identical traces; the discrete-event cluster
/// simulator stamps its events with virtual seconds ([`Time::Sim`]); wall
/// stamps are available for consumers that want them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Time {
    /// No timestamp (deterministic engine events).
    None,
    /// Wall-clock seconds since an observer-defined epoch.
    Wall(f64),
    /// Simulated (virtual) seconds from a discrete-event simulator.
    Sim(f64),
}

/// One observation from a running engine.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// When the event happened (see [`Time`]).
    pub time: Time,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Unstamped event (the common case for deterministic engine events).
    #[must_use]
    pub fn new(kind: EventKind) -> Self {
        Self {
            time: Time::None,
            kind,
        }
    }

    /// Stamped event.
    #[must_use]
    pub fn at(time: Time, kind: EventKind) -> Self {
        Self { time, kind }
    }

    /// Island/deme the event belongs to, when it has one. Used to merge
    /// per-island traces deterministically.
    #[must_use]
    pub fn island(&self) -> Option<u32> {
        match &self.kind {
            EventKind::RunStarted { island, .. }
            | EventKind::GenerationCompleted { island, .. }
            | EventKind::EvaluationBatch { island, .. }
            | EventKind::PoolBatch { island, .. }
            | EventKind::CheckpointHit { island, .. }
            | EventKind::MigrationReceived { island, .. }
            | EventKind::IslandLost { island, .. }
            | EventKind::IslandResurrected { island, .. }
            | EventKind::IslandHeartbeatMissed { island }
            | EventKind::AsyncFold { island, .. }
            | EventKind::AsyncImmigrantsDrained { island, .. }
            | EventKind::RunFinished { island, .. } => Some(*island),
            EventKind::MigrationSent { from, .. }
            | EventKind::MigrantBatchDropped { from, .. }
            | EventKind::MigrantBatchRedelivered { from, .. } => Some(*from),
            EventKind::NodeFailed { .. }
            | EventKind::TaskReassigned { .. }
            | EventKind::TaskDispatched { .. }
            | EventKind::HeartbeatMissed { .. }
            | EventKind::TaskRetried { .. }
            | EventKind::WorkerQuarantined { .. }
            | EventKind::WorkerRecovered { .. }
            | EventKind::JobRetried { .. }
            | EventKind::JobPoisoned { .. }
            | EventKind::SpoolDegraded { .. } => None,
        }
    }

    /// Generation the event belongs to, when it has one.
    #[must_use]
    pub fn generation(&self) -> Option<u64> {
        match &self.kind {
            EventKind::GenerationCompleted { generation, .. }
            | EventKind::CheckpointHit { generation, .. }
            | EventKind::MigrationSent { generation, .. }
            | EventKind::MigrationReceived { generation, .. }
            | EventKind::IslandLost { generation, .. }
            | EventKind::IslandResurrected { generation, .. }
            | EventKind::MigrantBatchDropped { generation, .. }
            | EventKind::MigrantBatchRedelivered { generation, .. }
            | EventKind::AsyncImmigrantsDrained { generation, .. } => Some(*generation),
            EventKind::EvaluationBatch { batch, .. } | EventKind::PoolBatch { batch, .. } => {
                Some(*batch)
            }
            EventKind::RunStarted { .. } => Some(0),
            EventKind::RunFinished { generations, .. } => Some(*generations),
            EventKind::NodeFailed { .. }
            | EventKind::TaskReassigned { .. }
            | EventKind::TaskDispatched { .. }
            | EventKind::HeartbeatMissed { .. }
            | EventKind::IslandHeartbeatMissed { .. }
            | EventKind::TaskRetried { .. }
            | EventKind::WorkerQuarantined { .. }
            | EventKind::WorkerRecovered { .. }
            | EventKind::JobRetried { .. }
            | EventKind::JobPoisoned { .. }
            | EventKind::SpoolDegraded { .. }
            | EventKind::AsyncFold { .. } => None,
        }
    }

    /// Flattens the event into `(field, value)` pairs — the single source
    /// of truth for the CSV and JSONL sinks.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::{Bool, Float, Int, Text};
        match &self.kind {
            EventKind::RunStarted {
                island,
                engine,
                problem,
                seed,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("engine", Text(engine.clone())),
                ("problem", Text(problem.clone())),
                ("seed", Int(*seed)),
            ],
            EventKind::GenerationCompleted {
                island,
                generation,
                evaluations,
                best,
                mean,
                best_ever,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generation)),
                ("evaluations", Int(*evaluations)),
                ("best", Float(*best)),
                ("mean", Float(*mean)),
                ("best_ever", Float(*best_ever)),
            ],
            EventKind::EvaluationBatch {
                island,
                batch,
                size,
                fresh,
                micros,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("batch", Int(*batch)),
                ("size", Int(*size)),
                ("fresh", Int(*fresh)),
                ("micros", Int(*micros)),
            ],
            EventKind::PoolBatch {
                island,
                batch,
                workers,
                tasks,
                steals,
                parks,
                queue_micros,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("batch", Int(*batch)),
                ("workers", Int(*workers)),
                ("tasks", Int(*tasks)),
                ("steals", Int(*steals)),
                ("parks", Int(*parks)),
                ("queue_micros", Int(*queue_micros)),
            ],
            EventKind::MigrationSent {
                from,
                to,
                generation,
                count,
            } => vec![
                ("from", Int(u64::from(*from))),
                ("to", Int(u64::from(*to))),
                ("generation", Int(*generation)),
                ("count", Int(*count)),
            ],
            EventKind::MigrationReceived {
                island,
                generation,
                offered,
                accepted,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generation)),
                ("offered", Int(*offered)),
                ("accepted", Int(*accepted)),
            ],
            EventKind::CheckpointHit {
                island,
                generation,
                best,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generation)),
                ("best", Float(*best)),
            ],
            EventKind::NodeFailed { node } => vec![("node", Int(u64::from(*node)))],
            EventKind::TaskReassigned { task } => vec![("task", Int(*task))],
            EventKind::TaskDispatched {
                worker,
                task,
                attempt,
            } => vec![
                ("worker", Int(u64::from(*worker))),
                ("task", Int(*task)),
                ("attempt", Int(*attempt)),
            ],
            EventKind::HeartbeatMissed { worker } => {
                vec![("worker", Int(u64::from(*worker)))]
            }
            EventKind::TaskRetried {
                task,
                attempt,
                backoff_micros,
            } => vec![
                ("task", Int(*task)),
                ("attempt", Int(*attempt)),
                ("backoff_micros", Int(*backoff_micros)),
            ],
            EventKind::WorkerQuarantined { worker, reason } => vec![
                ("worker", Int(u64::from(*worker))),
                ("reason", Text(reason.clone())),
            ],
            EventKind::WorkerRecovered { worker } => {
                vec![("worker", Int(u64::from(*worker)))]
            }
            EventKind::IslandLost { island, generation } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generation)),
            ],
            EventKind::IslandResurrected {
                island,
                generation,
                respawn,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generation)),
                ("respawn", Int(*respawn)),
            ],
            EventKind::MigrantBatchDropped {
                from,
                to,
                generation,
                count,
                reason,
            } => vec![
                ("from", Int(u64::from(*from))),
                ("to", Int(u64::from(*to))),
                ("generation", Int(*generation)),
                ("count", Int(*count)),
                ("reason", Text(reason.clone())),
            ],
            EventKind::MigrantBatchRedelivered {
                from,
                to,
                generation,
                count,
            } => vec![
                ("from", Int(u64::from(*from))),
                ("to", Int(u64::from(*to))),
                ("generation", Int(*generation)),
                ("count", Int(*count)),
            ],
            EventKind::IslandHeartbeatMissed { island } => {
                vec![("island", Int(u64::from(*island)))]
            }
            EventKind::AsyncFold {
                island,
                seq,
                worker,
                clock_micros,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("seq", Int(*seq)),
                ("worker", Int(u64::from(*worker))),
                ("clock_micros", Int(*clock_micros)),
            ],
            EventKind::AsyncImmigrantsDrained {
                island,
                generation,
                offered,
                accepted,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generation)),
                ("offered", Int(*offered)),
                ("accepted", Int(*accepted)),
            ],
            EventKind::JobRetried {
                job,
                attempt,
                backoff_micros,
            } => vec![
                ("job", Int(*job)),
                ("attempt", Int(*attempt)),
                ("backoff_micros", Int(*backoff_micros)),
            ],
            EventKind::JobPoisoned {
                job,
                retries,
                reason,
            } => vec![
                ("job", Int(*job)),
                ("retries", Int(*retries)),
                ("reason", Text(reason.clone())),
            ],
            EventKind::SpoolDegraded { errors, degraded } => {
                vec![("errors", Int(*errors)), ("degraded", Bool(*degraded))]
            }
            EventKind::RunFinished {
                island,
                generations,
                evaluations,
                best,
                hit_optimum,
            } => vec![
                ("island", Int(u64::from(*island))),
                ("generation", Int(*generations)),
                ("evaluations", Int(*evaluations)),
                ("best", Float(*best)),
                ("hit_optimum", Bool(*hit_optimum)),
            ],
        }
    }
}

/// A flattened field value (for sink encoding).
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    Int(u64),
    /// Floating-point field.
    Float(f64),
    /// Text field.
    Text(String),
    /// Boolean field.
    Bool(bool),
}

/// What happened. One vocabulary for every engine family.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// An engine began a run.
    RunStarted {
        /// Island/deme id (0 for single-population engines).
        island: u32,
        /// Engine family and configuration name (e.g. `"ga-generational"`,
        /// `"cellular-line-sweep"`).
        engine: String,
        /// Problem name.
        problem: String,
        /// RNG seed driving the run.
        seed: u64,
    },
    /// One generation (or generation-equivalent) finished.
    GenerationCompleted {
        /// Island/deme id.
        island: u32,
        /// 1-based generation index.
        generation: u64,
        /// Cumulative fitness evaluations at the end of the generation.
        evaluations: u64,
        /// Best fitness currently in the population.
        best: f64,
        /// Mean population fitness.
        mean: f64,
        /// Best fitness ever observed.
        best_ever: f64,
    },
    /// A batch of fitness evaluations was dispatched (the master–slave hot
    /// path; also emitted by sequential engines per generation).
    EvaluationBatch {
        /// Island/deme id.
        island: u32,
        /// Batch sequence number (generation index for per-generation
        /// batches).
        batch: u64,
        /// Members in the batch.
        size: u64,
        /// Members that actually cost an evaluation (were unevaluated).
        fresh: u64,
        /// Timing-scope duration in microseconds (wall for real execution,
        /// virtual for simulated clusters).
        micros: u64,
    },
    /// Work-stealing pool health for one dispatched evaluation batch:
    /// counter deltas from the pool that executed it (see
    /// `rayon::PoolStats`). Emitted right after the matching
    /// [`EventKind::EvaluationBatch`] by pool-backed evaluators.
    PoolBatch {
        /// Island/deme id.
        island: u32,
        /// Batch sequence number (matches the `EvaluationBatch` it
        /// describes).
        batch: u64,
        /// Worker threads in the executing pool.
        workers: u64,
        /// Leaf chunk tasks executed for this batch.
        tasks: u64,
        /// Jobs obtained by stealing from another worker's deque.
        steals: u64,
        /// Times a worker parked during the batch window.
        parks: u64,
        /// Microseconds between batch injection and its first chunk
        /// starting to execute.
        queue_micros: u64,
    },
    /// Migrants left an island along one topology edge.
    MigrationSent {
        /// Source island.
        from: u32,
        /// Destination island.
        to: u32,
        /// Source island's generation at the migration point.
        generation: u64,
        /// Migrants sent.
        count: u64,
    },
    /// An island absorbed its migration inbox.
    MigrationReceived {
        /// Destination island.
        island: u32,
        /// Destination island's generation at the migration point.
        generation: u64,
        /// Immigrants offered.
        offered: u64,
        /// Immigrants accepted by the replacement policy.
        accepted: u64,
    },
    /// The engine's best reached the problem's known optimum.
    CheckpointHit {
        /// Island/deme id.
        island: u32,
        /// Generation at which the optimum was first held.
        generation: u64,
        /// The optimal fitness value.
        best: f64,
    },
    /// A simulated cluster node died (simulated time in [`Event::time`]).
    NodeFailed {
        /// Node id.
        node: u32,
    },
    /// A task from a dead node was requeued for reassignment.
    TaskReassigned {
        /// Task index within its batch.
        task: u64,
    },
    /// The resilient master handed a task to a worker thread.
    TaskDispatched {
        /// Worker id.
        worker: u32,
        /// Task index within its batch.
        task: u64,
        /// 0-based delivery attempt (0 = first dispatch).
        attempt: u64,
    },
    /// A worker's task deadline passed without a recent heartbeat.
    HeartbeatMissed {
        /// Worker id.
        worker: u32,
    },
    /// A task was requeued for another delivery attempt (straggler
    /// speculation or recoverable failure) with exponential backoff.
    TaskRetried {
        /// Task index within its batch.
        task: u64,
        /// 0-based attempt that failed or timed out.
        attempt: u64,
        /// Backoff applied before the task becomes dispatchable again.
        backoff_micros: u64,
    },
    /// A worker was removed from the dispatch rotation.
    WorkerQuarantined {
        /// Worker id.
        worker: u32,
        /// Why: `"panic"`, `"timeout"`, or `"disconnected"`.
        reason: String,
    },
    /// A worker thought lost produced evidence of life (late result or
    /// heartbeat) and rejoined the dispatch rotation.
    WorkerRecovered {
        /// Worker id.
        worker: u32,
    },
    /// An island thread panicked and left the archipelago (its migration
    /// links close; survivors keep evolving — DRM churn semantics).
    IslandLost {
        /// Island id.
        island: u32,
        /// Generation the island was evolving when it was lost.
        generation: u64,
    },
    /// A lost island was respawned from its last periodic snapshot and
    /// rewired into the topology.
    IslandResurrected {
        /// Island id.
        island: u32,
        /// Generation of the snapshot the island resumed from.
        generation: u64,
        /// 1-based respawn count for this island.
        respawn: u64,
    },
    /// A migrant batch was suppressed on one topology edge — link-fault
    /// injection (drop/cut) or a full bounded channel in async mode.
    MigrantBatchDropped {
        /// Source island.
        from: u32,
        /// Destination island.
        to: u32,
        /// Source island's generation at the migration point.
        generation: u64,
        /// Migrants in the suppressed batch.
        count: u64,
        /// Why: `"drop"`, `"cut"`, `"channel-full"`, or `"peer-dead"`.
        reason: String,
    },
    /// A migrant batch was delivered twice on one topology edge
    /// (duplication fault).
    MigrantBatchRedelivered {
        /// Source island.
        from: u32,
        /// Destination island.
        to: u32,
        /// Source island's generation at the migration point.
        generation: u64,
        /// Migrants delivered beyond the first copy.
        count: u64,
    },
    /// The archipelago supervisor saw no heartbeat from an island within
    /// the configured timeout (stalled or dead island thread).
    IslandHeartbeatMissed {
        /// Island id.
        island: u32,
    },
    /// An asynchronous master folded one arrived evaluation into the
    /// population without waiting for the rest of any batch (the
    /// steady-state async hot path; Harada–Alba–Luque semantics).
    AsyncFold {
        /// Island/deme id (0 for single-population engines).
        island: u32,
        /// 0-based fold sequence number (the arrival-log position).
        seq: u64,
        /// Worker/node that produced the result.
        worker: u32,
        /// Engine clock when the result was folded — virtual microseconds
        /// for the simulated backend, wall microseconds since the run
        /// started for the threaded backend.
        clock_micros: u64,
    },
    /// An island opportunistically drained its immigrant inbox at a
    /// replacement point mid-epoch (overlap migration) instead of at a
    /// rendezvous barrier.
    AsyncImmigrantsDrained {
        /// Destination island.
        island: u32,
        /// Destination island's generation at the drain point.
        generation: u64,
        /// Immigrants offered.
        offered: u64,
        /// Immigrants accepted by the replacement policy.
        accepted: u64,
    },
    /// The serve scheduler resurrected a panicked or stalled job from
    /// its last good snapshot (bounded-retry path).
    JobRetried {
        /// Job id (the numeric part of the wire id `j<n>`).
        job: u64,
        /// 1-based resurrection attempt.
        attempt: u64,
        /// Exponential backoff before the job is schedulable again.
        backoff_micros: u64,
    },
    /// A serve job exhausted its retry budget and was quarantined:
    /// terminal `poisoned`, never scheduled again, never takes the
    /// pool down.
    JobPoisoned {
        /// Job id (the numeric part of the wire id `j<n>`).
        job: u64,
        /// Resurrections spent before quarantine.
        retries: u64,
        /// Final failure message.
        reason: String,
    },
    /// The serve spool entered (`degraded: true`) or left
    /// (`degraded: false`) degraded mode: persist retries were
    /// exhausted and jobs continue on in-memory checkpoints only.
    SpoolDegraded {
        /// Persist errors observed so far at the transition.
        errors: u64,
        /// `true` entering degraded mode, `false` on recovery.
        degraded: bool,
    },
    /// An engine finished a run.
    RunFinished {
        /// Island/deme id (0 for single-population engines).
        island: u32,
        /// Generations completed.
        generations: u64,
        /// Total fitness evaluations.
        evaluations: u64,
        /// Best fitness reached.
        best: f64,
        /// Whether the known optimum was reached.
        hit_optimum: bool,
    },
}

impl EventKind {
    /// Stable snake_case name (the `kind` column/field in sinks).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::RunStarted { .. } => "run_started",
            Self::GenerationCompleted { .. } => "generation_completed",
            Self::EvaluationBatch { .. } => "evaluation_batch",
            Self::PoolBatch { .. } => "pool_batch",
            Self::MigrationSent { .. } => "migration_sent",
            Self::MigrationReceived { .. } => "migration_received",
            Self::CheckpointHit { .. } => "checkpoint_hit",
            Self::NodeFailed { .. } => "node_failed",
            Self::TaskReassigned { .. } => "task_reassigned",
            Self::TaskDispatched { .. } => "task_dispatched",
            Self::HeartbeatMissed { .. } => "heartbeat_missed",
            Self::TaskRetried { .. } => "task_retried",
            Self::WorkerQuarantined { .. } => "worker_quarantined",
            Self::WorkerRecovered { .. } => "worker_recovered",
            Self::IslandLost { .. } => "island_lost",
            Self::IslandResurrected { .. } => "island_resurrected",
            Self::MigrantBatchDropped { .. } => "migrant_batch_dropped",
            Self::MigrantBatchRedelivered { .. } => "migrant_batch_redelivered",
            Self::IslandHeartbeatMissed { .. } => "island_heartbeat_missed",
            Self::AsyncFold { .. } => "async_fold",
            Self::AsyncImmigrantsDrained { .. } => "async_immigrants_drained",
            Self::JobRetried { .. } => "job_retried",
            Self::JobPoisoned { .. } => "job_poisoned",
            Self::SpoolDegraded { .. } => "spool_degraded",
            Self::RunFinished { .. } => "run_finished",
        }
    }

    /// Ordering rank of kinds *within one generation* of one island:
    /// generation stats, then checkpoint, then sends, then receives. Used
    /// by [`crate::merge_island_traces`].
    #[must_use]
    pub fn phase_rank(&self) -> u8 {
        match self {
            Self::RunStarted { .. } => 0,
            // PoolBatch shares the evaluation slot: it annotates the batch
            // and is recorded immediately after it, so the stable sort in
            // merge_island_traces keeps the pair adjacent.
            // AsyncFold shares the evaluation slot: each fold is one
            // arrived evaluation entering the population.
            Self::EvaluationBatch { .. } | Self::PoolBatch { .. } | Self::AsyncFold { .. } => 1,
            Self::GenerationCompleted { .. } => 2,
            Self::CheckpointHit { .. } => 3,
            // Link-fault effects share the send slot: they annotate the
            // batch that was (not) sent at the same migration point.
            Self::MigrationSent { .. }
            | Self::MigrantBatchDropped { .. }
            | Self::MigrantBatchRedelivered { .. } => 4,
            // Opportunistic drains share the receive slot.
            Self::MigrationReceived { .. } | Self::AsyncImmigrantsDrained { .. } => 5,
            // Worker-lifecycle kinds carry no generation, so their rank only
            // breaks ties among themselves: dispatch before the failure
            // evidence, failure evidence before the recovery actions.
            Self::TaskDispatched { .. } => 6,
            Self::NodeFailed { .. } | Self::HeartbeatMissed { .. } => 6,
            Self::TaskReassigned { .. }
            | Self::TaskRetried { .. }
            | Self::WorkerQuarantined { .. }
            | Self::WorkerRecovered { .. } => 7,
            // Island lifecycle: the loss evidence, then the recovery.
            Self::IslandHeartbeatMissed { .. } => 6,
            Self::IslandLost { .. } | Self::IslandResurrected { .. } => 7,
            // Serve job lifecycle shares the recovery-action slot.
            Self::JobRetried { .. } | Self::JobPoisoned { .. } | Self::SpoolDegraded { .. } => 7,
            Self::RunFinished { .. } => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn island_and_generation_extraction() {
        let e = Event::new(EventKind::MigrationSent {
            from: 2,
            to: 3,
            generation: 40,
            count: 1,
        });
        assert_eq!(e.island(), Some(2));
        assert_eq!(e.generation(), Some(40));
        assert_eq!(e.kind.name(), "migration_sent");

        let n = Event::at(Time::Sim(1.25), EventKind::NodeFailed { node: 7 });
        assert_eq!(n.island(), None);
        assert_eq!(n.generation(), None);
    }

    #[test]
    fn fields_cover_every_kind() {
        let kinds = vec![
            EventKind::RunStarted {
                island: 0,
                engine: "ga".into(),
                problem: "onemax".into(),
                seed: 1,
            },
            EventKind::GenerationCompleted {
                island: 0,
                generation: 1,
                evaluations: 10,
                best: 1.0,
                mean: 0.5,
                best_ever: 1.0,
            },
            EventKind::EvaluationBatch {
                island: 0,
                batch: 1,
                size: 10,
                fresh: 9,
                micros: 42,
            },
            EventKind::PoolBatch {
                island: 0,
                batch: 1,
                workers: 8,
                tasks: 32,
                steals: 3,
                parks: 1,
                queue_micros: 12,
            },
            EventKind::MigrationSent {
                from: 0,
                to: 1,
                generation: 4,
                count: 2,
            },
            EventKind::MigrationReceived {
                island: 1,
                generation: 4,
                offered: 2,
                accepted: 1,
            },
            EventKind::CheckpointHit {
                island: 0,
                generation: 9,
                best: 32.0,
            },
            EventKind::NodeFailed { node: 3 },
            EventKind::TaskReassigned { task: 17 },
            EventKind::TaskDispatched {
                worker: 2,
                task: 17,
                attempt: 0,
            },
            EventKind::HeartbeatMissed { worker: 2 },
            EventKind::TaskRetried {
                task: 17,
                attempt: 1,
                backoff_micros: 500,
            },
            EventKind::WorkerQuarantined {
                worker: 2,
                reason: "panic".into(),
            },
            EventKind::WorkerRecovered { worker: 2 },
            EventKind::IslandLost {
                island: 1,
                generation: 25,
            },
            EventKind::IslandResurrected {
                island: 1,
                generation: 16,
                respawn: 1,
            },
            EventKind::MigrantBatchDropped {
                from: 0,
                to: 1,
                generation: 16,
                count: 2,
                reason: "drop".into(),
            },
            EventKind::MigrantBatchRedelivered {
                from: 0,
                to: 1,
                generation: 16,
                count: 2,
            },
            EventKind::IslandHeartbeatMissed { island: 1 },
            EventKind::AsyncFold {
                island: 0,
                seq: 41,
                worker: 3,
                clock_micros: 123_456,
            },
            EventKind::AsyncImmigrantsDrained {
                island: 1,
                generation: 16,
                offered: 2,
                accepted: 1,
            },
            EventKind::JobRetried {
                job: 4,
                attempt: 1,
                backoff_micros: 10_000,
            },
            EventKind::JobPoisoned {
                job: 4,
                retries: 3,
                reason: "chaos: injected slice panic".into(),
            },
            EventKind::SpoolDegraded {
                errors: 3,
                degraded: true,
            },
            EventKind::RunFinished {
                island: 0,
                generations: 9,
                evaluations: 100,
                best: 32.0,
                hit_optimum: true,
            },
        ];
        for kind in kinds {
            let e = Event::new(kind);
            assert!(!e.fields().is_empty(), "{} has no fields", e.kind.name());
        }
    }
}
