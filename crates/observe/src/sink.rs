//! Streaming text sinks: CSV and JSONL encodings of the event stream.

use crate::event::{Event, FieldValue, Time};
use crate::record::Recorder;
use std::io::Write;

/// Every column a flattened event can populate, in output order. One fixed
/// schema keeps CSV rows position-stable across event kinds.
const CSV_COLUMNS: &[&str] = &[
    "seq",
    "time",
    "clock",
    "kind",
    "island",
    "node",
    "from",
    "to",
    "generation",
    "batch",
    "evaluations",
    "size",
    "fresh",
    "count",
    "offered",
    "accepted",
    "task",
    "best",
    "mean",
    "best_ever",
    "micros",
    "seed",
    "hit_optimum",
    "engine",
    "problem",
];

fn format_field(value: &FieldValue) -> String {
    match value {
        FieldValue::Int(v) => v.to_string(),
        FieldValue::Float(v) => format!("{v}"),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Text(v) => v.clone(),
    }
}

fn time_columns(time: Time) -> (String, String) {
    match time {
        Time::None => (String::new(), String::new()),
        Time::Wall(s) => (format!("{s:.6}"), "wall".into()),
        Time::Sim(s) => (format!("{s:.6}"), "sim".into()),
    }
}

/// Writes one CSV row per event against a fixed column schema; the
/// header row is emitted before the first event.
///
/// Cells are only quoted when they contain a comma, quote, or newline
/// (standard RFC 4180 quoting), which never happens for numeric fields.
pub struct CsvSink<W: Write + Send> {
    out: W,
    seq: u64,
    wrote_header: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Sink writing to `out`; the header row is emitted with the first
    /// event.
    #[must_use]
    pub fn new(out: W) -> Self {
        Self {
            out,
            seq: 0,
            wrote_header: false,
        }
    }

    /// Recovers the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn quote(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
}

impl<W: Write + Send> Recorder for CsvSink<W> {
    fn record(&mut self, event: &Event) {
        if !self.wrote_header {
            self.wrote_header = true;
            let _ = writeln!(self.out, "{}", CSV_COLUMNS.join(","));
        }
        let fields = event.fields();
        let (time, clock) = time_columns(event.time);
        let row: Vec<String> = CSV_COLUMNS
            .iter()
            .map(|&col| match col {
                "seq" => self.seq.to_string(),
                "time" => time.clone(),
                "clock" => clock.clone(),
                "kind" => event.kind.name().to_string(),
                _ => fields
                    .iter()
                    .find(|(name, _)| *name == col)
                    .map(|(_, value)| Self::quote(&format_field(value)))
                    .unwrap_or_default(),
            })
            .collect();
        let _ = writeln!(self.out, "{}", row.join(","));
        self.seq += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_value(value: &FieldValue) -> String {
    match value {
        FieldValue::Int(v) => v.to_string(),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Float(v) => {
            if v.is_finite() {
                format!("{v}")
            } else {
                // JSON has no inf/nan; encode as strings.
                format!("\"{v}\"")
            }
        }
        FieldValue::Text(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// Writes one JSON object per line per event (JSONL / NDJSON), e.g.:
///
/// ```json
/// {"seq":3,"kind":"migration_sent","from":0,"to":1,"generation":40,"count":1}
/// ```
pub struct JsonlSink<W: Write + Send> {
    out: W,
    seq: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Sink writing to `out`.
    #[must_use]
    pub fn new(out: W) -> Self {
        Self { out, seq: 0 }
    }

    /// Recovers the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let mut line = format!("{{\"seq\":{},\"kind\":\"{}\"", self.seq, event.kind.name());
        match event.time {
            Time::None => {}
            Time::Wall(s) => line.push_str(&format!(",\"wall_s\":{s:.6}")),
            Time::Sim(s) => line.push_str(&format!(",\"sim_s\":{s:.6}")),
        }
        for (name, value) in event.fields() {
            line.push_str(&format!(",\"{name}\":{}", json_value(&value)));
        }
        line.push('}');
        let _ = writeln!(self.out, "{line}");
        self.seq += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(EventKind::RunStarted {
                island: 0,
                engine: "ga-generational".into(),
                problem: "one,max \"quoted\"".into(),
                seed: 7,
            }),
            Event::new(EventKind::GenerationCompleted {
                island: 0,
                generation: 1,
                evaluations: 60,
                best: 41.0,
                mean: 31.5,
                best_ever: 41.0,
            }),
            Event::at(Time::Sim(0.25), EventKind::NodeFailed { node: 2 }),
        ]
    }

    #[test]
    fn csv_has_header_and_stable_width() {
        let mut sink = CsvSink::new(Vec::new());
        crate::record::replay(&sample_events(), &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let header_cols = lines[0].split(',').count();
        assert!(lines[0].starts_with("seq,time,clock,kind"));
        // Quoted cells make naive splitting wrong only for the quoted row;
        // verify the numeric rows align with the header.
        assert_eq!(lines[2].split(',').count(), header_cols);
        assert!(lines[2].contains("generation_completed"));
        assert!(lines[3].contains("sim"));
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&sample_events()[0]);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"one,max \"\"quoted\"\"\""));
    }

    #[test]
    fn jsonl_rows_are_self_describing() {
        let mut sink = JsonlSink::new(Vec::new());
        crate::record::replay(&sample_events(), &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"run_started\""));
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"best\":41"));
        assert!(lines[2].contains("\"sim_s\":0.250000"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
