//! Streaming text sinks: CSV and JSONL encodings of the event stream.

use crate::event::{Event, FieldValue, Time};
use crate::record::Recorder;
use std::io::Write;

/// Every column a flattened event can populate, in output order. One fixed
/// schema keeps CSV rows position-stable across event kinds.
const CSV_COLUMNS: &[&str] = &[
    "seq",
    "time",
    "clock",
    "kind",
    "island",
    "node",
    "from",
    "to",
    "generation",
    "batch",
    "evaluations",
    "size",
    "fresh",
    "count",
    "offered",
    "accepted",
    "task",
    "best",
    "mean",
    "best_ever",
    "micros",
    "seed",
    "hit_optimum",
    "engine",
    "problem",
];

fn format_field(value: &FieldValue) -> String {
    match value {
        FieldValue::Int(v) => v.to_string(),
        FieldValue::Float(v) => format!("{v}"),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Text(v) => v.clone(),
    }
}

fn time_columns(time: Time) -> (String, String) {
    match time {
        Time::None => (String::new(), String::new()),
        Time::Wall(s) => (format!("{s:.6}"), "wall".into()),
        Time::Sim(s) => (format!("{s:.6}"), "sim".into()),
    }
}

/// Writes one CSV row per event against a fixed column schema; the
/// header row is emitted before the first event.
///
/// Cells are only quoted when they contain a comma, quote, or newline
/// (standard RFC 4180 quoting), which never happens for numeric fields.
pub struct CsvSink<W: Write + Send> {
    out: W,
    seq: u64,
    wrote_header: bool,
}

impl<W: Write + Send> CsvSink<W> {
    /// Sink writing to `out`; the header row is emitted with the first
    /// event.
    #[must_use]
    pub fn new(out: W) -> Self {
        Self {
            out,
            seq: 0,
            wrote_header: false,
        }
    }

    /// Recovers the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    fn quote(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
}

impl<W: Write + Send> Recorder for CsvSink<W> {
    fn record(&mut self, event: &Event) {
        if !self.wrote_header {
            self.wrote_header = true;
            let _ = writeln!(self.out, "{}", CSV_COLUMNS.join(","));
        }
        let fields = event.fields();
        let (time, clock) = time_columns(event.time);
        let row: Vec<String> = CSV_COLUMNS
            .iter()
            .map(|&col| match col {
                "seq" => self.seq.to_string(),
                "time" => time.clone(),
                "clock" => clock.clone(),
                "kind" => event.kind.name().to_string(),
                _ => fields
                    .iter()
                    .find(|(name, _)| *name == col)
                    .map(|(_, value)| Self::quote(&format_field(value)))
                    .unwrap_or_default(),
            })
            .collect();
        let _ = writeln!(self.out, "{}", row.join(","));
        self.seq += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_value(value: &FieldValue) -> String {
    match value {
        FieldValue::Int(v) => v.to_string(),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Float(v) => {
            if v.is_finite() {
                format!("{v}")
            } else {
                // JSON has no inf/nan; encode as strings.
                format!("\"{v}\"")
            }
        }
        FieldValue::Text(v) => format!("\"{}\"", json_escape(v)),
    }
}

/// Encodes one event as a self-describing JSONL line (no trailing
/// newline), e.g. `{"seq":3,"kind":"migration_sent","from":0,"to":1,...}`.
///
/// The single source of truth for the JSONL wire format: [`JsonlSink`]
/// (batch, `Write`-backed) and [`JsonlStream`] (incremental, drainable)
/// both delegate here, so a consumer parsing one parses the other.
#[must_use]
pub fn jsonl_line(seq: u64, event: &Event) -> String {
    let mut line = format!("{{\"seq\":{seq},\"kind\":\"{}\"", event.kind.name());
    match event.time {
        Time::None => {}
        Time::Wall(s) => line.push_str(&format!(",\"wall_s\":{s:.6}")),
        Time::Sim(s) => line.push_str(&format!(",\"sim_s\":{s:.6}")),
    }
    for (name, value) in event.fields() {
        line.push_str(&format!(",\"{name}\":{}", json_value(&value)));
    }
    line.push('}');
    line
}

/// Writes one JSON object per line per event (JSONL / NDJSON), e.g.:
///
/// ```json
/// {"seq":3,"kind":"migration_sent","from":0,"to":1,"generation":40,"count":1}
/// ```
pub struct JsonlSink<W: Write + Send> {
    out: W,
    seq: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Sink writing to `out`.
    #[must_use]
    pub fn new(out: W) -> Self {
        Self { out, seq: 0 }
    }

    /// Recovers the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let line = jsonl_line(self.seq, event);
        let _ = writeln!(self.out, "{line}");
        self.seq += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

struct StreamInner {
    seq: u64,
    capacity: usize,
    dropped: u64,
    lines: std::collections::VecDeque<String>,
    closed: bool,
}

/// Incremental JSONL event stream: a clonable [`Recorder`] that encodes
/// each event as a [`jsonl_line`] into a shared bounded buffer, which a
/// consumer on another thread drains line-by-line.
///
/// This is the live-streaming counterpart of [`JsonlSink`]: a job server
/// attaches one clone to an engine and its `/jobs/:id/events` endpoint
/// drains the other end while the run is still in flight. When the buffer
/// is full the *oldest* lines are dropped (and counted), so a slow or
/// absent consumer never blocks or bloats the producer.
#[derive(Clone)]
pub struct JsonlStream {
    inner: std::sync::Arc<std::sync::Mutex<StreamInner>>,
}

impl JsonlStream {
    /// Stream buffering at most `capacity` undrained lines.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "stream capacity must be positive");
        Self {
            inner: std::sync::Arc::new(std::sync::Mutex::new(StreamInner {
                seq: 0,
                capacity,
                dropped: 0,
                lines: std::collections::VecDeque::new(),
                closed: false,
            })),
        }
    }

    /// Stream with a default buffer of 64 Ki lines.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(1 << 16)
    }

    /// Takes all buffered lines, oldest first (without trailing newlines).
    #[must_use]
    pub fn drain_lines(&self) -> Vec<String> {
        self.inner.lock().unwrap().lines.drain(..).collect()
    }

    /// Undrained line count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().lines.len()
    }

    /// `true` when no lines are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Marks the stream finished: the producer will emit no more events.
    /// Consumers drain whatever remains and stop polling.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
    }

    /// `true` once [`JsonlStream::close`] was called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

impl Default for JsonlStream {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for JsonlStream {
    fn record(&mut self, event: &Event) {
        let mut inner = self.inner.lock().unwrap();
        let line = jsonl_line(inner.seq, event);
        inner.seq += 1;
        if inner.lines.len() == inner.capacity {
            inner.lines.pop_front();
            inner.dropped += 1;
        }
        inner.lines.push_back(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(EventKind::RunStarted {
                island: 0,
                engine: "ga-generational".into(),
                problem: "one,max \"quoted\"".into(),
                seed: 7,
            }),
            Event::new(EventKind::GenerationCompleted {
                island: 0,
                generation: 1,
                evaluations: 60,
                best: 41.0,
                mean: 31.5,
                best_ever: 41.0,
            }),
            Event::at(Time::Sim(0.25), EventKind::NodeFailed { node: 2 }),
        ]
    }

    #[test]
    fn csv_has_header_and_stable_width() {
        let mut sink = CsvSink::new(Vec::new());
        crate::record::replay(&sample_events(), &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let header_cols = lines[0].split(',').count();
        assert!(lines[0].starts_with("seq,time,clock,kind"));
        // Quoted cells make naive splitting wrong only for the quoted row;
        // verify the numeric rows align with the header.
        assert_eq!(lines[2].split(',').count(), header_cols);
        assert!(lines[2].contains("generation_completed"));
        assert!(lines[3].contains("sim"));
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&sample_events()[0]);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"one,max \"\"quoted\"\"\""));
    }

    #[test]
    fn jsonl_stream_drains_incrementally_and_matches_the_sink() {
        let stream = JsonlStream::with_capacity(8);
        let mut producer = stream.clone();
        let events = sample_events();
        producer.record(&events[0]);
        producer.record(&events[1]);
        let first = stream.drain_lines();
        assert_eq!(first.len(), 2);
        assert!(stream.is_empty());
        producer.record(&events[2]);
        let second = stream.drain_lines();
        assert_eq!(second.len(), 1);

        // Byte-identical to the batch sink over the same trace.
        let mut sink = JsonlSink::new(Vec::new());
        crate::record::replay(&events, &mut sink);
        let batch = String::from_utf8(sink.into_inner()).unwrap();
        let streamed: Vec<String> = first.into_iter().chain(second).collect();
        assert_eq!(batch.lines().collect::<Vec<_>>(), streamed);

        assert!(!stream.is_closed());
        stream.close();
        assert!(stream.is_closed());
    }

    #[test]
    fn jsonl_stream_drops_oldest_when_full() {
        let stream = JsonlStream::with_capacity(2);
        let mut producer = stream.clone();
        for generation in 1..=5 {
            producer.record(&Event::new(EventKind::GenerationCompleted {
                island: 0,
                generation,
                evaluations: generation,
                best: 1.0,
                mean: 0.5,
                best_ever: 1.0,
            }));
        }
        assert_eq!(stream.dropped(), 3);
        let lines = stream.drain_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"generation\":4"));
        assert!(lines[1].contains("\"generation\":5"));
    }

    #[test]
    fn jsonl_rows_are_self_describing() {
        let mut sink = JsonlSink::new(Vec::new());
        crate::record::replay(&sample_events(), &mut sink);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"run_started\""));
        assert!(lines[0].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"best\":41"));
        assert!(lines[2].contains("\"sim_s\":0.250000"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
